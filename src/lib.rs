//! PRDNN — a reproduction of *Provable Repair of Deep Neural Networks*
//! (Sotoudeh & Thakur, PLDI 2021).
//!
//! This facade crate re-exports the workspace so examples and downstream
//! users can depend on a single crate:
//!
//! * [`linalg`] — dense matrices and vectors,
//! * [`lp`] — an LP solver (two-phase simplex, ℓ1/ℓ∞ objectives),
//! * [`nn`] — the DNN substrate (layers, activations, training),
//! * [`par`] — the work-stealing thread pool behind the parallel hot paths,
//! * [`syrenn`] — exact linear-region computation for PWL networks,
//! * [`core`] — Decoupled DNNs and the provable point/polytope repair
//!   algorithms (the paper's contribution),
//! * [`baselines`] — fine-tuning baselines from the evaluation,
//! * [`datasets`] — the synthetic evaluation workloads.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, which walks through the paper's running
//! example (Figures 3–5) end to end: build the network, decouple it, repair
//! two points, and repair a whole input interval.

pub use prdnn_baselines as baselines;
pub use prdnn_core as core;
pub use prdnn_datasets as datasets;
pub use prdnn_linalg as linalg;
pub use prdnn_lp as lp;
pub use prdnn_nn as nn;
pub use prdnn_par as par;
pub use prdnn_syrenn as syrenn;
