//! The LP modelling layer: variables, constraints, objectives.

/// Identifier of a variable in an [`LpProblem`].
///
/// Returned by [`LpProblem::add_var`] and used to refer to the variable when
/// adding constraints or objectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The position of this variable in [`crate::Solution::values`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// Sign restriction of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// May take any real value (the parameter deltas `Δ` of a repair).
    Free,
    /// Restricted to `x ≥ 0` (auxiliary norm variables).
    NonNegative,
}

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `a · x ≤ rhs`
    Le,
    /// `a · x ≥ rhs`
    Ge,
    /// `a · x = rhs`
    Eq,
}

/// Objective of an [`LpProblem`]; always a minimisation.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// Any feasible point is acceptable (pure feasibility query).
    Feasibility,
    /// Minimise `c · x` where `c` has one entry per variable.
    Linear(Vec<f64>),
    /// Minimise `Σ_i |x_i|` over the listed variables.
    ///
    /// This is the repair-size measure the paper uses by default.
    MinimizeL1(Vec<VarId>),
    /// Minimise `max_i |x_i|` over the listed variables.
    MinimizeLinf(Vec<VarId>),
}

/// A single dense linear constraint `coeffs · x (≤ | ≥ | =) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    pub(crate) coeffs: Vec<(VarId, f64)>,
    pub(crate) op: ConstraintOp,
    pub(crate) rhs: f64,
}

/// A linear program in "modelling" form: free/non-negative variables,
/// inequality/equality constraints, and a (possibly norm) objective.
///
/// Converted to standard simplex form by [`crate::solve`].
///
/// # Example
///
/// ```
/// use prdnn_lp::{ConstraintOp, LpProblem, VarKind};
///
/// let mut lp = LpProblem::new();
/// let x = lp.add_var(VarKind::NonNegative);
/// lp.add_constraint(&[(x, 2.0)], ConstraintOp::Le, 8.0);
/// lp.set_objective_linear(&[(x, -1.0)]);
/// let solution = prdnn_lp::solve(&lp).unwrap();
/// assert!((solution.values[x.index()] - 4.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LpProblem {
    pub(crate) kinds: Vec<VarKind>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: Objective,
}

impl Default for LpProblem {
    fn default() -> Self {
        Self::new()
    }
}

impl LpProblem {
    /// Creates an empty problem with a pure-feasibility objective.
    pub fn new() -> Self {
        LpProblem {
            kinds: Vec::new(),
            constraints: Vec::new(),
            objective: Objective::Feasibility,
        }
    }

    /// Adds a variable of the given kind and returns its id.
    pub fn add_var(&mut self, kind: VarKind) -> VarId {
        self.kinds.push(kind);
        VarId(self.kinds.len() - 1)
    }

    /// Adds `count` variables of the given kind, returning their ids in order.
    pub fn add_vars(&mut self, count: usize, kind: VarKind) -> Vec<VarId> {
        (0..count).map(|_| self.add_var(kind)).collect()
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.kinds.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds the constraint `Σ coeffs_i · x_i  op  rhs`.
    ///
    /// Coefficients for variables not listed are zero.  Listing the same
    /// variable twice sums the coefficients.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable does not belong to this problem.
    pub fn add_constraint(&mut self, coeffs: &[(VarId, f64)], op: ConstraintOp, rhs: f64) {
        for (v, _) in coeffs {
            assert!(
                v.0 < self.kinds.len(),
                "constraint references unknown variable {:?}",
                v
            );
        }
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            op,
            rhs,
        });
    }

    /// Sets a plain linear objective `minimize Σ coeffs_i · x_i`.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable does not belong to this problem.
    pub fn set_objective_linear(&mut self, coeffs: &[(VarId, f64)]) {
        let mut dense = vec![0.0; self.kinds.len()];
        for (v, c) in coeffs {
            assert!(
                v.0 < self.kinds.len(),
                "objective references unknown variable {:?}",
                v
            );
            dense[v.0] += c;
        }
        self.objective = Objective::Linear(dense);
    }

    /// Sets the objective to `minimize Σ |x_i|` over the given variables.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable does not belong to this problem.
    pub fn minimize_l1_of(&mut self, vars: &[VarId]) {
        for v in vars {
            assert!(
                v.0 < self.kinds.len(),
                "objective references unknown variable {:?}",
                v
            );
        }
        self.objective = Objective::MinimizeL1(vars.to_vec());
    }

    /// Sets the objective to `minimize max_i |x_i|` over the given variables.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable does not belong to this problem.
    pub fn minimize_linf_of(&mut self, vars: &[VarId]) {
        for v in vars {
            assert!(
                v.0 < self.kinds.len(),
                "objective references unknown variable {:?}",
                v
            );
        }
        self.objective = Objective::MinimizeLinf(vars.to_vec());
    }

    /// The current objective.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// Evaluates whether `x` satisfies every constraint up to tolerance `tol`.
    ///
    /// `x` must assign a value to every variable in problem order.  This is
    /// used by tests and by the repair algorithms' self-checks.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from [`Self::num_vars`].
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        assert_eq!(
            x.len(),
            self.kinds.len(),
            "is_feasible: wrong number of values"
        );
        for (i, kind) in self.kinds.iter().enumerate() {
            if *kind == VarKind::NonNegative && x[i] < -tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().map(|(v, a)| a * x[v.0]).sum();
            match c.op {
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_vars_and_constraints() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        let ys = lp.add_vars(3, VarKind::NonNegative);
        assert_eq!(lp.num_vars(), 4);
        assert_eq!(x.index(), 0);
        assert_eq!(ys[2].index(), 3);
        lp.add_constraint(&[(x, 1.0), (ys[0], -1.0)], ConstraintOp::Eq, 0.0);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(*lp.objective(), Objective::Feasibility);
    }

    #[test]
    fn feasibility_check() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        let y = lp.add_var(VarKind::NonNegative);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Le, 2.0);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, -1.0);
        assert!(lp.is_feasible(&[0.0, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[0.0, 3.0], 1e-9)); // violates Le
        assert!(!lp.is_feasible(&[-2.0, 0.0], 1e-9)); // violates Ge
        assert!(!lp.is_feasible(&[0.0, -1.0], 1e-9)); // violates non-negativity
    }

    #[test]
    fn duplicate_objective_coefficients_sum() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        lp.set_objective_linear(&[(x, 1.0), (x, 2.0)]);
        assert_eq!(*lp.objective(), Objective::Linear(vec![3.0]));
    }

    #[test]
    #[should_panic]
    fn unknown_variable_in_constraint_panics() {
        let mut lp = LpProblem::new();
        let _ = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(VarId(7), 1.0)], ConstraintOp::Le, 0.0);
    }
}
