//! The revised simplex basis: an LU-factorised `B` plus a product-form eta
//! file, with periodic refactorisation.
//!
//! After a pivot replaces the basic variable of row `r` by a column `a_e`,
//! the new basis satisfies `B' = B F`, where `F` is the identity with column
//! `r` replaced by `w = B⁻¹ a_e` (the FTRAN of the entering column, which
//! the ratio test has already computed).  Instead of refactorising, we store
//! `(r, w)` as an *eta* and apply `F⁻¹` on the fly:
//!
//! * FTRAN `B'⁻¹ v`: solve with the LU factors, then apply each eta in
//!   order — `x_r ← x_r / w_r`, `x_i ← x_i − w_i x_r`.
//! * BTRAN `B'⁻ᵀ v`: apply each eta transposed in *reverse* order —
//!   `y_r ← (y_r − Σ_{i≠r} w_i y_i) / w_r` — then solve with `LUᵀ`.
//!
//! Each eta application is `O(m)`, so the eta file is collapsed back into a
//! fresh LU factorisation (a Bartels–Golub-style periodic refactorisation)
//! once it grows past [`Basis::MAX_ETAS`] or an update pivot is too small to
//! be trusted.

use prdnn_linalg::LuFactors;

/// Update pivots `|w_r|` below this are refused; the caller refactorises.
const ETA_PIVOT_TOL: f64 = 1e-8;

/// One product-form update: column `w = B⁻¹ a_e` pivoted in at `row`,
/// stored sparsely (FTRANed repair columns keep most of their zeros), with
/// the pivot entry `w_r` split out.
#[derive(Debug, Clone)]
struct Eta {
    row: usize,
    pivot: f64,
    /// Non-zero entries of `w` excluding the pivot position.
    w: Vec<(usize, f64)>,
}

/// Outcome of [`Basis::update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UpdateOutcome {
    /// The eta was appended; FTRAN/BTRAN now reflect the new basis.
    Applied,
    /// The pivot was numerically unsafe; the basis is unchanged and the
    /// caller must refactorise from the new basic column set.
    RefusedNeedsRefactor,
}

/// An LU-factorised simplex basis with a product-form eta file.
#[derive(Debug, Clone)]
pub(crate) struct Basis {
    lu: LuFactors,
    etas: Vec<Eta>,
}

impl Basis {
    /// Eta-file length that triggers refactorisation: beyond this the
    /// accumulated `O(nnz(w))` eta applications cost more than a fresh
    /// factorisation amortised over the interval (and error grows).  The
    /// factorisation itself skips zero multipliers, so on the mostly-unit
    /// bases of the repair LPs it is cheap enough to run often.
    pub(crate) const MAX_ETAS: usize = 40;

    /// Factorises the dense row-major `m × m` basis matrix with the
    /// Markowitz-ordered LU: simplex bases are mostly unit slack columns
    /// (Markowitz count 0, eliminated with zero fill), so the factors track
    /// the structural block instead of the whole basis, and every
    /// FTRAN/BTRAN afterwards touches fewer entries.
    ///
    /// Returns `None` when the matrix is singular, which for a simplex basis
    /// signals numerical breakdown (a mathematically valid basis is always
    /// invertible).
    pub(crate) fn factorize(m: usize, basis_matrix: &[f64]) -> Option<Self> {
        LuFactors::factorize_markowitz(m, basis_matrix)
            .ok()
            .map(|lu| Basis {
                lu,
                etas: Vec::new(),
            })
    }

    #[cfg(test)]
    pub(crate) fn dim(&self) -> usize {
        self.lu.dim()
    }

    /// `true` once the eta file has grown enough that the caller should
    /// refactorise at the next convenient point.
    pub(crate) fn should_refactorize(&self) -> bool {
        self.etas.len() >= Self::MAX_ETAS
    }

    /// Number of product-form updates applied since the last factorisation.
    #[cfg(test)]
    pub(crate) fn updates_since_refactor(&self) -> usize {
        self.etas.len()
    }

    /// FTRAN: `x ← B⁻¹ x`.
    pub(crate) fn ftran(&self, x: &mut [f64]) {
        self.lu.solve_in_place(x);
        for eta in &self.etas {
            let xr = x[eta.row] / eta.pivot;
            if xr != 0.0 {
                x[eta.row] = xr;
                for &(i, wi) in &eta.w {
                    x[i] -= wi * xr;
                }
            }
        }
    }

    /// BTRAN: `y ← B⁻ᵀ y`.
    pub(crate) fn btran(&self, y: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            // Transposed eta: y_r ← (y_r − Σ_{i≠r} w_i y_i) / w_r.
            let dot: f64 = eta.w.iter().map(|&(i, wi)| wi * y[i]).sum();
            y[eta.row] = (y[eta.row] - dot) / eta.pivot;
        }
        self.lu.solve_transpose_in_place(y);
    }

    /// Records the pivot that replaced row `r`'s basic column, given the
    /// already-FTRANed entering column `w = B⁻¹ a_e` (borrowed; its
    /// non-zeros are compressed into the eta file).
    pub(crate) fn update(&mut self, row: usize, w: &[f64]) -> UpdateOutcome {
        if w[row].abs() <= ETA_PIVOT_TOL {
            return UpdateOutcome::RefusedNeedsRefactor;
        }
        let sparse: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &wi)| i != row && wi != 0.0)
            .map(|(i, &wi)| (i, wi))
            .collect();
        self.etas.push(Eta {
            row,
            pivot: w[row],
            w: sparse,
        });
        UpdateOutcome::Applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Multiplies the dense column-set matrix `cols` (column-major) by `x`.
    fn matvec_cols(m: usize, cols: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; m];
        for (j, col) in cols.iter().enumerate() {
            for i in 0..m {
                out[i] += col[i] * x[j];
            }
        }
        out
    }

    fn row_major(m: usize, cols: &[Vec<f64>]) -> Vec<f64> {
        let mut a = vec![0.0; m * m];
        for (j, col) in cols.iter().enumerate() {
            for i in 0..m {
                a[i * m + j] = col[i];
            }
        }
        a
    }

    #[test]
    fn eta_update_matches_refactorisation() {
        // Start from B = I, replace column 1 by a = (1, 2, 3), and check
        // FTRAN/BTRAN against a fresh factorisation of the updated matrix.
        let m = 3;
        let mut cols = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let mut basis = Basis::factorize(m, &row_major(m, &cols)).unwrap();

        let a_e = vec![1.0, 2.0, 3.0];
        let mut w = a_e.clone();
        basis.ftran(&mut w); // B = I, so w = a_e.
        assert_eq!(basis.update(1, &w), UpdateOutcome::Applied);
        cols[1] = a_e;
        let fresh = Basis::factorize(m, &row_major(m, &cols)).unwrap();

        let rhs = vec![4.0, -1.0, 0.5];
        let (mut via_eta, mut via_fresh) = (rhs.clone(), rhs.clone());
        basis.ftran(&mut via_eta);
        fresh.ftran(&mut via_fresh);
        for (a, b) in via_eta.iter().zip(&via_fresh) {
            assert!((a - b).abs() < 1e-12, "FTRAN mismatch: {a} vs {b}");
        }
        // Check FTRAN really solved B x = rhs.
        let back = matvec_cols(m, &cols, &via_eta);
        for (a, b) in back.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-12);
        }

        let (mut ye, mut yf) = (rhs.clone(), rhs.clone());
        basis.btran(&mut ye);
        fresh.btran(&mut yf);
        for (a, b) in ye.iter().zip(&yf) {
            assert!((a - b).abs() < 1e-12, "BTRAN mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn chained_eta_updates_stay_consistent() {
        // Apply several updates and compare against refactorising each time.
        let m = 4;
        let mut cols: Vec<Vec<f64>> = (0..m)
            .map(|j| (0..m).map(|i| if i == j { 1.0 } else { 0.0 }).collect())
            .collect();
        let mut basis = Basis::factorize(m, &row_major(m, &cols)).unwrap();
        let entering = [
            (0usize, vec![2.0, 1.0, 0.0, -1.0]),
            (2, vec![0.5, 0.0, 3.0, 1.0]),
            (1, vec![-1.0, 4.0, 1.0, 0.0]),
        ];
        for (row, a_e) in entering {
            let mut w = a_e.clone();
            basis.ftran(&mut w);
            assert_eq!(basis.update(row, &w), UpdateOutcome::Applied);
            cols[row] = a_e;
        }
        assert_eq!(basis.updates_since_refactor(), 3);
        let fresh = Basis::factorize(m, &row_major(m, &cols)).unwrap();
        let rhs = vec![1.0, 2.0, 3.0, 4.0];
        let (mut xe, mut xf) = (rhs.clone(), rhs.clone());
        basis.ftran(&mut xe);
        fresh.ftran(&mut xf);
        for (a, b) in xe.iter().zip(&xf) {
            assert!((a - b).abs() < 1e-10);
        }
        let (mut ye, mut yf) = (rhs.clone(), rhs);
        basis.btran(&mut ye);
        fresh.btran(&mut yf);
        for (a, b) in ye.iter().zip(&yf) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn tiny_pivot_is_refused() {
        let m = 2;
        let mut basis = Basis::factorize(m, &[1.0, 0.0, 0.0, 1.0]).unwrap();
        let w = vec![1e-12, 1.0];
        assert_eq!(basis.update(0, &w), UpdateOutcome::RefusedNeedsRefactor);
        assert_eq!(basis.updates_since_refactor(), 0);
    }

    #[test]
    fn eta_file_growth_triggers_refactorisation_flag() {
        let m = 2;
        let mut basis = Basis::factorize(m, &[1.0, 0.0, 0.0, 1.0]).unwrap();
        assert!(!basis.should_refactorize());
        for _ in 0..Basis::MAX_ETAS {
            // Pivoting the same unit-ish column keeps the basis invertible.
            let mut w = vec![1.0, 0.25];
            basis.ftran(&mut w);
            assert_eq!(basis.update(0, &w), UpdateOutcome::Applied);
        }
        assert!(basis.should_refactorize());
        assert_eq!(basis.dim(), 2);
    }

    #[test]
    fn singular_basis_matrix_is_reported() {
        assert!(Basis::factorize(2, &[1.0, 2.0, 2.0, 4.0]).is_none());
    }
}
