//! Conversion from modelling form to standard form and backend selection.
//!
//! The conversion produces a *sparse* standard form straight from the
//! (already sparse) modelling constraints; the solver then routes it to one
//! of two simplex backends:
//!
//! * [`LpBackend::RevisedSparse`] — the revised simplex over CSR/CSC
//!   columns with a Markowitz-ordered LU-factorised, eta-updated basis
//!   ([`crate::revised`]).  `O(nnz + m²)` per pivot; the default for the
//!   wide, block-sparse repair LPs.  [`PricingRule`] picks its
//!   entering-column rule (Devex partial pricing by default).
//! * [`LpBackend::DenseTableau`] — the flat-tableau two-phase simplex
//!   ([`crate::simplex`]).  `O(m·n)` per pivot but with a small constant;
//!   kept as the small-problem fallback and as the differential-testing
//!   oracle for the revised backend.
//!
//! [`LpBackend::Auto`] (the default used by [`solve`] / [`solve_with_limit`])
//! compares the estimated per-pivot work of the two backends — `m·n` cells
//! for the tableau against `nnz + 2m²` for pricing plus the BTRAN/FTRAN
//! triangular solves — and picks the cheaper one.  If the revised backend
//! ever hits a numerical breakdown (singular basis refactorisation), the
//! solve transparently re-runs on the dense oracle.

use crate::problem::{ConstraintOp, LpProblem, Objective, VarKind};
use crate::revised::{solve_standard_sparse_with_stats, Pricing, RevisedStats};
use crate::simplex::{solve_standard, SimplexOutcome};
use crate::sparse::{CsrMatrix, SparseStandardForm};
use crate::LpError;

/// An optimal solution of an [`LpProblem`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Value of each problem variable, indexed by [`crate::VarId::index`].
    pub values: Vec<f64>,
    /// Optimal objective value (0 for pure feasibility problems).
    pub objective: f64,
}

/// Work counters from one solve, surfaced by [`solve_with_stats`].
///
/// The revised sparse backend fills every field; the dense tableau has no
/// instrumentation, so dense solves (including the transparent
/// breakdown fallback) report all-zero stats.  ℓ∞ objectives are lowered to
/// a single augmented solve, whose counters carry through unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpStats {
    /// Total simplex pivots across both phases.
    pub pivots: u64,
    /// Pivots taken under the Bland anti-cycling fallback.
    pub bland_pivots: u64,
    /// Mid-solve basis refactorisations.
    pub refactorizations: u64,
    /// Degenerate (zero-step) pivots.
    pub degenerate_pivots: u64,
}

impl From<RevisedStats> for LpStats {
    fn from(s: RevisedStats) -> Self {
        LpStats {
            pivots: s.pivots as u64,
            bland_pivots: s.bland_pivots as u64,
            refactorizations: s.refactorizations as u64,
            degenerate_pivots: s.degenerate_pivots as u64,
        }
    }
}

/// Which simplex implementation executes the solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LpBackend {
    /// Choose per problem from the standard form's shape and sparsity.
    #[default]
    Auto,
    /// Always use the dense flat-tableau simplex.
    DenseTableau,
    /// Always use the sparse revised simplex (falls back to the dense
    /// tableau on numerical breakdown).
    RevisedSparse,
}

/// Entering-column pricing rule for the revised simplex backend (the dense
/// tableau always full-prices its reduced-cost row; both rules fall back to
/// Bland's anti-cycling rule on degenerate stalls).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PricingRule {
    /// Resolve from the `PRDNN_LP_PRICING` environment variable (`dantzig`
    /// or `devex`, mirroring `PRDNN_THREADS`); defaults to Devex, the rule
    /// built for the wide sparse repair programs.
    #[default]
    Auto,
    /// Full pricing: most negative reduced cost, one sparse dot per
    /// nonbasic column per pivot.
    Dantzig,
    /// Devex reference weights with candidate-list partial pricing: most
    /// pivots price a few dozen columns instead of all of them, and the
    /// weights steer towards steepest-edge-like entering choices.
    Devex,
}

impl PricingRule {
    /// Resolves the policy to a concrete rule for the revised backend.
    ///
    /// Precedence mirrors the thread knob: an explicit rule wins over the
    /// `PRDNN_LP_PRICING` environment variable, which wins over the
    /// built-in default (Devex).  Unrecognised variable values fall through
    /// to the default, like an unparsable `PRDNN_THREADS` — but not
    /// silently: the first one seen prints a warning naming the variable
    /// and the value to stderr.
    fn resolve(self) -> Pricing {
        match self {
            PricingRule::Dantzig => Pricing::Dantzig,
            PricingRule::Devex => Pricing::Devex,
            PricingRule::Auto => match std::env::var("PRDNN_LP_PRICING") {
                Ok(raw) => match parse_pricing_value(&raw) {
                    Ok(pricing) => pricing,
                    Err(warning) => {
                        static WARNED: std::sync::Once = std::sync::Once::new();
                        WARNED.call_once(|| eprintln!("{warning}"));
                        Pricing::Devex
                    }
                },
                Err(_) => Pricing::Devex,
            },
        }
    }
}

/// Parses a `PRDNN_LP_PRICING` value (`dantzig` or `devex`, case
/// insensitive), or returns the warning message (naming the variable and
/// the offending value) emitted when it is unrecognised.
///
/// Split out of [`PricingRule::resolve`] so the warning path is
/// unit-testable without capturing stderr.
fn parse_pricing_value(raw: &str) -> Result<Pricing, String> {
    if raw.eq_ignore_ascii_case("dantzig") {
        Ok(Pricing::Dantzig)
    } else if raw.eq_ignore_ascii_case("devex") {
        Ok(Pricing::Devex)
    } else {
        Err(format!(
            "warning: ignoring PRDNN_LP_PRICING={raw:?}: \
             expected \"dantzig\" or \"devex\"; falling back to devex"
        ))
    }
}

/// Options accepted by [`solve_with_options`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveOptions {
    /// Backend selection policy.
    pub backend: LpBackend,
    /// Simplex iteration budget (shared across both phases).
    pub max_iters: usize,
    /// Entering-column pricing rule for the revised backend.
    pub pricing: PricingRule,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            backend: LpBackend::Auto,
            max_iters: DEFAULT_MAX_ITERS,
            pricing: PricingRule::Auto,
        }
    }
}

/// Default simplex iteration limit used by [`solve`].
const DEFAULT_MAX_ITERS: usize = 2_000_000;

/// Solves the problem with the default iteration limit and automatic
/// backend selection.
///
/// # Errors
///
/// Returns [`LpError::Infeasible`] if no point satisfies the constraints,
/// [`LpError::Unbounded`] if the objective is unbounded below, and
/// [`LpError::IterationLimit`] if the simplex iteration budget is exhausted.
pub fn solve(problem: &LpProblem) -> Result<Solution, LpError> {
    solve_with_options(problem, &SolveOptions::default())
}

/// Solves the problem with an explicit simplex iteration limit.
///
/// # Errors
///
/// See [`solve`].
pub fn solve_with_limit(problem: &LpProblem, max_iters: usize) -> Result<Solution, LpError> {
    solve_with_options(
        problem,
        &SolveOptions {
            max_iters,
            ..SolveOptions::default()
        },
    )
}

/// Solves the problem with explicit backend and iteration options.
///
/// # Errors
///
/// See [`solve`].
pub fn solve_with_options(
    problem: &LpProblem,
    options: &SolveOptions,
) -> Result<Solution, LpError> {
    solve_with_stats(problem, options).map(|(solution, _)| solution)
}

/// [`solve_with_options`] plus the [`LpStats`] work counters for the solve.
///
/// # Errors
///
/// See [`solve`].
pub fn solve_with_stats(
    problem: &LpProblem,
    options: &SolveOptions,
) -> Result<(Solution, LpStats), LpError> {
    // ℓ∞ objectives are lowered to a plain linear objective over an
    // augmented problem with one extra bound variable `t ≥ |x_i|`.
    if let Objective::MinimizeLinf(vars) = &problem.objective {
        let mut augmented = problem.clone();
        let t = augmented.add_var(VarKind::NonNegative);
        for v in vars {
            augmented.add_constraint(&[(*v, 1.0), (t, -1.0)], ConstraintOp::Le, 0.0);
            augmented.add_constraint(&[(*v, -1.0), (t, -1.0)], ConstraintOp::Le, 0.0);
        }
        augmented.set_objective_linear(&[(t, 1.0)]);
        let (mut solution, stats) = solve_with_stats(&augmented, options)?;
        let objective = solution.values[t.index()];
        solution.values.truncate(problem.num_vars());
        return Ok((
            Solution {
                values: solution.values,
                objective,
            },
            stats,
        ));
    }

    let (sf, mapping) = to_standard_form(problem);
    let use_revised = match options.backend {
        LpBackend::DenseTableau => false,
        LpBackend::RevisedSparse => true,
        LpBackend::Auto => auto_prefers_revised(&sf),
    };
    let (outcome, stats) = if use_revised {
        // `None` is a numerical breakdown in the revised backend; the dense
        // tableau is the robust (uninstrumented) fallback.
        solve_standard_sparse_with_stats(&sf, options.max_iters, options.pricing.resolve())
            .map(|(outcome, stats)| (outcome, LpStats::from(stats)))
            .unwrap_or_else(|| {
                (
                    solve_standard(&sf.to_dense(), options.max_iters),
                    LpStats::default(),
                )
            })
    } else {
        (
            solve_standard(&sf.to_dense(), options.max_iters),
            LpStats::default(),
        )
    };
    match outcome {
        SimplexOutcome::Optimal { x, objective } => {
            let values = mapping.recover(problem, &x);
            Ok((Solution { values, objective }, stats))
        }
        SimplexOutcome::Infeasible => Err(LpError::Infeasible),
        SimplexOutcome::Unbounded => Err(LpError::Unbounded),
        SimplexOutcome::IterationLimit => Err(LpError::IterationLimit),
    }
}

/// `Auto` policy: estimated per-pivot work of the revised backend
/// (column pricing over the stored non-zeros plus two triangular solves)
/// against the flat tableau's full `m·n` cell update, with a bias towards
/// the tableau's smaller constant factor on little problems.
fn auto_prefers_revised(sf: &SparseStandardForm) -> bool {
    let m = sf.num_rows();
    let n = sf.num_cols();
    if m < 8 || n < 32 {
        return false;
    }
    let revised_estimate = sf.a.nnz() as f64 + 2.0 * (m * m) as f64;
    let tableau_estimate = (m * n) as f64;
    revised_estimate < 0.75 * tableau_estimate
}

/// How each problem variable maps onto standard-form columns.
struct VarMapping {
    /// `(positive_col, Option<negative_col>)` per problem variable; free
    /// variables are split `x = x⁺ − x⁻`.
    cols: Vec<(usize, Option<usize>)>,
}

impl VarMapping {
    fn recover(&self, problem: &LpProblem, x: &[f64]) -> Vec<f64> {
        (0..problem.num_vars())
            .map(|i| {
                let (p, n) = self.cols[i];
                x[p] - n.map_or(0.0, |n| x[n])
            })
            .collect()
    }
}

/// Converts a modelling-form problem into sparse standard simplex form.
fn to_standard_form(problem: &LpProblem) -> (SparseStandardForm, VarMapping) {
    // Assign columns to variables.
    let mut cols: Vec<(usize, Option<usize>)> = Vec::with_capacity(problem.num_vars());
    let mut next = 0usize;
    for kind in &problem.kinds {
        match kind {
            VarKind::NonNegative => {
                cols.push((next, None));
                next += 1;
            }
            VarKind::Free => {
                cols.push((next, Some(next + 1)));
                next += 2;
            }
        }
    }
    let num_var_cols = next;
    // One slack/surplus column per inequality constraint.
    let num_slacks = problem
        .constraints
        .iter()
        .filter(|c| c.op != ConstraintOp::Eq)
        .count();
    let num_cols = num_var_cols + num_slacks;

    let mut rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(problem.constraints.len());
    let mut b: Vec<f64> = Vec::with_capacity(problem.constraints.len());
    let mut slack_idx = num_var_cols;
    for constraint in &problem.constraints {
        let mut row: Vec<(usize, f64)> = Vec::with_capacity(constraint.coeffs.len() * 2 + 1);
        for (v, coeff) in &constraint.coeffs {
            let (p, n) = cols[v.0];
            row.push((p, *coeff));
            if let Some(n) = n {
                row.push((n, -*coeff));
            }
        }
        // Standard form needs `b ≥ 0`: negate the row *before* the slack is
        // assigned, flipping the operator to match, so the slack sign
        // follows directly from the (flipped) operator.  The previous code
        // wrote the slack first and then negated it together with the row —
        // same emitted matrix, but the sign was right only by cancellation;
        // the `negative_rhs_*` tests below pin the emitted form either way.
        let mut rhs = constraint.rhs;
        let mut op = constraint.op;
        if rhs < 0.0 {
            for (_, v) in row.iter_mut() {
                *v = -*v;
            }
            rhs = -rhs;
            op = match op {
                ConstraintOp::Le => ConstraintOp::Ge,
                ConstraintOp::Ge => ConstraintOp::Le,
                ConstraintOp::Eq => ConstraintOp::Eq,
            };
        }
        match op {
            ConstraintOp::Le => {
                row.push((slack_idx, 1.0));
                slack_idx += 1;
            }
            ConstraintOp::Ge => {
                row.push((slack_idx, -1.0));
                slack_idx += 1;
            }
            ConstraintOp::Eq => {}
        }
        rows.push(row);
        b.push(rhs);
    }

    // Objective.
    let mut c = vec![0.0; num_cols];
    match &problem.objective {
        Objective::Feasibility => {}
        Objective::Linear(dense) => {
            for (i, coeff) in dense.iter().enumerate() {
                let (p, n) = cols[i];
                c[p] += coeff;
                if let Some(n) = n {
                    c[n] -= coeff;
                }
            }
        }
        Objective::MinimizeL1(vars) => {
            // With the split x = x⁺ − x⁻, minimising Σ (x⁺ + x⁻) equals
            // minimising Σ |x| (at an optimum at most one of the pair is
            // non-zero).
            for v in vars {
                let (p, n) = cols[v.0];
                c[p] += 1.0;
                if let Some(n) = n {
                    c[n] += 1.0;
                }
            }
        }
        Objective::MinimizeLinf(_) => unreachable!("lowered before conversion"),
    }

    let a = CsrMatrix::from_rows(num_cols, &rows);
    // Record the split pairs: column `n` is the exact negation of `p`, which
    // lets the revised backend price both with one dot product.
    let mut mirror = vec![None; num_cols];
    for &(p, n) in &cols {
        if let Some(n) = n {
            mirror[p] = Some(n);
        }
    }
    (SparseStandardForm { a, b, c, mirror }, VarMapping { cols })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LpProblem, VarKind};

    /// Runs every test problem through the dense oracle and the revised
    /// backend under both pricing rules, checking all three agree.
    fn solve_both(lp: &LpProblem) -> Result<Solution, LpError> {
        let dense = solve_with_options(
            lp,
            &SolveOptions {
                backend: LpBackend::DenseTableau,
                ..SolveOptions::default()
            },
        );
        let mut last = dense.clone();
        for pricing in [PricingRule::Dantzig, PricingRule::Devex] {
            let revised = solve_with_options(
                lp,
                &SolveOptions {
                    backend: LpBackend::RevisedSparse,
                    pricing,
                    ..SolveOptions::default()
                },
            );
            match (&dense, &revised) {
                (Ok(d), Ok(r)) => assert!(
                    (d.objective - r.objective).abs() < 1e-6,
                    "backends disagree ({pricing:?}): dense {} vs revised {}",
                    d.objective,
                    r.objective
                ),
                (a, b) => assert_eq!(a, b, "backends disagree on classification ({pricing:?})"),
            }
            last = revised;
        }
        last
    }

    #[test]
    fn simple_linear_objective() {
        // min x + y s.t. x + y >= 2, x - y = 0  => x = y = 1.
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        let y = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 2.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 0.0);
        lp.set_objective_linear(&[(x, 1.0), (y, 1.0)]);
        let sol = solve_both(&lp).unwrap();
        assert!((sol.values[0] - 1.0).abs() < 1e-7);
        assert!((sol.values[1] - 1.0).abs() < 1e-7);
        assert!((sol.objective - 2.0).abs() < 1e-7);
    }

    #[test]
    fn l1_minimisation_prefers_sparse_solutions() {
        // Constraints: x + y >= 1. The l1-minimal solutions have |x|+|y| = 1.
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        let y = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 1.0);
        lp.minimize_l1_of(&[x, y]);
        let sol = solve_both(&lp).unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-7);
        assert!(lp.is_feasible(&sol.values, 1e-7));
    }

    #[test]
    fn linf_minimisation_spreads_mass() {
        // x + y >= 1 with linf objective: optimum max(|x|,|y|) = 0.5.
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        let y = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 1.0);
        lp.minimize_linf_of(&[x, y]);
        let sol = solve_both(&lp).unwrap();
        assert!((sol.objective - 0.5).abs() < 1e-7);
        assert!(lp.is_feasible(&sol.values, 1e-7));
        assert!(sol.values.iter().all(|v| v.abs() <= 0.5 + 1e-7));
    }

    #[test]
    fn negative_rhs_handled() {
        // x <= -3 with min |x| => x = -3.
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Le, -3.0);
        lp.minimize_l1_of(&[x]);
        let sol = solve_both(&lp).unwrap();
        assert!((sol.values[0] + 3.0).abs() < 1e-7);
        assert!((sol.objective - 3.0).abs() < 1e-7);
    }

    #[test]
    fn negative_rhs_ge_rows_get_usable_slack() {
        // Pins the standard-form slack invariant: a `≥` row with negative
        // RHS is flipped to a `≤` row with positive RHS and must carry a
        // clean `+1` slack — a basis the phase-1 seeding can use directly,
        // so no artificial variable (and no phase-1 pivots) are needed for
        // it.  Guards the flip-before-slack rewrite of `to_standard_form`.
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::NonNegative);
        lp.add_constraint(&[(x, -1.0)], ConstraintOp::Ge, -5.0); // -x >= -5 ⟺ x <= 5
        let (sf, _) = to_standard_form(&lp);
        assert_eq!(sf.b, vec![5.0]);
        let (cols, vals) = sf.a.row(0);
        // Row stores x's coefficient +1 (negated) and the slack +1.
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[1.0, 1.0]);

        // And the flipped row solves correctly under both backends.
        lp.set_objective_linear(&[(x, -1.0)]); // max x => x = 5
        let sol = solve_both(&lp).unwrap();
        assert!((sol.values[0] - 5.0).abs() < 1e-7);
    }

    #[test]
    fn negative_rhs_le_rows_become_surplus_rows() {
        // The mirror case: `x ≤ -3` flips to `-x ≥ 3`, whose surplus is -1.
        // The origin violates this row, so an artificial (not the surplus)
        // must seed the basis — the artificial here is mathematically
        // required, and the conversion must *not* pretend the surplus
        // column is usable.
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Le, -3.0);
        let (sf, _) = to_standard_form(&lp);
        assert_eq!(sf.b, vec![3.0]);
        let (cols, vals) = sf.a.row(0);
        // x = p - n: flipped row is -p + n - s = 3 with surplus s.
        assert_eq!(cols, &[0, 1, 2]);
        assert_eq!(vals, &[-1.0, 1.0, -1.0]);
    }

    #[test]
    fn infeasible_problem_reports_error() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 1.0);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 0.0);
        lp.minimize_l1_of(&[x]);
        assert_eq!(solve_both(&lp), Err(LpError::Infeasible));
    }

    #[test]
    fn unbounded_problem_reports_error() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 0.0);
        lp.set_objective_linear(&[(x, -1.0)]);
        assert_eq!(solve_both(&lp), Err(LpError::Unbounded));
    }

    #[test]
    fn feasibility_only_problem() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::NonNegative);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 2.0);
        let sol = solve_both(&lp).unwrap();
        assert!(lp.is_feasible(&sol.values, 1e-7));
    }

    #[test]
    fn equality_constraints_with_free_vars() {
        // x + 2y = 4, x - y = 1 => x = 2, y = 1.
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        let y = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(x, 1.0), (y, 2.0)], ConstraintOp::Eq, 4.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0);
        lp.minimize_l1_of(&[x, y]);
        let sol = solve_both(&lp).unwrap();
        assert!((sol.values[0] - 2.0).abs() < 1e-6);
        assert!((sol.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut lp = LpProblem::new();
        let xs = lp.add_vars(8, VarKind::Free);
        for (i, x) in xs.iter().enumerate() {
            lp.add_constraint(&[(*x, 1.0)], ConstraintOp::Ge, i as f64);
        }
        lp.minimize_l1_of(&xs);
        assert_eq!(solve_with_limit(&lp, 1), Err(LpError::IterationLimit));
    }

    #[test]
    fn unrecognised_pricing_values_warn_and_fall_back() {
        assert_eq!(parse_pricing_value("dantzig"), Ok(Pricing::Dantzig));
        assert_eq!(parse_pricing_value("DEVEX"), Ok(Pricing::Devex));
        for bad in ["", "steepest", "devex ", "bland"] {
            let warning = parse_pricing_value(bad).expect_err(bad);
            assert!(warning.contains("PRDNN_LP_PRICING"), "{warning}");
            assert!(warning.contains(bad), "{warning}");
            assert!(warning.contains("devex"), "{warning}");
        }
    }

    #[test]
    fn auto_policy_picks_dense_for_small_and_revised_for_wide_sparse() {
        // Small problem: dense.
        let mut small = LpProblem::new();
        let x = small.add_var(VarKind::Free);
        small.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 1.0);
        let (sf_small, _) = to_standard_form(&small);
        assert!(!auto_prefers_revised(&sf_small));

        // Wide block-sparse problem (one block per "key point"): revised.
        let mut wide = LpProblem::new();
        let vars = wide.add_vars(128, VarKind::Free);
        for block in 0..16 {
            let terms: Vec<_> = (0..8).map(|k| (vars[block * 8 + k], 1.0)).collect();
            wide.add_constraint(&terms, ConstraintOp::Le, 1.0);
            wide.add_constraint(&terms, ConstraintOp::Ge, -1.0);
        }
        wide.minimize_l1_of(&vars);
        let (sf_wide, _) = to_standard_form(&wide);
        assert!(auto_prefers_revised(&sf_wide));
    }

    #[test]
    fn solve_with_stats_counts_revised_pivots_and_zeroes_dense() {
        // A wide block-sparse program the revised backend must pivot on.
        let mut wide = LpProblem::new();
        let vars = wide.add_vars(128, VarKind::Free);
        for block in 0..16 {
            let terms: Vec<_> = (0..8).map(|k| (vars[block * 8 + k], 1.0)).collect();
            wide.add_constraint(&terms, ConstraintOp::Ge, 1.0);
        }
        wide.minimize_l1_of(&vars);
        let revised = SolveOptions {
            backend: LpBackend::RevisedSparse,
            ..SolveOptions::default()
        };
        let (solution, stats) = solve_with_stats(&wide, &revised).unwrap();
        assert!((solution.objective - 16.0).abs() < 1e-6);
        assert!(stats.pivots > 0, "revised solve must report pivot work");

        // The dense tableau is uninstrumented: all-zero stats, same optimum.
        let dense = SolveOptions {
            backend: LpBackend::DenseTableau,
            ..SolveOptions::default()
        };
        let (dense_solution, dense_stats) = solve_with_stats(&wide, &dense).unwrap();
        assert!((dense_solution.objective - solution.objective).abs() < 1e-6);
        assert_eq!(dense_stats, LpStats::default());

        // ℓ∞ lowering carries the augmented solve's counters through.
        let mut linf = LpProblem::new();
        let x = linf.add_var(VarKind::Free);
        let y = linf.add_var(VarKind::Free);
        linf.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 1.0);
        linf.minimize_linf_of(&[x, y]);
        let (linf_solution, linf_stats) = solve_with_stats(
            &linf,
            &SolveOptions {
                backend: LpBackend::RevisedSparse,
                ..SolveOptions::default()
            },
        )
        .unwrap();
        assert!((linf_solution.objective - 0.5).abs() < 1e-7);
        assert!(linf_stats.pivots > 0);
    }
}
