//! Conversion from modelling form to standard form and back.

use crate::problem::{ConstraintOp, LpProblem, Objective, VarKind};
use crate::simplex::{solve_standard, SimplexOutcome, StandardForm};
use crate::LpError;

/// An optimal solution of an [`LpProblem`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Value of each problem variable, indexed by [`crate::VarId::index`].
    pub values: Vec<f64>,
    /// Optimal objective value (0 for pure feasibility problems).
    pub objective: f64,
}

/// Default simplex iteration limit used by [`solve`].
const DEFAULT_MAX_ITERS: usize = 2_000_000;

/// Solves the problem with the default iteration limit.
///
/// # Errors
///
/// Returns [`LpError::Infeasible`] if no point satisfies the constraints,
/// [`LpError::Unbounded`] if the objective is unbounded below, and
/// [`LpError::IterationLimit`] if the simplex iteration budget is exhausted.
pub fn solve(problem: &LpProblem) -> Result<Solution, LpError> {
    solve_with_limit(problem, DEFAULT_MAX_ITERS)
}

/// Solves the problem with an explicit simplex iteration limit.
///
/// # Errors
///
/// See [`solve`].
pub fn solve_with_limit(problem: &LpProblem, max_iters: usize) -> Result<Solution, LpError> {
    // ℓ∞ objectives are lowered to a plain linear objective over an
    // augmented problem with one extra bound variable `t ≥ |x_i|`.
    if let Objective::MinimizeLinf(vars) = &problem.objective {
        let mut augmented = problem.clone();
        let t = augmented.add_var(VarKind::NonNegative);
        for v in vars {
            augmented.add_constraint(&[(*v, 1.0), (t, -1.0)], ConstraintOp::Le, 0.0);
            augmented.add_constraint(&[(*v, -1.0), (t, -1.0)], ConstraintOp::Le, 0.0);
        }
        augmented.set_objective_linear(&[(t, 1.0)]);
        let mut solution = solve_with_limit(&augmented, max_iters)?;
        let objective = solution.values[t.index()];
        solution.values.truncate(problem.num_vars());
        return Ok(Solution {
            values: solution.values,
            objective,
        });
    }

    let (sf, mapping) = to_standard_form(problem);
    match solve_standard(&sf, max_iters) {
        SimplexOutcome::Optimal { x, objective } => {
            let values = mapping.recover(problem, &x);
            Ok(Solution { values, objective })
        }
        SimplexOutcome::Infeasible => Err(LpError::Infeasible),
        SimplexOutcome::Unbounded => Err(LpError::Unbounded),
        SimplexOutcome::IterationLimit => Err(LpError::IterationLimit),
    }
}

/// How each problem variable maps onto standard-form columns.
struct VarMapping {
    /// `(positive_col, Option<negative_col>)` per problem variable; free
    /// variables are split `x = x⁺ − x⁻`.
    cols: Vec<(usize, Option<usize>)>,
}

impl VarMapping {
    fn recover(&self, problem: &LpProblem, x: &[f64]) -> Vec<f64> {
        (0..problem.num_vars())
            .map(|i| {
                let (p, n) = self.cols[i];
                x[p] - n.map_or(0.0, |n| x[n])
            })
            .collect()
    }
}

/// Converts a modelling-form problem into standard simplex form.
fn to_standard_form(problem: &LpProblem) -> (StandardForm, VarMapping) {
    // Assign columns to variables.
    let mut cols: Vec<(usize, Option<usize>)> = Vec::with_capacity(problem.num_vars());
    let mut next = 0usize;
    for kind in &problem.kinds {
        match kind {
            VarKind::NonNegative => {
                cols.push((next, None));
                next += 1;
            }
            VarKind::Free => {
                cols.push((next, Some(next + 1)));
                next += 2;
            }
        }
    }
    let num_var_cols = next;
    // One slack/surplus column per inequality constraint.
    let num_slacks = problem
        .constraints
        .iter()
        .filter(|c| c.op != ConstraintOp::Eq)
        .count();
    let num_cols = num_var_cols + num_slacks;

    let mut a: Vec<Vec<f64>> = Vec::with_capacity(problem.constraints.len());
    let mut b: Vec<f64> = Vec::with_capacity(problem.constraints.len());
    let mut slack_idx = num_var_cols;
    for constraint in &problem.constraints {
        let mut row = vec![0.0; num_cols];
        for (v, coeff) in &constraint.coeffs {
            let (p, n) = cols[v.0];
            row[p] += coeff;
            if let Some(n) = n {
                row[n] -= coeff;
            }
        }
        match constraint.op {
            ConstraintOp::Le => {
                row[slack_idx] = 1.0;
                slack_idx += 1;
            }
            ConstraintOp::Ge => {
                row[slack_idx] = -1.0;
                slack_idx += 1;
            }
            ConstraintOp::Eq => {}
        }
        let mut rhs = constraint.rhs;
        if rhs < 0.0 {
            for v in row.iter_mut() {
                *v = -*v;
            }
            rhs = -rhs;
        }
        a.push(row);
        b.push(rhs);
    }

    // Objective.
    let mut c = vec![0.0; num_cols];
    match &problem.objective {
        Objective::Feasibility => {}
        Objective::Linear(dense) => {
            for (i, coeff) in dense.iter().enumerate() {
                let (p, n) = cols[i];
                c[p] += coeff;
                if let Some(n) = n {
                    c[n] -= coeff;
                }
            }
        }
        Objective::MinimizeL1(vars) => {
            // With the split x = x⁺ − x⁻, minimising Σ (x⁺ + x⁻) equals
            // minimising Σ |x| (at an optimum at most one of the pair is
            // non-zero).
            for v in vars {
                let (p, n) = cols[v.0];
                c[p] += 1.0;
                if let Some(n) = n {
                    c[n] += 1.0;
                }
            }
        }
        Objective::MinimizeLinf(_) => unreachable!("lowered before conversion"),
    }

    (StandardForm { a, b, c }, VarMapping { cols })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LpProblem, VarKind};

    #[test]
    fn simple_linear_objective() {
        // min x + y s.t. x + y >= 2, x - y = 0  => x = y = 1.
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        let y = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 2.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 0.0);
        lp.set_objective_linear(&[(x, 1.0), (y, 1.0)]);
        let sol = solve(&lp).unwrap();
        assert!((sol.values[0] - 1.0).abs() < 1e-7);
        assert!((sol.values[1] - 1.0).abs() < 1e-7);
        assert!((sol.objective - 2.0).abs() < 1e-7);
    }

    #[test]
    fn l1_minimisation_prefers_sparse_solutions() {
        // Constraints: x + y >= 1. The l1-minimal solutions have |x|+|y| = 1.
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        let y = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 1.0);
        lp.minimize_l1_of(&[x, y]);
        let sol = solve(&lp).unwrap();
        assert!((sol.objective - 1.0).abs() < 1e-7);
        assert!(lp.is_feasible(&sol.values, 1e-7));
    }

    #[test]
    fn linf_minimisation_spreads_mass() {
        // x + y >= 1 with linf objective: optimum max(|x|,|y|) = 0.5.
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        let y = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 1.0);
        lp.minimize_linf_of(&[x, y]);
        let sol = solve(&lp).unwrap();
        assert!((sol.objective - 0.5).abs() < 1e-7);
        assert!(lp.is_feasible(&sol.values, 1e-7));
        assert!(sol.values.iter().all(|v| v.abs() <= 0.5 + 1e-7));
    }

    #[test]
    fn negative_rhs_handled() {
        // x <= -3 with min |x| => x = -3.
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Le, -3.0);
        lp.minimize_l1_of(&[x]);
        let sol = solve(&lp).unwrap();
        assert!((sol.values[0] + 3.0).abs() < 1e-7);
        assert!((sol.objective - 3.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_problem_reports_error() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 1.0);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Le, 0.0);
        lp.minimize_l1_of(&[x]);
        assert_eq!(solve(&lp), Err(LpError::Infeasible));
    }

    #[test]
    fn unbounded_problem_reports_error() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 0.0);
        lp.set_objective_linear(&[(x, -1.0)]);
        assert_eq!(solve(&lp), Err(LpError::Unbounded));
    }

    #[test]
    fn feasibility_only_problem() {
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::NonNegative);
        lp.add_constraint(&[(x, 1.0)], ConstraintOp::Ge, 2.0);
        let sol = solve(&lp).unwrap();
        assert!(lp.is_feasible(&sol.values, 1e-7));
    }

    #[test]
    fn equality_constraints_with_free_vars() {
        // x + 2y = 4, x - y = 1 => x = 2, y = 1.
        let mut lp = LpProblem::new();
        let x = lp.add_var(VarKind::Free);
        let y = lp.add_var(VarKind::Free);
        lp.add_constraint(&[(x, 1.0), (y, 2.0)], ConstraintOp::Eq, 4.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Eq, 1.0);
        lp.minimize_l1_of(&[x, y]);
        let sol = solve(&lp).unwrap();
        assert!((sol.values[0] - 2.0).abs() < 1e-6);
        assert!((sol.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iteration_limit_is_reported() {
        let mut lp = LpProblem::new();
        let xs = lp.add_vars(8, VarKind::Free);
        for (i, x) in xs.iter().enumerate() {
            lp.add_constraint(&[(*x, 1.0)], ConstraintOp::Ge, i as f64);
        }
        lp.minimize_l1_of(&xs);
        assert_eq!(solve_with_limit(&lp, 1), Err(LpError::IterationLimit));
    }
}
