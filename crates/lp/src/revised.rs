//! Two-phase *revised* simplex over sparse standard-form programs.
//!
//! Where the flat-tableau solver ([`crate::simplex`]) updates every cell of
//! an `(m+1) × (n+1)` tableau per pivot — `O(m·n)` no matter how sparse the
//! constraints are — the revised method keeps only the basis factorisation
//! ([`crate::basis::Basis`]: LU + eta file) and reconstructs what it needs
//! each iteration:
//!
//! 1. **BTRAN** `y = B⁻ᵀ c_B`, then price every nonbasic column with a
//!    sparse dot product `d_j = c_j − y · A_j` — `O(nnz)` total over the
//!    CSC columns.
//! 2. **FTRAN** `w = B⁻¹ A_e` for the chosen entering column only.
//! 3. Ratio test on `w` and an `O(m)` incremental update of the basic
//!    values; the pivot itself becomes one product-form eta.
//!
//! Per-iteration cost is `O(nnz + m²)` instead of `O(m·n)`, which is the
//! win on the paper's wide repair LPs (`n ≫ m`, block-sparse rows — one
//! block per key point).  Pivoting rules (Dantzig with a Bland fallback
//! after a degenerate streak), tolerances, and phase structure mirror the
//! dense oracle so the two backends classify problems identically.

use crate::basis::{Basis, UpdateOutcome};
use crate::simplex::{
    seed_basis_from_unit_columns, solve_unconstrained, SimplexOutcome, COST_EPS, FEAS_EPS,
    PIVOT_EPS,
};
use crate::sparse::{CscMatrix, SparseStandardForm};

/// Consecutive degenerate pivots before switching to Bland's rule.
const BLAND_THRESHOLD: usize = 40;

/// Columns of the phase-1 working matrix `[A | I_artificials]` without ever
/// materialising the artificial block.
struct ColumnSource<'a> {
    csc: &'a CscMatrix,
    /// Row of the unit entry of each artificial column, in column order.
    artificial_rows: &'a [usize],
    /// Number of structural columns; `j >= n` addresses artificials.
    n: usize,
}

impl ColumnSource<'_> {
    fn dot(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.n {
            self.csc.col_dot(j, y)
        } else {
            y[self.artificial_rows[j - self.n]]
        }
    }

    fn scatter(&self, j: usize, out: &mut [f64]) {
        if j < self.n {
            self.csc.scatter_col(j, out);
        } else {
            out.fill(0.0);
            out[self.artificial_rows[j - self.n]] = 1.0;
        }
    }
}

/// Rebuilds the dense basis matrix from the current basic column set and
/// factorises it.  `None` signals numerical breakdown (singular basis).
fn refactorize(cols: &ColumnSource<'_>, basis_cols: &[usize]) -> Option<Basis> {
    let m = basis_cols.len();
    let mut mat = vec![0.0; m * m];
    let mut col_buf = vec![0.0; m];
    for (r, &j) in basis_cols.iter().enumerate() {
        cols.scatter(j, &mut col_buf);
        for (i, &v) in col_buf.iter().enumerate() {
            mat[i * m + r] = v;
        }
    }
    Basis::factorize(m, &mat)
}

enum PivotRun {
    Optimal,
    Unbounded,
    IterationLimit,
    /// Singular refactorisation or similar breakdown: the caller should fall
    /// back to the dense oracle.
    NumericalFailure,
}

/// State threaded through both phases.
struct Solver<'a> {
    cols: ColumnSource<'a>,
    /// Mirror-pair map of the structural columns (split free variables).
    mirror: &'a [Option<usize>],
    rhs: &'a [f64],
    /// Basic column per row.
    basis_cols: Vec<usize>,
    /// Membership flag per column (structural + artificial).
    in_basis: Vec<bool>,
    /// Current basic values `x_B = B⁻¹ b`.
    x_b: Vec<f64>,
    basis: Basis,
}

impl Solver<'_> {
    /// Refactorises from the current basic set and recomputes `x_B` from
    /// scratch (the periodic error reset of the eta scheme).
    fn refactorize_and_recompute(&mut self) -> bool {
        match refactorize(&self.cols, &self.basis_cols) {
            Some(basis) => {
                self.basis = basis;
                self.x_b.copy_from_slice(self.rhs);
                self.basis.ftran(&mut self.x_b);
                true
            }
            None => false,
        }
    }

    /// Runs pivots to optimality for the given costs (length: structural +
    /// artificial columns).  Only structural columns may enter; artificials
    /// start basic and never come back.
    fn run(&mut self, cost: &[f64], iters_left: &mut usize) -> PivotRun {
        let m = self.basis_cols.len();
        let n = self.cols.n;
        let mut y = vec![0.0; m];
        let mut w = vec![0.0; m];
        let mut degenerate_streak = 0usize;
        loop {
            if *iters_left == 0 {
                return PivotRun::IterationLimit;
            }
            *iters_left -= 1;

            if self.basis.should_refactorize() && !self.refactorize_and_recompute() {
                return PivotRun::NumericalFailure;
            }

            // BTRAN: simplex multipliers y = B⁻ᵀ c_B.
            for (r, &j) in self.basis_cols.iter().enumerate() {
                y[r] = cost[j];
            }
            self.basis.btran(&mut y);

            // Pricing over the sparse structural columns.  Dantzig rule
            // (most negative reduced cost, earliest index on ties) until a
            // degenerate streak switches to Bland (first negative).  Split
            // pairs `x = x⁺ − x⁻` are exact column negations, so one dot
            // product prices both.
            let use_bland = degenerate_streak > BLAND_THRESHOLD;
            let mut entering: Option<usize> = None;
            let mut best = -COST_EPS;
            let mut consider = |j: usize, d: f64| -> bool {
                if d < best {
                    best = d;
                    entering = Some(j);
                    use_bland // Bland: stop at the first improving column.
                } else {
                    false
                }
            };
            let mut j = 0;
            while j < n {
                if self.mirror[j] == Some(j + 1) {
                    let (jb, kb) = (self.in_basis[j], self.in_basis[j + 1]);
                    if !(jb && kb) {
                        let t = self.cols.dot(j, &y);
                        if (!jb && consider(j, cost[j] - t))
                            || (!kb && consider(j + 1, cost[j + 1] + t))
                        {
                            break;
                        }
                    }
                    j += 2;
                } else {
                    if !self.in_basis[j] && consider(j, cost[j] - self.cols.dot(j, &y)) {
                        break;
                    }
                    j += 1;
                }
            }
            let Some(e) = entering else {
                return PivotRun::Optimal;
            };

            // FTRAN the entering column.
            self.cols.scatter(e, &mut w);
            self.basis.ftran(&mut w);

            // Ratio test (same tie-break as the dense oracle: smallest
            // basic column index among near-ties).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for (i, &wi) in w.iter().enumerate() {
                if wi > PIVOT_EPS {
                    let ratio = self.x_b[i] / wi;
                    let better = ratio < best_ratio - PIVOT_EPS
                        || (ratio < best_ratio + PIVOT_EPS
                            && leave.is_none_or(|l| self.basis_cols[i] < self.basis_cols[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(r) = leave else {
                return PivotRun::Unbounded;
            };
            if best_ratio < PIVOT_EPS {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }

            // Incremental basic-value update: x_B ← x_B − θ w, x_B[r] ← θ.
            let theta = best_ratio;
            for (xi, &wi) in self.x_b.iter_mut().zip(w.iter()) {
                *xi -= theta * wi;
            }
            self.x_b[r] = theta;

            let leaving = self.basis_cols[r];
            self.basis_cols[r] = e;
            self.in_basis[e] = true;
            self.in_basis[leaving] = false;
            if self.basis.update(r, &w) == UpdateOutcome::RefusedNeedsRefactor
                && !self.refactorize_and_recompute()
            {
                return PivotRun::NumericalFailure;
            }
        }
    }
}

/// Revised simplex on a sparse standard-form program.
///
/// Returns `None` on numerical breakdown (singular basis refactorisation),
/// in which case the caller falls back to the dense tableau oracle.
pub(crate) fn solve_standard_sparse(
    sf: &SparseStandardForm,
    max_iters: usize,
) -> Option<SimplexOutcome> {
    let m = sf.num_rows();
    let n = sf.num_cols();
    debug_assert!(sf.b.iter().all(|&bi| bi >= -PIVOT_EPS));

    if m == 0 {
        return Some(solve_unconstrained(n, &sf.c));
    }

    let csc = sf.a.to_csc();
    debug_assert_eq!(csc.nrows(), m);
    debug_assert_eq!(csc.ncols(), n);

    // Seed the basis from singleton ~unit columns with ~zero cost (the
    // slacks the standard-form conversion arranges), exactly as the dense
    // oracle does; the remaining rows get artificial variables.
    let basis_for_row = seed_basis_from_unit_columns(
        m,
        n,
        &sf.c,
        (0..m).flat_map(|i| {
            let (cols, vals) = sf.a.row(i);
            cols.iter().zip(vals).map(move |(&j, &v)| (i, j, v))
        }),
    );
    let artificial_rows: Vec<usize> = (0..m).filter(|&i| basis_for_row[i].is_none()).collect();
    let num_artificials = artificial_rows.len();
    let total = n + num_artificials;

    let mut basis_cols: Vec<usize> = Vec::with_capacity(m);
    let mut in_basis = vec![false; total];
    let mut next_artificial = n;
    for seed in basis_for_row.iter() {
        let j = match seed {
            Some(j) => *j,
            None => {
                let j = next_artificial;
                next_artificial += 1;
                j
            }
        };
        basis_cols.push(j);
        in_basis[j] = true;
    }

    let cols = ColumnSource {
        csc: &csc,
        artificial_rows: &artificial_rows,
        n,
    };
    let mut solver = Solver {
        cols,
        mirror: &sf.mirror,
        rhs: &sf.b,
        basis_cols,
        in_basis,
        x_b: vec![0.0; m],
        basis: Basis::factorize(1, &[1.0]).expect("identity factorisation"),
    };
    if !solver.refactorize_and_recompute() {
        return None;
    }

    let mut iters_left = max_iters;
    if num_artificials > 0 {
        // ---- Phase 1: minimise the sum of the artificial variables.
        let mut cost1 = vec![0.0; total];
        for c in cost1.iter_mut().skip(n) {
            *c = 1.0;
        }
        match solver.run(&cost1, &mut iters_left) {
            PivotRun::Optimal => {}
            // A feasibility objective bounded below by zero cannot be
            // unbounded; treat it as breakdown if it ever happens.
            PivotRun::Unbounded | PivotRun::NumericalFailure => return None,
            PivotRun::IterationLimit => return Some(SimplexOutcome::IterationLimit),
        }
        let phase1_value: f64 = solver
            .basis_cols
            .iter()
            .zip(&solver.x_b)
            .filter(|(&j, _)| j >= n)
            .map(|(_, &v)| v)
            .sum();
        if phase1_value > FEAS_EPS {
            return Some(SimplexOutcome::Infeasible);
        }

        // Drive remaining artificials out of the basis with degenerate
        // pivots where a structural column is available.  Rows where none
        // is (redundant rows) keep their artificial basic at level zero:
        // its row of `B⁻¹A` is all-zero, so no later pivot can move it.
        for r in 0..m {
            if solver.basis_cols[r] < n {
                continue;
            }
            let mut rho = vec![0.0; m];
            rho[r] = 1.0;
            solver.basis.btran(&mut rho);
            let replacement =
                (0..n).find(|&j| !solver.in_basis[j] && solver.cols.dot(j, &rho).abs() > PIVOT_EPS);
            if let Some(j) = replacement {
                let mut w = vec![0.0; m];
                solver.cols.scatter(j, &mut w);
                solver.basis.ftran(&mut w);
                let leaving = solver.basis_cols[r];
                solver.basis_cols[r] = j;
                solver.in_basis[j] = true;
                solver.in_basis[leaving] = false;
                // Phase 1 declared the artificial's sub-tolerance residual
                // feasible, so the pivot is exactly degenerate: zero the
                // value *before* the eta is recorded, which makes the eta's
                // transform of the basic values a no-op (x_r/w_r = 0) and
                // keeps x_b consistent with the updated basis even when
                // w_r is tiny.
                solver.x_b[r] = 0.0;
                if solver.basis.update(r, &w) == UpdateOutcome::RefusedNeedsRefactor
                    && !solver.refactorize_and_recompute()
                {
                    return None;
                }
            }
        }
    }

    // ---- Phase 2: the real objective (artificial costs are zero; they can
    // only remain basic at level zero on redundant rows).
    let mut cost2 = sf.c.clone();
    cost2.resize(total, 0.0);
    match solver.run(&cost2, &mut iters_left) {
        PivotRun::Optimal => {}
        PivotRun::Unbounded => return Some(SimplexOutcome::Unbounded),
        PivotRun::IterationLimit => return Some(SimplexOutcome::IterationLimit),
        PivotRun::NumericalFailure => return None,
    }

    let mut x = vec![0.0; n];
    for (r, &j) in solver.basis_cols.iter().enumerate() {
        if j < n {
            x[j] = solver.x_b[r];
        }
    }
    let objective: f64 = sf.c.iter().zip(&x).map(|(c, v)| c * v).sum();
    Some(SimplexOutcome::Optimal { x, objective })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    fn sparse_sf(
        rows: Vec<Vec<(usize, f64)>>,
        ncols: usize,
        b: Vec<f64>,
        c: Vec<f64>,
    ) -> SparseStandardForm {
        SparseStandardForm::new(CsrMatrix::from_rows(ncols, &rows), b, c)
    }

    fn optimal(sf: &SparseStandardForm) -> (Vec<f64>, f64) {
        match solve_standard_sparse(sf, 10_000).expect("no numerical failure") {
            SimplexOutcome::Optimal { x, objective } => (x, objective),
            other => panic!("expected optimal, got {:?}", other),
        }
    }

    #[test]
    fn textbook_maximization_as_minimization() {
        // Same program as the dense oracle's test: optimum (2, 6), value -36.
        let sf = sparse_sf(
            vec![
                vec![(0, 1.0), (2, 1.0)],
                vec![(1, 2.0), (3, 1.0)],
                vec![(0, 3.0), (1, 2.0), (4, 1.0)],
            ],
            5,
            vec![4.0, 12.0, 18.0],
            vec![-3.0, -5.0, 0.0, 0.0, 0.0],
        );
        let (x, obj) = optimal(&sf);
        assert!((x[0] - 2.0).abs() < 1e-7);
        assert!((x[1] - 6.0).abs() < 1e-7);
        assert!((obj + 36.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let sf = sparse_sf(
            vec![vec![(0, 1.0)], vec![(0, 1.0)]],
            1,
            vec![1.0, 2.0],
            vec![0.0],
        );
        assert!(matches!(
            solve_standard_sparse(&sf, 1000).unwrap(),
            SimplexOutcome::Infeasible
        ));
    }

    #[test]
    fn unbounded_detected() {
        let sf = sparse_sf(
            vec![vec![(0, 1.0), (1, -1.0)]],
            2,
            vec![0.0],
            vec![-1.0, -1.0],
        );
        assert!(matches!(
            solve_standard_sparse(&sf, 1000).unwrap(),
            SimplexOutcome::Unbounded
        ));
    }

    #[test]
    fn redundant_rows_leave_inert_artificials() {
        // Second row is twice the first; its artificial stays basic at zero
        // and the optimum is still found.
        let sf = sparse_sf(
            vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 2.0), (1, 2.0)]],
            2,
            vec![1.0, 2.0],
            vec![1.0, 0.0],
        );
        let (x, obj) = optimal(&sf);
        assert!((x[0] + x[1] - 1.0).abs() < 1e-7);
        assert!(obj.abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        let sf = sparse_sf(
            vec![
                vec![(0, 1.0), (1, 1.0), (2, 1.0)],
                vec![(0, 1.0), (1, 2.0), (3, 1.0)],
                vec![(0, 2.0), (1, 1.0), (4, 1.0)],
            ],
            5,
            vec![0.0, 0.0, 4.0],
            vec![-1.0, -1.0, 0.0, 0.0, 0.0],
        );
        let (x, _) = optimal(&sf);
        let dense = sf.to_dense();
        for (row, b) in dense.a.iter().zip(&dense.b) {
            let lhs: f64 = row.iter().zip(&x).map(|(a, v)| a * v).sum();
            assert!((lhs - b).abs() < 1e-7);
        }
    }

    #[test]
    fn empty_constraint_system() {
        let sf = sparse_sf(vec![], 2, vec![], vec![1.0, 2.0]);
        let (x, obj) = optimal(&sf);
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(obj, 0.0);
        let sf2 = sparse_sf(vec![], 1, vec![], vec![-1.0]);
        assert!(matches!(
            solve_standard_sparse(&sf2, 10).unwrap(),
            SimplexOutcome::Unbounded
        ));
    }

    #[test]
    fn iteration_limit_is_reported() {
        let sf = sparse_sf(vec![vec![(0, 1.0), (1, 1.0)]], 2, vec![1.0], vec![1.0, 1.0]);
        assert!(matches!(
            solve_standard_sparse(&sf, 0).unwrap(),
            SimplexOutcome::IterationLimit
        ));
    }

    #[test]
    fn refactorisation_cycle_is_exercised() {
        // A chain long enough to exceed Basis::MAX_ETAS pivots: minimise a
        // cost that forces many entering choices on a banded system.
        let m = 120;
        let mut rows = Vec::new();
        for i in 0..m {
            // x_i + x_{i+1} + s_i = 2
            rows.push(vec![(i, 1.0), ((i + 1) % m, 1.0), (m + i, 1.0)]);
        }
        let mut c = vec![0.0; 2 * m];
        for (i, ci) in c.iter_mut().enumerate().take(m) {
            *ci = -((i % 7) as f64) - 1.0;
        }
        let sf = sparse_sf(rows, 2 * m, vec![2.0; m], c);
        let (x, obj) = optimal(&sf);
        // Sanity: feasibility of the returned point.
        let dense = sf.to_dense();
        for (row, b) in dense.a.iter().zip(&dense.b) {
            let lhs: f64 = row.iter().zip(&x).map(|(a, v)| a * v).sum();
            assert!((lhs - b).abs() < 1e-6);
        }
        assert!(obj < 0.0);
    }
}
