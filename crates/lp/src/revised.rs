//! Two-phase *revised* simplex over sparse standard-form programs.
//!
//! Where the flat-tableau solver ([`crate::simplex`]) updates every cell of
//! an `(m+1) × (n+1)` tableau per pivot — `O(m·n)` no matter how sparse the
//! constraints are — the revised method keeps only the basis factorisation
//! ([`crate::basis::Basis`]: LU + eta file) and reconstructs what it needs
//! each iteration:
//!
//! 1. **BTRAN** `y = B⁻ᵀ c_B`, then price every nonbasic column with a
//!    sparse dot product `d_j = c_j − y · A_j` — `O(nnz)` total over the
//!    CSC columns.
//! 2. **FTRAN** `w = B⁻¹ A_e` for the chosen entering column only.
//! 3. Ratio test on `w` and an `O(m)` incremental update of the basic
//!    values; the pivot itself becomes one product-form eta.
//!
//! Per-iteration cost is `O(nnz + m²)` instead of `O(m·n)`, which is the
//! win on the paper's wide repair LPs (`n ≫ m`, block-sparse rows — one
//! block per key point).  Tolerances and phase structure mirror the dense
//! oracle so the two backends classify problems identically.
//!
//! # Pricing rules
//!
//! Two entering-column rules are implemented (selected by [`Pricing`]):
//!
//! * **Dantzig** — full pricing, most negative reduced cost.  One sparse
//!   dot per nonbasic column per pivot; simple, and the historical
//!   behaviour of this backend.
//! * **Devex** ([`Pricing::Devex`], the default for the wide repair LPs) —
//!   reference-framework Devex weights (Forrest–Goldfarb) combined with
//!   *candidate-list partial pricing* in the major/minor ("multiple
//!   pricing") style: a major full scan keeps the best few dozen improving
//!   columns by Devex score, and the minor iterations between major scans
//!   re-price only that list, so most pivots cost a few dozen sparse dots
//!   instead of a full pass.  The entering column maximises `d_j² / γ_j`;
//!   the weights `γ_j` of the candidate columns are updated *for free* from
//!   the reduced-cost differences the minor re-pricing computes anyway
//!   (`α_j/α_e = (d_j − d_j')/d_e`), and the framework resets to 1 on
//!   every refactorisation and whenever a tiny pivot element would inflate
//!   the weights past [`DEVEX_RESET_BOUND`].  Phase 1 always full-prices
//!   with Dantzig — its artificial objective is discarded at the phase
//!   boundary, so no reference framework built for it can pay off — and
//!   the requested rule starts phase 2 from a fresh framework.  Optimality
//!   is still only declared after a full (major) scan finds no improving
//!   column, so both rules classify programs identically.
//!
//! Either rule falls back to Bland's smallest-index rule after a streak of
//! degenerate pivots, guaranteeing termination on cycling-prone programs.

use crate::basis::{Basis, UpdateOutcome};
use crate::simplex::{
    seed_basis_from_unit_columns, solve_unconstrained, SimplexOutcome, COST_EPS, FEAS_EPS,
    PIVOT_EPS,
};
use crate::sparse::{CscMatrix, SparseStandardForm};

/// Consecutive degenerate pivots before switching to Bland's rule.
const BLAND_THRESHOLD: usize = 40;

/// Candidate-list size kept by a Devex major pricing scan (the best K
/// improving columns by Devex score); minor iterations re-price only these.
const DEVEX_CANDIDATES: usize = 64;

/// A fresh major scan runs once the candidate list drains below this.
const DEVEX_REFILL: usize = 8;

/// Upper bound on consecutive minor iterations served from one candidate
/// list: even a well-stocked list goes stale as pivots move the
/// multipliers, so a major scan is forced periodically.
const DEVEX_MINOR_LIMIT: usize = 16;

/// Reference-framework reset trigger: a pivot whose leaving-variable weight
/// `γ_e/α_e²` exceeds this has distorted the Devex approximation beyond
/// usefulness (a tiny pivot element inflates every subsequent update), so
/// the weights restart from a fresh framework.
const DEVEX_RESET_BOUND: f64 = 1e4;

/// Entering-column pricing rule used by [`solve_standard_sparse_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pricing {
    /// Full pricing, most negative reduced cost.
    Dantzig,
    /// Devex reference weights with candidate-list partial pricing.
    Devex,
}

/// Counters describing one revised-simplex solve (used by the degeneracy
/// and pricing regression tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct RevisedStats {
    /// Total pivots across both phases.
    pub pivots: usize,
    /// Pivots taken under the Bland fallback.
    pub bland_pivots: usize,
    /// Basis refactorisations (each one resets the Devex reference
    /// framework).
    pub refactorizations: usize,
    /// Degenerate pivots (zero step length).
    pub degenerate_pivots: usize,
}

/// Columns of the phase-1 working matrix `[A | I_artificials]` without ever
/// materialising the artificial block.
struct ColumnSource<'a> {
    csc: &'a CscMatrix,
    /// Row of the unit entry of each artificial column, in column order.
    artificial_rows: &'a [usize],
    /// Number of structural columns; `j >= n` addresses artificials.
    n: usize,
}

impl ColumnSource<'_> {
    fn dot(&self, j: usize, y: &[f64]) -> f64 {
        if j < self.n {
            self.csc.col_dot(j, y)
        } else {
            y[self.artificial_rows[j - self.n]]
        }
    }

    fn scatter(&self, j: usize, out: &mut [f64]) {
        if j < self.n {
            self.csc.scatter_col(j, out);
        } else {
            out.fill(0.0);
            out[self.artificial_rows[j - self.n]] = 1.0;
        }
    }
}

/// Rebuilds the dense basis matrix from the current basic column set and
/// factorises it.  `None` signals numerical breakdown (singular basis).
fn refactorize(cols: &ColumnSource<'_>, basis_cols: &[usize]) -> Option<Basis> {
    let m = basis_cols.len();
    let mut mat = vec![0.0; m * m];
    let mut col_buf = vec![0.0; m];
    for (r, &j) in basis_cols.iter().enumerate() {
        cols.scatter(j, &mut col_buf);
        for (i, &v) in col_buf.iter().enumerate() {
            mat[i * m + r] = v;
        }
    }
    Basis::factorize(m, &mat)
}

enum PivotRun {
    Optimal,
    Unbounded,
    IterationLimit,
    /// Singular refactorisation or similar breakdown: the caller should fall
    /// back to the dense oracle.
    NumericalFailure,
}

/// State threaded through both phases.
struct Solver<'a> {
    cols: ColumnSource<'a>,
    /// Mirror-pair map of the structural columns (split free variables).
    mirror: &'a [Option<usize>],
    rhs: &'a [f64],
    /// Basic column per row.
    basis_cols: Vec<usize>,
    /// Membership flag per column (structural + artificial).
    in_basis: Vec<bool>,
    /// Current basic values `x_B = B⁻¹ b`.
    x_b: Vec<f64>,
    basis: Basis,
    /// Entering-column rule.
    pricing: Pricing,
    /// Devex reference weights `γ_j ≥ 1`, one per structural column.
    weights: Vec<f64>,
    /// Partial-pricing candidate list: column id and the reduced cost it
    /// was last priced at (the memory that makes the Devex weight update
    /// free — see [`Solver::select_devex`]).
    candidates: Vec<(usize, f64)>,
    /// Minor iterations served from the current candidate list.
    minor_pivots: usize,
    /// Devex bookkeeping of the previous pivot: `(d_e, γ_e)` of the column
    /// that entered, consumed by the next minor re-pricing pass.
    pending: Option<(f64, f64)>,
    stats: RevisedStats,
}

impl Solver<'_> {
    /// Refactorises from the current basic set and recomputes `x_B` from
    /// scratch (the periodic error reset of the eta scheme).  A fresh
    /// factorisation also starts a fresh Devex reference framework: every
    /// weight resets to 1.
    fn refactorize_and_recompute(&mut self) -> bool {
        match refactorize(&self.cols, &self.basis_cols) {
            Some(basis) => {
                self.basis = basis;
                self.x_b.copy_from_slice(self.rhs);
                self.basis.ftran(&mut self.x_b);
                self.weights.fill(1.0);
                self.pending = None;
                self.stats.refactorizations += 1;
                true
            }
            None => false,
        }
    }

    /// `true` when `j` is the negative member of a split pair `x = x⁺ − x⁻`
    /// (its column is the exact negation of column `j − 1`).
    #[inline]
    fn is_mirror_negative(&self, j: usize) -> bool {
        j > 0 && self.mirror[j - 1] == Some(j)
    }

    /// Reduced cost of one structural column, pricing mirror negatives
    /// through their base column's dot product.
    #[inline]
    fn reduced_cost(&self, j: usize, cost: &[f64], y: &[f64]) -> f64 {
        if self.is_mirror_negative(j) {
            cost[j] + self.cols.dot(j - 1, y)
        } else {
            cost[j] - self.cols.dot(j, y)
        }
    }

    /// Visits every nonbasic structural column whose reduced cost is below
    /// `-COST_EPS`, in ascending column order, stopping early once `f`
    /// returns `true`.  Split pairs `x = x⁺ − x⁻` are exact column
    /// negations, so one dot product prices both members.  This is the one
    /// place that knows the mirror-pair iteration; all three pricing rules
    /// drive it, which is what keeps them interchangeable for the
    /// conformance suite.
    fn scan_improving(&self, cost: &[f64], y: &[f64], mut f: impl FnMut(usize, f64) -> bool) {
        let n = self.cols.n;
        let mut j = 0;
        while j < n {
            if self.mirror[j] == Some(j + 1) {
                let (jb, kb) = (self.in_basis[j], self.in_basis[j + 1]);
                if !(jb && kb) {
                    let t = self.cols.dot(j, y);
                    if !jb && cost[j] - t < -COST_EPS && f(j, cost[j] - t) {
                        return;
                    }
                    if !kb && cost[j + 1] + t < -COST_EPS && f(j + 1, cost[j + 1] + t) {
                        return;
                    }
                }
                j += 2;
            } else {
                if !self.in_basis[j] {
                    let d = cost[j] - self.cols.dot(j, y);
                    if d < -COST_EPS && f(j, d) {
                        return;
                    }
                }
                j += 1;
            }
        }
    }

    /// Dantzig rule: full pricing, most negative reduced cost (earliest
    /// index on ties).
    fn select_dantzig(&self, cost: &[f64], y: &[f64]) -> Option<(usize, f64)> {
        let mut entering: Option<(usize, f64)> = None;
        let mut best = f64::INFINITY;
        self.scan_improving(cost, y, |j, d| {
            if d < best {
                best = d;
                entering = Some((j, d));
            }
            false
        });
        entering
    }

    /// Bland's rule: first (smallest-index) improving column.  Guarantees
    /// termination under degeneracy.
    fn select_bland(&self, cost: &[f64], y: &[f64]) -> Option<(usize, f64)> {
        let mut entering: Option<(usize, f64)> = None;
        self.scan_improving(cost, y, |j, d| {
            entering = Some((j, d));
            true
        });
        entering
    }

    /// Devex score of an improving column: `d_j² / γ_j`.
    #[inline]
    fn devex_score(&self, j: usize, d: f64) -> f64 {
        d * d / self.weights[j]
    }

    /// Major pricing iteration: one full pass over the structural columns,
    /// keeping the [`DEVEX_CANDIDATES`] best improving columns by Devex
    /// score as the new candidate list.  Returns the best column and its
    /// reduced cost, or `None` — a completed full scan with no improving
    /// column — which is exactly the optimality certificate full pricing
    /// produces.
    fn devex_major_scan(&mut self, cost: &[f64], y: &[f64]) -> Option<(usize, f64)> {
        self.candidates.clear();
        let mut improving: Vec<(usize, f64)> = Vec::new();
        self.scan_improving(cost, y, |j, d| {
            improving.push((j, d));
            false
        });
        if improving.is_empty() {
            return None;
        }
        // Keep the top K by score (deterministic total order: score
        // descending, index ascending on exact ties).  A major scan can
        // find thousands of improving columns, so partition the top K out
        // in O(n) before sorting only the survivors.
        let weights = &self.weights;
        let by_score = |a: &(usize, f64), b: &(usize, f64)| {
            let (sa, sb) = (a.1 * a.1 / weights[a.0], b.1 * b.1 / weights[b.0]);
            sb.partial_cmp(&sa)
                .expect("devex scores are finite")
                .then(a.0.cmp(&b.0))
        };
        if improving.len() > DEVEX_CANDIDATES {
            improving.select_nth_unstable_by(DEVEX_CANDIDATES - 1, by_score);
            improving.truncate(DEVEX_CANDIDATES);
        }
        improving.sort_unstable_by(by_score);
        self.candidates.extend_from_slice(&improving);
        self.minor_pivots = 0;
        Some(improving[0])
    }

    /// Devex pricing with candidate-list partial pricing (major/minor
    /// "multiple pricing", Maros §9.6): a *major* full scan keeps the
    /// [`DEVEX_CANDIDATES`] best columns by Devex score, and subsequent
    /// *minor* iterations re-price only that list — a few dozen sparse dots
    /// instead of all of them.  A fresh major scan runs when the list
    /// drains below [`DEVEX_REFILL`] or has been reused
    /// [`DEVEX_MINOR_LIMIT`] times (bounding staleness); optimality is only
    /// ever declared by a completed major scan, so this rule classifies
    /// programs exactly like full pricing.
    fn select_devex(&mut self, cost: &[f64], y: &[f64]) -> Option<(usize, f64)> {
        if self.cols.n == 0 {
            return None;
        }
        // Minor iteration: re-price the surviving candidates.  The weight
        // update is free here: with entering reduced cost `d_e` and pivot
        // row entries `α_j`, the post-pivot reduced costs satisfy
        // `d_j' = d_j − (d_e/α_e) α_j`, so `α_j/α_e = (d_j − d_j')/d_e` —
        // the re-pricing pass recovers exactly the ratio the Devex update
        // `γ_j ← max(γ_j, (α_j/α_e)² γ_e)` needs, with no pivot-row BTRAN
        // and no extra dot products.
        let pending = self.pending.take();
        let old = std::mem::take(&mut self.candidates);
        let mut best: Option<(usize, f64, f64)> = None; // (col, d, score)
        for (j, d_prev) in old {
            if self.in_basis[j] {
                continue;
            }
            let d = self.reduced_cost(j, cost, y);
            if let Some((d_e, gamma_e)) = pending {
                let ratio = (d_prev - d) / d_e;
                let bump = ratio * ratio * gamma_e;
                if bump > self.weights[j] {
                    self.weights[j] = bump;
                }
            }
            if d < -COST_EPS {
                self.candidates.push((j, d));
                let score = self.devex_score(j, d);
                let better = match best {
                    None => true,
                    Some((bj, _, bs)) => score > bs || (score == bs && j < bj),
                };
                if better {
                    best = Some((j, d, score));
                }
            }
        }
        if self.candidates.len() < DEVEX_REFILL || self.minor_pivots >= DEVEX_MINOR_LIMIT {
            return self.devex_major_scan(cost, y);
        }
        self.minor_pivots += 1;
        best.map(|(j, d, _)| (j, d))
    }

    /// Runs pivots to optimality for the given costs (length: structural +
    /// artificial columns).  Only structural columns may enter; artificials
    /// start basic and never come back.
    fn run(&mut self, cost: &[f64], iters_left: &mut usize) -> PivotRun {
        let m = self.basis_cols.len();
        let mut y = vec![0.0; m];
        let mut w = vec![0.0; m];
        let mut degenerate_streak = 0usize;
        loop {
            if *iters_left == 0 {
                return PivotRun::IterationLimit;
            }
            *iters_left -= 1;

            if self.basis.should_refactorize() && !self.refactorize_and_recompute() {
                return PivotRun::NumericalFailure;
            }

            // BTRAN: simplex multipliers y = B⁻ᵀ c_B.
            for (r, &j) in self.basis_cols.iter().enumerate() {
                y[r] = cost[j];
            }
            self.basis.btran(&mut y);

            // Entering column: Bland once a degenerate streak threatens to
            // cycle, otherwise the configured pricing rule.
            let use_bland = degenerate_streak > BLAND_THRESHOLD;
            let entering = if use_bland {
                self.select_bland(cost, &y)
            } else {
                match self.pricing {
                    Pricing::Dantzig => self.select_dantzig(cost, &y),
                    Pricing::Devex => self.select_devex(cost, &y),
                }
            };
            let Some((e, d_e)) = entering else {
                return PivotRun::Optimal;
            };

            // FTRAN the entering column.
            self.cols.scatter(e, &mut w);
            self.basis.ftran(&mut w);

            // Ratio test (same tie-break as the dense oracle: smallest
            // basic column index among near-ties).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for (i, &wi) in w.iter().enumerate() {
                if wi > PIVOT_EPS {
                    let ratio = self.x_b[i] / wi;
                    let better = ratio < best_ratio - PIVOT_EPS
                        || (ratio < best_ratio + PIVOT_EPS
                            && leave.is_none_or(|l| self.basis_cols[i] < self.basis_cols[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(r) = leave else {
                return PivotRun::Unbounded;
            };
            if best_ratio < PIVOT_EPS {
                degenerate_streak += 1;
                self.stats.degenerate_pivots += 1;
            } else {
                degenerate_streak = 0;
            }
            self.stats.pivots += 1;
            if use_bland {
                self.stats.bland_pivots += 1;
            }

            // Incremental basic-value update: x_B ← x_B − θ w, x_B[r] ← θ.
            let theta = best_ratio;
            for (xi, &wi) in self.x_b.iter_mut().zip(w.iter()) {
                *xi -= theta * wi;
            }
            self.x_b[r] = theta;

            let leaving = self.basis_cols[r];
            if self.pricing == Pricing::Devex {
                if use_bland {
                    // A Bland pivot bypassed the Devex bookkeeping; the
                    // stored reduced cost no longer matches the last Devex
                    // pivot, so skip the next free update.
                    self.pending = None;
                } else {
                    // The leaving variable re-enters the nonbasic pool with
                    // `γ ← max(γ_e/α_e², 1)`; a huge value here means a
                    // tiny pivot element just distorted the whole reference
                    // framework beyond usefulness, so start a fresh one.
                    let gamma_e = self.weights[e];
                    let scale = gamma_e / (w[r] * w[r]);
                    if scale > DEVEX_RESET_BOUND {
                        self.weights.fill(1.0);
                        self.pending = None;
                    } else {
                        if leaving < self.cols.n {
                            self.weights[leaving] = scale.max(1.0);
                        }
                        self.pending = Some((d_e, gamma_e));
                    }
                }
            }
            self.basis_cols[r] = e;
            self.in_basis[e] = true;
            self.in_basis[leaving] = false;
            if self.basis.update(r, &w) == UpdateOutcome::RefusedNeedsRefactor
                && !self.refactorize_and_recompute()
            {
                return PivotRun::NumericalFailure;
            }
        }
    }
}

/// Revised simplex on a sparse standard-form program, discarding the
/// counters.  Production callers route through
/// [`solve_standard_sparse_with_stats`] since the solver surfaced
/// [`crate::LpStats`]; this wrapper remains for the tests that only check
/// outcomes.
///
/// Returns `None` on numerical breakdown (singular basis refactorisation),
/// in which case the caller falls back to the dense tableau oracle.
#[cfg(test)]
pub(crate) fn solve_standard_sparse(
    sf: &SparseStandardForm,
    max_iters: usize,
    pricing: Pricing,
) -> Option<SimplexOutcome> {
    solve_standard_sparse_with_stats(sf, max_iters, pricing).map(|(outcome, _)| outcome)
}

/// Revised simplex on a sparse standard-form program, plus the
/// [`RevisedStats`] pivot counters.
///
/// Returns `None` on numerical breakdown (singular basis refactorisation),
/// in which case the caller falls back to the dense tableau oracle.
pub(crate) fn solve_standard_sparse_with_stats(
    sf: &SparseStandardForm,
    max_iters: usize,
    pricing: Pricing,
) -> Option<(SimplexOutcome, RevisedStats)> {
    let m = sf.num_rows();
    let n = sf.num_cols();
    debug_assert!(sf.b.iter().all(|&bi| bi >= -PIVOT_EPS));

    if m == 0 {
        return Some((solve_unconstrained(n, &sf.c), RevisedStats::default()));
    }

    let csc = sf.a.to_csc();
    debug_assert_eq!(csc.nrows(), m);
    debug_assert_eq!(csc.ncols(), n);

    // Seed the basis from singleton ~unit columns with ~zero cost (the
    // slacks the standard-form conversion arranges), exactly as the dense
    // oracle does; the remaining rows get artificial variables.
    let basis_for_row = seed_basis_from_unit_columns(
        m,
        n,
        &sf.c,
        (0..m).flat_map(|i| {
            let (cols, vals) = sf.a.row(i);
            cols.iter().zip(vals).map(move |(&j, &v)| (i, j, v))
        }),
    );
    let artificial_rows: Vec<usize> = (0..m).filter(|&i| basis_for_row[i].is_none()).collect();
    let num_artificials = artificial_rows.len();
    let total = n + num_artificials;

    let mut basis_cols: Vec<usize> = Vec::with_capacity(m);
    let mut in_basis = vec![false; total];
    let mut next_artificial = n;
    for seed in basis_for_row.iter() {
        let j = match seed {
            Some(j) => *j,
            None => {
                let j = next_artificial;
                next_artificial += 1;
                j
            }
        };
        basis_cols.push(j);
        in_basis[j] = true;
    }

    let cols = ColumnSource {
        csc: &csc,
        artificial_rows: &artificial_rows,
        n,
    };
    let mut solver = Solver {
        cols,
        mirror: &sf.mirror,
        rhs: &sf.b,
        basis_cols,
        in_basis,
        x_b: vec![0.0; m],
        basis: Basis::factorize(1, &[1.0]).expect("identity factorisation"),
        pricing,
        weights: vec![1.0; n],
        candidates: Vec::new(),
        minor_pivots: 0,
        pending: None,
        stats: RevisedStats::default(),
    };
    if !solver.refactorize_and_recompute() {
        return None;
    }
    // The initial factorisation is not a "re"-factorisation.
    solver.stats.refactorizations = 0;

    let mut iters_left = max_iters;
    if num_artificials > 0 {
        // Phase 1 always full-prices with Dantzig: its objective (the
        // artificial infeasibility) is gone the moment phase 2 starts, so a
        // Devex reference framework built for it buys nothing, and greedy
        // infeasibility reduction drains the artificials in near-minimal
        // pivots on the slack-seeded bases the standard form produces.
        // Phase 2 then starts the requested rule from a fresh framework.
        solver.pricing = Pricing::Dantzig;
        // ---- Phase 1: minimise the sum of the artificial variables.
        let mut cost1 = vec![0.0; total];
        for c in cost1.iter_mut().skip(n) {
            *c = 1.0;
        }
        match solver.run(&cost1, &mut iters_left) {
            PivotRun::Optimal => {}
            // A feasibility objective bounded below by zero cannot be
            // unbounded; treat it as breakdown if it ever happens.
            PivotRun::Unbounded | PivotRun::NumericalFailure => return None,
            PivotRun::IterationLimit => {
                return Some((SimplexOutcome::IterationLimit, solver.stats))
            }
        }
        let phase1_value: f64 = solver
            .basis_cols
            .iter()
            .zip(&solver.x_b)
            .filter(|(&j, _)| j >= n)
            .map(|(_, &v)| v)
            .sum();
        if phase1_value > FEAS_EPS {
            return Some((SimplexOutcome::Infeasible, solver.stats));
        }

        // Drive remaining artificials out of the basis with degenerate
        // pivots where a structural column is available.  Rows where none
        // is (redundant rows) keep their artificial basic at level zero:
        // its row of `B⁻¹A` is all-zero, so no later pivot can move it.
        for r in 0..m {
            if solver.basis_cols[r] < n {
                continue;
            }
            let mut rho = vec![0.0; m];
            rho[r] = 1.0;
            solver.basis.btran(&mut rho);
            let replacement =
                (0..n).find(|&j| !solver.in_basis[j] && solver.cols.dot(j, &rho).abs() > PIVOT_EPS);
            if let Some(j) = replacement {
                let mut w = vec![0.0; m];
                solver.cols.scatter(j, &mut w);
                solver.basis.ftran(&mut w);
                let leaving = solver.basis_cols[r];
                solver.basis_cols[r] = j;
                solver.in_basis[j] = true;
                solver.in_basis[leaving] = false;
                // Phase 1 declared the artificial's sub-tolerance residual
                // feasible, so the pivot is exactly degenerate: zero the
                // value *before* the eta is recorded, which makes the eta's
                // transform of the basic values a no-op (x_r/w_r = 0) and
                // keeps x_b consistent with the updated basis even when
                // w_r is tiny.
                solver.x_b[r] = 0.0;
                if solver.basis.update(r, &w) == UpdateOutcome::RefusedNeedsRefactor
                    && !solver.refactorize_and_recompute()
                {
                    return None;
                }
            }
        }
    }

    solver.pricing = pricing;
    // ---- Phase 2: the real objective (artificial costs are zero; they can
    // only remain basic at level zero on redundant rows).
    let mut cost2 = sf.c.clone();
    cost2.resize(total, 0.0);
    match solver.run(&cost2, &mut iters_left) {
        PivotRun::Optimal => {}
        PivotRun::Unbounded => return Some((SimplexOutcome::Unbounded, solver.stats)),
        PivotRun::IterationLimit => return Some((SimplexOutcome::IterationLimit, solver.stats)),
        PivotRun::NumericalFailure => return None,
    }

    let mut x = vec![0.0; n];
    for (r, &j) in solver.basis_cols.iter().enumerate() {
        if j < n {
            x[j] = solver.x_b[r];
        }
    }
    let objective: f64 = sf.c.iter().zip(&x).map(|(c, v)| c * v).sum();
    Some((SimplexOutcome::Optimal { x, objective }, solver.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;

    fn sparse_sf(
        rows: Vec<Vec<(usize, f64)>>,
        ncols: usize,
        b: Vec<f64>,
        c: Vec<f64>,
    ) -> SparseStandardForm {
        SparseStandardForm::new(CsrMatrix::from_rows(ncols, &rows), b, c)
    }

    fn optimal_with(sf: &SparseStandardForm, pricing: Pricing) -> (Vec<f64>, f64) {
        match solve_standard_sparse(sf, 10_000, pricing).expect("no numerical failure") {
            SimplexOutcome::Optimal { x, objective } => (x, objective),
            other => panic!("expected optimal under {pricing:?}, got {other:?}"),
        }
    }

    /// Both pricing rules must agree on the optimum; returns the Devex one.
    fn optimal(sf: &SparseStandardForm) -> (Vec<f64>, f64) {
        let (_, obj_dantzig) = optimal_with(sf, Pricing::Dantzig);
        let (x, obj_devex) = optimal_with(sf, Pricing::Devex);
        assert!(
            (obj_dantzig - obj_devex).abs() < 1e-7,
            "pricing rules disagree: dantzig {obj_dantzig} vs devex {obj_devex}"
        );
        (x, obj_devex)
    }

    #[test]
    fn textbook_maximization_as_minimization() {
        // Same program as the dense oracle's test: optimum (2, 6), value -36.
        let sf = sparse_sf(
            vec![
                vec![(0, 1.0), (2, 1.0)],
                vec![(1, 2.0), (3, 1.0)],
                vec![(0, 3.0), (1, 2.0), (4, 1.0)],
            ],
            5,
            vec![4.0, 12.0, 18.0],
            vec![-3.0, -5.0, 0.0, 0.0, 0.0],
        );
        let (x, obj) = optimal(&sf);
        assert!((x[0] - 2.0).abs() < 1e-7);
        assert!((x[1] - 6.0).abs() < 1e-7);
        assert!((obj + 36.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        let sf = sparse_sf(
            vec![vec![(0, 1.0)], vec![(0, 1.0)]],
            1,
            vec![1.0, 2.0],
            vec![0.0],
        );
        for pricing in [Pricing::Dantzig, Pricing::Devex] {
            assert!(matches!(
                solve_standard_sparse(&sf, 1000, pricing).unwrap(),
                SimplexOutcome::Infeasible
            ));
        }
    }

    #[test]
    fn unbounded_detected() {
        let sf = sparse_sf(
            vec![vec![(0, 1.0), (1, -1.0)]],
            2,
            vec![0.0],
            vec![-1.0, -1.0],
        );
        for pricing in [Pricing::Dantzig, Pricing::Devex] {
            assert!(matches!(
                solve_standard_sparse(&sf, 1000, pricing).unwrap(),
                SimplexOutcome::Unbounded
            ));
        }
    }

    #[test]
    fn redundant_rows_leave_inert_artificials() {
        // Second row is twice the first; its artificial stays basic at zero
        // and the optimum is still found.
        let sf = sparse_sf(
            vec![vec![(0, 1.0), (1, 1.0)], vec![(0, 2.0), (1, 2.0)]],
            2,
            vec![1.0, 2.0],
            vec![1.0, 0.0],
        );
        let (x, obj) = optimal(&sf);
        assert!((x[0] + x[1] - 1.0).abs() < 1e-7);
        assert!(obj.abs() < 1e-7);
    }

    #[test]
    fn degenerate_problem_terminates() {
        let sf = sparse_sf(
            vec![
                vec![(0, 1.0), (1, 1.0), (2, 1.0)],
                vec![(0, 1.0), (1, 2.0), (3, 1.0)],
                vec![(0, 2.0), (1, 1.0), (4, 1.0)],
            ],
            5,
            vec![0.0, 0.0, 4.0],
            vec![-1.0, -1.0, 0.0, 0.0, 0.0],
        );
        let (x, _) = optimal(&sf);
        let dense = sf.to_dense();
        for (row, b) in dense.a.iter().zip(&dense.b) {
            let lhs: f64 = row.iter().zip(&x).map(|(a, v)| a * v).sum();
            assert!((lhs - b).abs() < 1e-7);
        }
    }

    #[test]
    fn empty_constraint_system() {
        let sf = sparse_sf(vec![], 2, vec![], vec![1.0, 2.0]);
        let (x, obj) = optimal(&sf);
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(obj, 0.0);
        let sf2 = sparse_sf(vec![], 1, vec![], vec![-1.0]);
        assert!(matches!(
            solve_standard_sparse(&sf2, 10, Pricing::Devex).unwrap(),
            SimplexOutcome::Unbounded
        ));
    }

    #[test]
    fn iteration_limit_is_reported() {
        let sf = sparse_sf(vec![vec![(0, 1.0), (1, 1.0)]], 2, vec![1.0], vec![1.0, 1.0]);
        for pricing in [Pricing::Dantzig, Pricing::Devex] {
            assert!(matches!(
                solve_standard_sparse(&sf, 0, pricing).unwrap(),
                SimplexOutcome::IterationLimit
            ));
        }
    }

    #[test]
    fn refactorisation_cycle_is_exercised() {
        // A chain long enough to exceed Basis::MAX_ETAS pivots: minimise a
        // cost that forces many entering choices on a banded system.
        let m = 120;
        let mut rows = Vec::new();
        for i in 0..m {
            // x_i + x_{i+1} + s_i = 2
            rows.push(vec![(i, 1.0), ((i + 1) % m, 1.0), (m + i, 1.0)]);
        }
        let mut c = vec![0.0; 2 * m];
        for (i, ci) in c.iter_mut().enumerate().take(m) {
            *ci = -((i % 7) as f64) - 1.0;
        }
        let sf = sparse_sf(rows, 2 * m, vec![2.0; m], c);
        let (x, obj) = optimal(&sf);
        // Sanity: feasibility of the returned point.
        let dense = sf.to_dense();
        for (row, b) in dense.a.iter().zip(&dense.b) {
            let lhs: f64 = row.iter().zip(&x).map(|(a, v)| a * v).sum();
            assert!((lhs - b).abs() < 1e-6);
        }
        assert!(obj < 0.0);
        // The chain is long enough that the eta file overflows at least
        // once, so the Devex reference framework really is reset mid-solve.
        let (_, stats) =
            solve_standard_sparse_with_stats(&sf, 10_000, Pricing::Devex).expect("no breakdown");
        assert!(
            stats.refactorizations > 0,
            "expected at least one mid-solve refactorisation, pivots: {}",
            stats.pivots
        );
    }

    /// A stalling program: a block of zero-RHS rows makes every early pivot
    /// degenerate, so the streak passes `BLAND_THRESHOLD` and the Bland
    /// fallback must engage (and terminate at the right optimum) under both
    /// pricing rules.
    fn stalling_program() -> SparseStandardForm {
        let vars = 80usize;
        let mut rows = Vec::new();
        let mut b = Vec::new();
        // Zero-RHS block: x_i − x_{i+1} + s_i = 0, chained.
        for i in 0..vars - 1 {
            rows.push(vec![(i, 1.0), (i + 1, -1.0), (vars + i, 1.0)]);
            b.push(0.0);
        }
        // One binding row keeps the optimum away from the origin.
        rows.push((0..vars).map(|i| (i, 1.0)).collect());
        b.push(6.0);
        let mut c = vec![0.0; 2 * vars - 1];
        for (i, ci) in c.iter_mut().enumerate().take(vars) {
            *ci = -1.0 - (i % 3) as f64;
        }
        sparse_sf(rows, 2 * vars - 1, b, c)
    }

    #[test]
    fn bland_fallback_engages_on_degenerate_stalls() {
        let sf = stalling_program();
        let mut engaged = false;
        for pricing in [Pricing::Dantzig, Pricing::Devex] {
            let (outcome, stats) =
                solve_standard_sparse_with_stats(&sf, 10_000, pricing).expect("no breakdown");
            let SimplexOutcome::Optimal { x, .. } = outcome else {
                panic!("stalling program must still reach optimality ({pricing:?})");
            };
            let dense = sf.to_dense();
            for (row, b) in dense.a.iter().zip(&dense.b) {
                let lhs: f64 = row.iter().zip(&x).map(|(a, v)| a * v).sum();
                assert!((lhs - b).abs() < 1e-7);
            }
            engaged |= stats.bland_pivots > 0;
        }
        assert!(
            engaged,
            "the zero-RHS block should push at least one rule past BLAND_THRESHOLD"
        );
    }

    #[test]
    fn devex_matches_dantzig_on_wide_block_sparse_program() {
        // The repair-LP shape: many independent blocks, split-pair columns
        // simulated by explicit negated twins via the mirror map is covered
        // end-to-end by the solver tests; here the raw standard form pins
        // the two pricing rules to the same optimum on a wide program.
        let blocks = 24usize;
        let bvars = 6usize;
        let n = blocks * bvars;
        let mut rows = Vec::new();
        let mut b = Vec::new();
        for blk in 0..blocks {
            let base = blk * bvars;
            let row: Vec<(usize, f64)> = (0..bvars)
                .map(|k| (base + k, 1.0 + ((blk + k) % 5) as f64 * 0.25))
                .chain([(n + blk, 1.0)])
                .collect();
            rows.push(row);
            b.push(1.0 + (blk % 3) as f64);
        }
        let mut c = vec![0.0; n + blocks];
        for (j, cj) in c.iter_mut().enumerate().take(n) {
            *cj = -(1.0 + (j % 7) as f64 * 0.5);
        }
        let sf = sparse_sf(rows, n + blocks, b, c);
        let (_, obj_dantzig) = optimal_with(&sf, Pricing::Dantzig);
        let (x, obj_devex) = optimal_with(&sf, Pricing::Devex);
        assert!(
            (obj_dantzig - obj_devex).abs() < 1e-6 * (1.0 + obj_dantzig.abs()),
            "dantzig {obj_dantzig} vs devex {obj_devex}"
        );
        let dense = sf.to_dense();
        for (row, b) in dense.a.iter().zip(&dense.b) {
            let lhs: f64 = row.iter().zip(&x).map(|(a, v)| a * v).sum();
            assert!((lhs - b).abs() < 1e-7);
        }
    }
}
