//! Dense two-phase primal simplex on standard-form programs.
//!
//! Standard form: `minimize c·x  subject to  A x = b,  x ≥ 0,  b ≥ 0`.
//! The caller ([`crate::solver`]) is responsible for converting modelling
//! form (free variables, inequalities, norm objectives) into this shape.
//!
//! The tableau — every constraint row, the right-hand sides, *and* the
//! reduced-cost row — lives in one contiguous row-major `Vec<f64>`
//! ([`Tableau`]).  Pivots are stride-indexed row operations over that single
//! allocation, so the hot loop is cache-friendly and allocation-free; the
//! phase-1 → phase-2 transition compacts the artificial columns away in
//! place instead of rebuilding per-row vectors.

/// A standard-form LP: `min c·x  s.t.  A x = b, x ≥ 0` with `b ≥ 0`.
#[derive(Debug, Clone)]
pub(crate) struct StandardForm {
    /// Dense constraint rows, each of length `num_cols`.
    pub a: Vec<Vec<f64>>,
    /// Right-hand sides, one per row, all non-negative.
    pub b: Vec<f64>,
    /// Objective coefficients, one per column.
    pub c: Vec<f64>,
}

/// Result of running the simplex method on a [`StandardForm`].
#[derive(Debug, Clone)]
pub(crate) enum SimplexOutcome {
    Optimal { x: Vec<f64>, objective: f64 },
    Infeasible,
    Unbounded,
    IterationLimit,
}

pub(crate) const PIVOT_EPS: f64 = 1e-10;
pub(crate) const COST_EPS: f64 = 1e-9;
pub(crate) const FEAS_EPS: f64 = 1e-7;

/// Solves the trivial constraint-free program `min c·x, x ≥ 0`: the optimum
/// is `x = 0` unless some cost is negative (the variables are non-negative,
/// so only negative costs cause unboundedness).  Shared by both backends.
pub(crate) fn solve_unconstrained(n: usize, c: &[f64]) -> SimplexOutcome {
    if c.iter().any(|&cj| cj < -COST_EPS) {
        return SimplexOutcome::Unbounded;
    }
    SimplexOutcome::Optimal {
        x: vec![0.0; n],
        objective: 0.0,
    }
}

/// The ready-basis scan shared by both backends: a column usable as an
/// initial basic variable for its row must be a singleton with coefficient
/// (approximately) `+1` and (tolerance-consistent) zero cost — the slack
/// columns the standard-form conversion arranges.  Rows left `None` need an
/// artificial variable.  `entries` yields every stored `(row, col, value)`
/// of the constraint matrix, in any order.
///
/// Both backends *must* seed identically for the differential tests'
/// "identical classification" guarantee to hold, which is why this lives in
/// one place.
pub(crate) fn seed_basis_from_unit_columns(
    m: usize,
    n: usize,
    c: &[f64],
    entries: impl IntoIterator<Item = (usize, usize, f64)>,
) -> Vec<Option<usize>> {
    let mut col_nonzeros = vec![0usize; n];
    let mut col_last: Vec<(usize, f64)> = vec![(usize::MAX, 0.0); n];
    for (i, j, v) in entries {
        if v != 0.0 {
            col_nonzeros[j] += 1;
            col_last[j] = (i, v);
        }
    }
    let mut basis_for_row: Vec<Option<usize>> = vec![None; m];
    for j in 0..n {
        if col_nonzeros[j] == 1
            && (col_last[j].1 - 1.0).abs() <= PIVOT_EPS
            && c[j].abs() <= COST_EPS
        {
            let row = col_last[j].0;
            if basis_for_row[row].is_none() {
                basis_for_row[row] = Some(j);
            }
        }
    }
    basis_for_row
}

/// The simplex working set: `m` constraint rows plus the reduced-cost row,
/// stored row-major in a single flat buffer.
///
/// Row `i < m` is constraint `i`; row `m` is the reduced-cost (objective)
/// row.  Each row has `stride = width + 1` entries: `width` structural
/// columns followed by the right-hand side (for the objective row, the
/// negated objective value).
struct Tableau {
    data: Vec<f64>,
    /// Entries per row (structural columns + 1 for the RHS).
    stride: usize,
    /// Number of constraint rows (the objective row is row `m`).
    m: usize,
}

impl Tableau {
    /// Number of structural columns.
    fn width(&self) -> usize {
        self.stride - 1
    }

    fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.stride..(i + 1) * self.stride]
    }

    fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.stride..(i + 1) * self.stride]
    }

    fn obj(&self) -> &[f64] {
        self.row(self.m)
    }

    /// Entry `(row, col)` without slicing (hot-path reads).
    #[inline]
    fn at(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.stride + col]
    }

    /// Pivots on `(row, col)`: normalises the pivot row and eliminates the
    /// pivot column from every other row, including the reduced-cost row.
    ///
    /// One pass of stride-indexed row operations over the flat buffer; no
    /// allocation.
    fn pivot(&mut self, row: usize, col: usize) {
        let stride = self.stride;
        let piv = self.at(row, col);
        debug_assert!(piv.abs() > PIVOT_EPS, "pivot on (near-)zero element");
        let inv = 1.0 / piv;
        for v in self.row_mut(row) {
            *v *= inv;
        }
        // Make the pivot column exactly canonical to limit error
        // accumulation.
        self.data[row * stride + col] = 1.0;

        let (before, rest) = self.data.split_at_mut(row * stride);
        let (pivot_row, after) = rest.split_at_mut(stride);
        for other in before
            .chunks_exact_mut(stride)
            .chain(after.chunks_exact_mut(stride))
        {
            let factor = other[col];
            if factor != 0.0 {
                for (o, p) in other.iter_mut().zip(pivot_row.iter()) {
                    *o -= factor * p;
                }
                other[col] = 0.0;
            }
        }
    }

    /// Removes constraint row `i`, shifting later rows (and the objective
    /// row) up in place.
    fn remove_row(&mut self, i: usize) {
        let stride = self.stride;
        self.data
            .copy_within((i + 1) * stride..(self.m + 1) * stride, i * stride);
        self.m -= 1;
        self.data.truncate((self.m + 1) * stride);
    }

    /// Shrinks the tableau to its first `new_width` structural columns,
    /// compacting every row (and the RHS) in place.
    fn truncate_columns(&mut self, new_width: usize) {
        let (old_stride, new_stride) = (self.stride, new_width + 1);
        debug_assert!(new_stride <= old_stride);
        for i in 0..=self.m {
            let (src, dst) = (i * old_stride, i * new_stride);
            self.data.copy_within(src..src + new_width, dst);
            self.data[dst + new_width] = self.data[src + old_stride - 1];
        }
        self.stride = new_stride;
        self.data.truncate((self.m + 1) * new_stride);
    }
}

/// Full-tableau two-phase simplex.
///
/// Phase 1 introduces one artificial variable per row and minimises their
/// sum; phase 2 optimises the real objective after driving the artificials
/// out of the basis.  Dantzig pricing is used until a run of degenerate
/// pivots is detected, at which point Bland's rule takes over to guarantee
/// termination.
pub(crate) fn solve_standard(sf: &StandardForm, max_iters: usize) -> SimplexOutcome {
    let m = sf.a.len();
    let n = if m == 0 { sf.c.len() } else { sf.a[0].len() };
    debug_assert!(sf.a.iter().all(|row| row.len() == n));
    debug_assert_eq!(sf.b.len(), m);
    debug_assert_eq!(sf.c.len(), n);
    debug_assert!(sf.b.iter().all(|&bi| bi >= -PIVOT_EPS));

    if m == 0 {
        return solve_unconstrained(n, &sf.c);
    }

    // ---- Phase 1 setup.  Rows whose slack column already forms a unit
    // column (coefficient +1, zero elsewhere, non-negative RHS) can use that
    // slack as their initial basic variable; only the remaining rows need an
    // artificial variable.  This keeps the phase-1 tableau narrow, which is
    // where most of the repair LPs' time goes.
    let basis_for_row = seed_basis_from_unit_columns(
        m,
        n,
        &sf.c,
        sf.a.iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().enumerate().map(move |(j, &v)| (i, j, v))),
    );
    let artificial_rows: Vec<usize> = (0..m).filter(|&i| basis_for_row[i].is_none()).collect();
    let num_artificials = artificial_rows.len();
    let total = n + num_artificials;

    // One allocation for the whole working set: m constraint rows plus the
    // reduced-cost row, each `total + 1` wide.
    let stride = total + 1;
    let mut tab = Tableau {
        data: vec![0.0; (m + 1) * stride],
        stride,
        m,
    };
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    for (i, row) in sf.a.iter().enumerate() {
        let dst = tab.row_mut(i);
        dst[..n].copy_from_slice(row);
        dst[total] = sf.b[i];
        match basis_for_row[i] {
            Some(j) => basis.push(j),
            None => {
                let k = artificial_rows.iter().position(|&ar| ar == i).unwrap();
                tab.row_mut(i)[n + k] = 1.0;
                basis.push(n + k);
            }
        }
    }

    let mut iters_left = max_iters;
    if num_artificials > 0 {
        // Phase-1 reduced-cost row: costs are 1 on artificials, 0 elsewhere;
        // subtract each artificial-basic row to zero out the basic columns.
        let obj_start = m * stride;
        for j in n..total {
            tab.data[obj_start + j] = 1.0;
        }
        for (i, &b) in basis.iter().enumerate() {
            if b >= n {
                for j in 0..stride {
                    tab.data[obj_start + j] -= tab.data[i * stride + j];
                }
            }
        }
        match run_pivots(&mut tab, &mut basis, &mut iters_left, Some(n)) {
            PivotRun::Unbounded => return SimplexOutcome::Unbounded,
            PivotRun::IterationLimit => return SimplexOutcome::IterationLimit,
            PivotRun::Optimal => {}
        }
        // The objective row's RHS holds the negated phase-1 value.
        let phase1_value = -tab.obj()[total];
        if phase1_value > FEAS_EPS {
            return SimplexOutcome::Infeasible;
        }

        // Drive any remaining artificial variables out of the basis.
        let mut drop_rows: Vec<usize> = Vec::new();
        for (i, b) in basis.iter_mut().enumerate() {
            if *b >= n {
                // Find a real column with a non-zero entry to pivot in.
                match (0..n).find(|&j| tab.at(i, j).abs() > PIVOT_EPS) {
                    Some(j) => {
                        tab.pivot(i, j);
                        *b = j;
                    }
                    None => drop_rows.push(i),
                }
            }
        }
        // Remove redundant rows (all-zero in real columns).
        for &i in drop_rows.iter().rev() {
            tab.remove_row(i);
            basis.remove(i);
        }
    }
    // Remove the artificial columns (no-op when there were none).
    tab.truncate_columns(n);

    // ---- Phase 2: real objective.
    let obj_start = tab.m * tab.stride;
    for v in &mut tab.data[obj_start..] {
        *v = 0.0;
    }
    tab.data[obj_start..obj_start + n].copy_from_slice(&sf.c);
    for (i, &b) in basis.iter().enumerate() {
        let cb = sf.c[b];
        if cb != 0.0 {
            for j in 0..tab.stride {
                tab.data[obj_start + j] -= cb * tab.data[i * tab.stride + j];
            }
        }
    }
    match run_pivots(&mut tab, &mut basis, &mut iters_left, None) {
        PivotRun::Unbounded => return SimplexOutcome::Unbounded,
        PivotRun::IterationLimit => return SimplexOutcome::IterationLimit,
        PivotRun::Optimal => {}
    }

    let mut x = vec![0.0; n];
    for i in 0..tab.m {
        if basis[i] < n {
            x[basis[i]] = tab.at(i, n);
        }
    }
    let objective: f64 = sf.c.iter().zip(&x).map(|(c, v)| c * v).sum();
    SimplexOutcome::Optimal { x, objective }
}

enum PivotRun {
    Optimal,
    Unbounded,
    IterationLimit,
}

/// Runs pivots until optimality.  If `restrict_entering` is `Some(k)`, only
/// columns `< k` may enter the basis (used in phase 1 to let real columns
/// replace artificials, and to forbid artificials re-entering).
fn run_pivots(
    tab: &mut Tableau,
    basis: &mut [usize],
    iters_left: &mut usize,
    restrict_entering: Option<usize>,
) -> PivotRun {
    let rhs = tab.width();
    let entering_limit = restrict_entering.unwrap_or(rhs);
    let mut degenerate_streak = 0usize;
    loop {
        if *iters_left == 0 {
            return PivotRun::IterationLimit;
        }
        *iters_left -= 1;

        let use_bland = degenerate_streak > 40;
        // Entering column: most-negative reduced cost (Dantzig) or smallest
        // index with negative reduced cost (Bland).
        let obj = &tab.obj()[..entering_limit];
        let mut entering: Option<usize> = None;
        if use_bland {
            entering = obj.iter().position(|&cj| cj < -COST_EPS);
        } else {
            let mut best = -COST_EPS;
            for (j, &cj) in obj.iter().enumerate() {
                if cj < best {
                    best = cj;
                    entering = Some(j);
                }
            }
        }
        let Some(e) = entering else {
            return PivotRun::Optimal;
        };

        // Ratio test.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..tab.m {
            let a = tab.at(i, e);
            if a > PIVOT_EPS {
                let ratio = tab.at(i, rhs) / a;
                let better = ratio < best_ratio - PIVOT_EPS
                    || (ratio < best_ratio + PIVOT_EPS
                        && leave.is_none_or(|l| basis[i] < basis[l]));
                if better {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(l) = leave else {
            return PivotRun::Unbounded;
        };
        if best_ratio < PIVOT_EPS {
            degenerate_streak += 1;
        } else {
            degenerate_streak = 0;
        }
        tab.pivot(l, e);
        basis[l] = e;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(sf: &StandardForm) -> (Vec<f64>, f64) {
        match solve_standard(sf, 10_000) {
            SimplexOutcome::Optimal { x, objective } => (x, objective),
            other => panic!("expected optimal, got {:?}", other),
        }
    }

    #[test]
    fn textbook_maximization_as_minimization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
        // Optimum (2, 6) with value 36; as minimization of -(3x+5y).
        // Standard form with slacks s1, s2, s3.
        let sf = StandardForm {
            a: vec![
                vec![1.0, 0.0, 1.0, 0.0, 0.0],
                vec![0.0, 2.0, 0.0, 1.0, 0.0],
                vec![3.0, 2.0, 0.0, 0.0, 1.0],
            ],
            b: vec![4.0, 12.0, 18.0],
            c: vec![-3.0, -5.0, 0.0, 0.0, 0.0],
        };
        let (x, obj) = optimal(&sf);
        assert!((x[0] - 2.0).abs() < 1e-7);
        assert!((x[1] - 6.0).abs() < 1e-7);
        assert!((obj + 36.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        // x = 1 and x = 2 simultaneously.
        let sf = StandardForm {
            a: vec![vec![1.0], vec![1.0]],
            b: vec![1.0, 2.0],
            c: vec![0.0],
        };
        assert!(matches!(
            solve_standard(&sf, 1000),
            SimplexOutcome::Infeasible
        ));
    }

    #[test]
    fn unbounded_detected() {
        // min -x - y s.t. x - y = 0 (both can grow forever).
        let sf = StandardForm {
            a: vec![vec![1.0, -1.0]],
            b: vec![0.0],
            c: vec![-1.0, -1.0],
        };
        assert!(matches!(
            solve_standard(&sf, 1000),
            SimplexOutcome::Unbounded
        ));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate vertex: several constraints through origin.
        let sf = StandardForm {
            a: vec![
                vec![1.0, 1.0, 1.0, 0.0, 0.0],
                vec![1.0, 2.0, 0.0, 1.0, 0.0],
                vec![2.0, 1.0, 0.0, 0.0, 1.0],
            ],
            b: vec![0.0, 0.0, 4.0],
            c: vec![-1.0, -1.0, 0.0, 0.0, 0.0],
        };
        let (x, _) = optimal(&sf);
        // Feasibility of the returned point.
        for (row, b) in sf.a.iter().zip(&sf.b) {
            let lhs: f64 = row.iter().zip(&x).map(|(a, v)| a * v).sum();
            assert!((lhs - b).abs() < 1e-7);
        }
    }

    #[test]
    fn empty_constraint_system() {
        let sf = StandardForm {
            a: vec![],
            b: vec![],
            c: vec![1.0, 2.0],
        };
        let (x, obj) = optimal(&sf);
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(obj, 0.0);
        let sf2 = StandardForm {
            a: vec![],
            b: vec![],
            c: vec![-1.0],
        };
        assert!(matches!(
            solve_standard(&sf2, 10),
            SimplexOutcome::Unbounded
        ));
    }

    #[test]
    fn redundant_rows_are_dropped() {
        // The second row is twice the first: phase 1 must detect the
        // redundancy (an artificial stuck in the basis on a zero row) and
        // remove the row rather than fail.
        let sf = StandardForm {
            a: vec![vec![1.0, 1.0], vec![2.0, 2.0]],
            b: vec![1.0, 2.0],
            c: vec![1.0, 0.0],
        };
        let (x, obj) = optimal(&sf);
        assert!((x[0] + x[1] - 1.0).abs() < 1e-7);
        assert!(obj.abs() < 1e-7);
    }

    #[test]
    fn tableau_pivot_and_compaction() {
        // 2x2 system with one artificial column appended; pivot then compact.
        let mut tab = Tableau {
            data: vec![
                2.0, 1.0, 1.0, 0.0, 4.0, // row 0 (artificial col 2)
                1.0, 3.0, 0.0, 1.0, 6.0, // row 1 (artificial col 3)
                0.0, 0.0, 1.0, 1.0, 0.0, // objective row
            ],
            stride: 5,
            m: 2,
        };
        tab.pivot(0, 0);
        assert_eq!(tab.at(0, 0), 1.0);
        assert_eq!(tab.at(1, 0), 0.0);
        // Row 1 became (0, 2.5, -0.5, 1, 4).
        assert!((tab.at(1, 1) - 2.5).abs() < 1e-12);
        assert!((tab.at(1, 4) - 4.0).abs() < 1e-12);
        tab.truncate_columns(2);
        assert_eq!(tab.stride, 3);
        assert_eq!(tab.data.len(), 9);
        // RHS entries survived the compaction.
        assert!((tab.at(0, 2) - 2.0).abs() < 1e-12);
        assert!((tab.at(1, 2) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn tableau_remove_row_shifts_objective() {
        let mut tab = Tableau {
            data: vec![
                1.0, 0.0, 3.0, //
                0.0, 1.0, 4.0, //
                5.0, 6.0, 7.0, // objective row
            ],
            stride: 3,
            m: 2,
        };
        tab.remove_row(0);
        assert_eq!(tab.m, 1);
        assert_eq!(tab.row(0), &[0.0, 1.0, 4.0]);
        assert_eq!(tab.obj(), &[5.0, 6.0, 7.0]);
    }
}
