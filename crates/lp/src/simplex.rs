//! Dense two-phase primal simplex on standard-form programs.
//!
//! Standard form: `minimize c·x  subject to  A x = b,  x ≥ 0,  b ≥ 0`.
//! The caller ([`crate::solver`]) is responsible for converting modelling
//! form (free variables, inequalities, norm objectives) into this shape.

/// A standard-form LP: `min c·x  s.t.  A x = b, x ≥ 0` with `b ≥ 0`.
#[derive(Debug, Clone)]
pub(crate) struct StandardForm {
    /// Dense constraint rows, each of length `num_cols`.
    pub a: Vec<Vec<f64>>,
    /// Right-hand sides, one per row, all non-negative.
    pub b: Vec<f64>,
    /// Objective coefficients, one per column.
    pub c: Vec<f64>,
}

/// Result of running the simplex method on a [`StandardForm`].
#[derive(Debug, Clone)]
pub(crate) enum SimplexOutcome {
    Optimal { x: Vec<f64>, objective: f64 },
    Infeasible,
    Unbounded,
    IterationLimit,
}

const PIVOT_EPS: f64 = 1e-10;
const COST_EPS: f64 = 1e-9;
const FEAS_EPS: f64 = 1e-7;

/// Full-tableau two-phase simplex.
///
/// Phase 1 introduces one artificial variable per row and minimises their
/// sum; phase 2 optimises the real objective after driving the artificials
/// out of the basis.  Dantzig pricing is used until a run of degenerate
/// pivots is detected, at which point Bland's rule takes over to guarantee
/// termination.
pub(crate) fn solve_standard(sf: &StandardForm, max_iters: usize) -> SimplexOutcome {
    let m = sf.a.len();
    let n = if m == 0 { sf.c.len() } else { sf.a[0].len() };
    debug_assert!(sf.a.iter().all(|row| row.len() == n));
    debug_assert_eq!(sf.b.len(), m);
    debug_assert_eq!(sf.c.len(), n);
    debug_assert!(sf.b.iter().all(|&bi| bi >= -PIVOT_EPS));

    if m == 0 {
        // No constraints: the optimum is x = 0 unless some cost is negative,
        // in which case that column is unbounded below (it is non-negative,
        // so only negative costs cause unboundedness).
        if sf.c.iter().any(|&cj| cj < -COST_EPS) {
            return SimplexOutcome::Unbounded;
        }
        return SimplexOutcome::Optimal { x: vec![0.0; n], objective: 0.0 };
    }

    // ---- Phase 1 setup.  Rows whose slack column already forms a unit
    // column (coefficient +1, zero elsewhere, non-negative RHS) can use that
    // slack as their initial basic variable; only the remaining rows need an
    // artificial variable.  This keeps the phase-1 tableau narrow, which is
    // where most of the repair LPs' time goes.
    let mut col_nonzeros = vec![0usize; n];
    let mut col_last: Vec<(usize, f64)> = vec![(usize::MAX, 0.0); n];
    for (i, row) in sf.a.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v != 0.0 {
                col_nonzeros[j] += 1;
                col_last[j] = (i, v);
            }
        }
    }
    let mut basis_for_row: Vec<Option<usize>> = vec![None; m];
    for j in 0..n {
        if col_nonzeros[j] == 1 && (col_last[j].1 - 1.0).abs() <= PIVOT_EPS && sf.c[j] == 0.0 {
            let row = col_last[j].0;
            if basis_for_row[row].is_none() {
                basis_for_row[row] = Some(j);
            }
        }
    }
    let artificial_rows: Vec<usize> =
        (0..m).filter(|&i| basis_for_row[i].is_none()).collect();
    let num_artificials = artificial_rows.len();
    let total = n + num_artificials;

    let mut tab: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    for (i, row) in sf.a.iter().enumerate() {
        let mut t = Vec::with_capacity(total + 1);
        t.extend_from_slice(row);
        for &ar in &artificial_rows {
            t.push(if ar == i { 1.0 } else { 0.0 });
        }
        t.push(sf.b[i]);
        tab.push(t);
        match basis_for_row[i] {
            Some(j) => basis.push(j),
            None => {
                let k = artificial_rows.iter().position(|&ar| ar == i).unwrap();
                basis.push(n + k);
            }
        }
    }

    let mut iters_left = max_iters;
    if num_artificials > 0 {
        // Phase-1 reduced-cost row: costs are 1 on artificials, 0 elsewhere;
        // subtract each artificial-basic row to zero out the basic columns.
        let mut obj = vec![0.0; total + 1];
        for j in n..total {
            obj[j] = 1.0;
        }
        for (i, row) in tab.iter().enumerate() {
            if basis[i] >= n {
                for j in 0..=total {
                    obj[j] -= row[j];
                }
            }
        }
        match run_pivots(&mut tab, &mut obj, &mut basis, total, &mut iters_left, Some(n)) {
            PivotRun::Unbounded => return SimplexOutcome::Unbounded,
            PivotRun::IterationLimit => return SimplexOutcome::IterationLimit,
            PivotRun::Optimal => {}
        }
        // Phase-1 objective value is -obj[total] (we stored the negated value).
        let phase1_value = -obj[total];
        if phase1_value > FEAS_EPS {
            return SimplexOutcome::Infeasible;
        }

        // Drive any remaining artificial variables out of the basis.
        let mut drop_rows: Vec<usize> = Vec::new();
        for i in 0..tab.len() {
            if basis[i] >= n {
                // Find a real column with a non-zero entry to pivot in.
                let mut pivot_col = None;
                for j in 0..n {
                    if tab[i][j].abs() > PIVOT_EPS {
                        pivot_col = Some(j);
                        break;
                    }
                }
                match pivot_col {
                    Some(j) => {
                        pivot(&mut tab, &mut obj, &mut basis, i, j, total);
                    }
                    None => drop_rows.push(i),
                }
            }
        }
        // Remove redundant rows (all-zero in real columns).
        for &i in drop_rows.iter().rev() {
            tab.remove(i);
            basis.remove(i);
        }
    }
    // Remove the artificial columns (no-ops when there were none).
    let m2 = tab.len();
    for row in tab.iter_mut() {
        let rhs = row[total];
        row.truncate(n);
        row.push(rhs);
    }

    // ---- Phase 2: real objective.
    let mut obj2 = vec![0.0; n + 1];
    obj2[..n].copy_from_slice(&sf.c);
    for i in 0..m2 {
        let cb = sf.c[basis[i]];
        if cb != 0.0 {
            for j in 0..=n {
                obj2[j] -= cb * tab[i][j];
            }
        }
    }
    match run_pivots(&mut tab, &mut obj2, &mut basis, n, &mut iters_left, None) {
        PivotRun::Unbounded => return SimplexOutcome::Unbounded,
        PivotRun::IterationLimit => return SimplexOutcome::IterationLimit,
        PivotRun::Optimal => {}
    }

    let mut x = vec![0.0; n];
    for i in 0..m2 {
        if basis[i] < n {
            x[basis[i]] = tab[i][n];
        }
    }
    let objective: f64 = sf.c.iter().zip(&x).map(|(c, v)| c * v).sum();
    SimplexOutcome::Optimal { x, objective }
}

enum PivotRun {
    Optimal,
    Unbounded,
    IterationLimit,
}

/// Runs pivots until optimality.  `width` is the number of structural
/// columns (the RHS lives at index `width`).  If `restrict_entering` is
/// `Some(k)`, only columns `< k` may enter the basis (used in phase 1 to let
/// real columns replace artificials, and to forbid artificials re-entering).
fn run_pivots(
    tab: &mut Vec<Vec<f64>>,
    obj: &mut [f64],
    basis: &mut [usize],
    width: usize,
    iters_left: &mut usize,
    restrict_entering: Option<usize>,
) -> PivotRun {
    let m = tab.len();
    let entering_limit = restrict_entering.unwrap_or(width);
    let mut degenerate_streak = 0usize;
    loop {
        if *iters_left == 0 {
            return PivotRun::IterationLimit;
        }
        *iters_left -= 1;

        let use_bland = degenerate_streak > 40;
        // Entering column: most-negative reduced cost (Dantzig) or smallest
        // index with negative reduced cost (Bland).
        let mut entering: Option<usize> = None;
        if use_bland {
            for j in 0..entering_limit {
                if obj[j] < -COST_EPS {
                    entering = Some(j);
                    break;
                }
            }
        } else {
            let mut best = -COST_EPS;
            for j in 0..entering_limit {
                if obj[j] < best {
                    best = obj[j];
                    entering = Some(j);
                }
            }
        }
        let Some(e) = entering else { return PivotRun::Optimal };

        // Ratio test.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let a = tab[i][e];
            if a > PIVOT_EPS {
                let ratio = tab[i][width] / a;
                let better = ratio < best_ratio - PIVOT_EPS
                    || (ratio < best_ratio + PIVOT_EPS
                        && leave.map_or(true, |l| basis[i] < basis[l]));
                if better {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(l) = leave else { return PivotRun::Unbounded };
        if best_ratio < PIVOT_EPS {
            degenerate_streak += 1;
        } else {
            degenerate_streak = 0;
        }
        pivot(tab, obj, basis, l, e, width);
    }
}

/// Pivots on `tab[row][col]`, updating the tableau, the reduced-cost row,
/// and the basis.
fn pivot(
    tab: &mut [Vec<f64>],
    obj: &mut [f64],
    basis: &mut [usize],
    row: usize,
    col: usize,
    width: usize,
) {
    let piv = tab[row][col];
    debug_assert!(piv.abs() > PIVOT_EPS, "pivot on (near-)zero element");
    let inv = 1.0 / piv;
    for v in tab[row].iter_mut() {
        *v *= inv;
    }
    // Make the pivot column exactly canonical to limit error accumulation.
    tab[row][col] = 1.0;
    for i in 0..tab.len() {
        if i == row {
            continue;
        }
        let factor = tab[i][col];
        if factor != 0.0 {
            // Split borrows: copy the pivot row is avoided by indexing.
            for j in 0..=width {
                let pr = tab[row][j];
                tab[i][j] -= factor * pr;
            }
            tab[i][col] = 0.0;
        }
    }
    let factor = obj[col];
    if factor != 0.0 {
        for j in 0..=width {
            obj[j] -= factor * tab[row][j];
        }
        obj[col] = 0.0;
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimal(sf: &StandardForm) -> (Vec<f64>, f64) {
        match solve_standard(sf, 10_000) {
            SimplexOutcome::Optimal { x, objective } => (x, objective),
            other => panic!("expected optimal, got {:?}", other),
        }
    }

    #[test]
    fn textbook_maximization_as_minimization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
        // Optimum (2, 6) with value 36; as minimization of -(3x+5y).
        // Standard form with slacks s1, s2, s3.
        let sf = StandardForm {
            a: vec![
                vec![1.0, 0.0, 1.0, 0.0, 0.0],
                vec![0.0, 2.0, 0.0, 1.0, 0.0],
                vec![3.0, 2.0, 0.0, 0.0, 1.0],
            ],
            b: vec![4.0, 12.0, 18.0],
            c: vec![-3.0, -5.0, 0.0, 0.0, 0.0],
        };
        let (x, obj) = optimal(&sf);
        assert!((x[0] - 2.0).abs() < 1e-7);
        assert!((x[1] - 6.0).abs() < 1e-7);
        assert!((obj + 36.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_detected() {
        // x = 1 and x = 2 simultaneously.
        let sf = StandardForm {
            a: vec![vec![1.0], vec![1.0]],
            b: vec![1.0, 2.0],
            c: vec![0.0],
        };
        assert!(matches!(solve_standard(&sf, 1000), SimplexOutcome::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        // min -x - y s.t. x - y = 0 (both can grow forever).
        let sf = StandardForm {
            a: vec![vec![1.0, -1.0]],
            b: vec![0.0],
            c: vec![-1.0, -1.0],
        };
        assert!(matches!(solve_standard(&sf, 1000), SimplexOutcome::Unbounded));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate vertex: several constraints through origin.
        let sf = StandardForm {
            a: vec![
                vec![1.0, 1.0, 1.0, 0.0, 0.0],
                vec![1.0, 2.0, 0.0, 1.0, 0.0],
                vec![2.0, 1.0, 0.0, 0.0, 1.0],
            ],
            b: vec![0.0, 0.0, 4.0],
            c: vec![-1.0, -1.0, 0.0, 0.0, 0.0],
        };
        let (x, _) = optimal(&sf);
        // Feasibility of the returned point.
        for (row, b) in sf.a.iter().zip(&sf.b) {
            let lhs: f64 = row.iter().zip(&x).map(|(a, v)| a * v).sum();
            assert!((lhs - b).abs() < 1e-7);
        }
    }

    #[test]
    fn empty_constraint_system() {
        let sf = StandardForm { a: vec![], b: vec![], c: vec![1.0, 2.0] };
        let (x, obj) = optimal(&sf);
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(obj, 0.0);
        let sf2 = StandardForm { a: vec![], b: vec![], c: vec![-1.0] };
        assert!(matches!(solve_standard(&sf2, 10), SimplexOutcome::Unbounded));
    }
}
