//! Compressed sparse representations of standard-form constraint matrices.
//!
//! The repair LPs this crate exists for are *wide and block-sparse*: one
//! block of rows per key point, each touching only the parameters of the
//! output coordinates its constraint mentions, plus a singleton slack
//! column.  Storing those rows densely (as `StandardForm` does) makes every
//! simplex pivot pay for the zeros.  This module provides the CSR rows the
//! standard-form conversion produces directly from the (already sparse)
//! modelling constraints, and the CSC view the revised simplex prices
//! columns from.

use crate::simplex::StandardForm;

/// A sparse matrix in compressed-sparse-row form.
///
/// Row `i`'s entries are `indices[indptr[i]..indptr[i+1]]` (column ids,
/// strictly increasing) with values `values[..]` at the same positions.
#[derive(Debug, Clone)]
pub(crate) struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from per-row `(column, value)` lists.
    ///
    /// Entries within a row may be unsorted and may repeat (repeats are
    /// summed, matching [`crate::LpProblem::add_constraint`]); exact zeros
    /// are dropped.
    ///
    /// # Panics
    ///
    /// Panics if any column index is `>= ncols`.
    pub(crate) fn from_rows(ncols: usize, rows: &[Vec<(usize, f64)>]) -> Self {
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for row in rows {
            scratch.clear();
            scratch.extend_from_slice(row);
            scratch.sort_unstable_by_key(|&(j, _)| j);
            let mut k = 0;
            while k < scratch.len() {
                let (j, mut v) = scratch[k];
                assert!(j < ncols, "column index {j} out of range (ncols {ncols})");
                k += 1;
                while k < scratch.len() && scratch[k].0 == j {
                    v += scratch[k].1;
                    k += 1;
                }
                if v != 0.0 {
                    indices.push(j);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            nrows: rows.len(),
            ncols,
            indptr,
            indices,
            values,
        }
    }

    pub(crate) fn nrows(&self) -> usize {
        self.nrows
    }

    pub(crate) fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored (non-zero) entries.
    pub(crate) fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Row `i` as parallel `(column ids, values)` slices.
    pub(crate) fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let span = self.indptr[i]..self.indptr[i + 1];
        (&self.indices[span.clone()], &self.values[span])
    }

    /// The same matrix compressed by columns (for column pricing / FTRAN).
    pub(crate) fn to_csc(&self) -> CscMatrix {
        // Counting sort of the entries by column: stable, O(nnz + ncols).
        let mut counts = vec![0usize; self.ncols + 1];
        for &j in &self.indices {
            counts[j + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let dst = counts[j];
                counts[j] += 1;
                indices[dst] = i;
                values[dst] = v;
            }
        }
        CscMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            indptr,
            indices,
            values,
        }
    }
}

/// A sparse matrix in compressed-sparse-column form (transposed CSR layout).
#[derive(Debug, Clone)]
pub(crate) struct CscMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    pub(crate) fn nrows(&self) -> usize {
        self.nrows
    }

    pub(crate) fn ncols(&self) -> usize {
        self.ncols
    }

    /// Column `j` as parallel `(row ids, values)` slices.
    pub(crate) fn col(&self, j: usize) -> (&[usize], &[f64]) {
        let span = self.indptr[j]..self.indptr[j + 1];
        (&self.indices[span.clone()], &self.values[span])
    }

    /// The sparse dot product `y · A_j` used by reduced-cost pricing.
    pub(crate) fn col_dot(&self, j: usize, y: &[f64]) -> f64 {
        let (rows, vals) = self.col(j);
        rows.iter().zip(vals).map(|(&i, &v)| y[i] * v).sum()
    }

    /// Scatters column `j` into the dense buffer `out` (zeroed first).
    pub(crate) fn scatter_col(&self, j: usize, out: &mut [f64]) {
        out.fill(0.0);
        let (rows, vals) = self.col(j);
        for (&i, &v) in rows.iter().zip(vals) {
            out[i] = v;
        }
    }
}

/// A standard-form LP `min c·x  s.t.  A x = b, x ≥ 0, b ≥ 0` with the
/// constraint matrix kept sparse.
///
/// This is what [`crate::solver`] now produces from the modelling form; the
/// dense [`StandardForm`] consumed by the flat-tableau oracle is
/// materialised from it on demand via [`SparseStandardForm::to_dense`].
#[derive(Debug, Clone)]
pub(crate) struct SparseStandardForm {
    pub a: CsrMatrix,
    pub b: Vec<f64>,
    pub c: Vec<f64>,
    /// `mirror[j] = Some(k)` records that column `k` is the exact negation
    /// of column `j` (the `x = x⁺ − x⁻` split of a free variable, which the
    /// conversion always lays out as adjacent columns `k = j + 1`).  The
    /// revised simplex prices both with a single sparse dot product.
    pub mirror: Vec<Option<usize>>,
}

impl SparseStandardForm {
    /// Wraps a standard form with no recorded mirror pairs (tests build
    /// their programs directly; the conversion fills `mirror` itself).
    #[cfg(test)]
    pub(crate) fn new(a: CsrMatrix, b: Vec<f64>, c: Vec<f64>) -> Self {
        let mirror = vec![None; a.ncols()];
        SparseStandardForm { a, b, c, mirror }
    }

    pub(crate) fn num_rows(&self) -> usize {
        self.a.nrows()
    }

    pub(crate) fn num_cols(&self) -> usize {
        self.a.ncols()
    }

    /// Densifies into the flat-tableau solver's input form.
    pub(crate) fn to_dense(&self) -> StandardForm {
        let n = self.a.ncols();
        let a = (0..self.a.nrows())
            .map(|i| {
                let mut dense = vec![0.0; n];
                let (cols, vals) = self.a.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    dense[j] = v;
                }
                dense
            })
            .collect();
        StandardForm {
            a,
            b: self.b.clone(),
            c: self.c.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_from_rows_sorts_merges_and_drops_zeros() {
        let m = CsrMatrix::from_rows(
            4,
            &[
                vec![(2, 1.0), (0, 3.0), (2, -1.0)], // (2, 0.0) dropped
                vec![],
                vec![(3, 2.0), (1, -4.0)],
            ],
        );
        assert_eq!((m.nrows(), m.ncols(), m.nnz()), (3, 4, 3));
        assert_eq!(m.row(0), (&[0usize][..], &[3.0][..]));
        assert_eq!(m.row(1), (&[][..], &[][..]));
        assert_eq!(m.row(2), (&[1usize, 3][..], &[-4.0, 2.0][..]));
    }

    #[test]
    fn csc_transposition_round_trips() {
        let rows = vec![
            vec![(0, 1.0), (2, 2.0)],
            vec![(1, 3.0)],
            vec![(0, -1.0), (1, 4.0), (2, 5.0)],
        ];
        let csr = CsrMatrix::from_rows(3, &rows);
        let csc = csr.to_csc();
        assert_eq!((csc.nrows(), csc.ncols()), (3, 3));
        assert_eq!(csc.col(0), (&[0usize, 2][..], &[1.0, -1.0][..]));
        assert_eq!(csc.col(1), (&[1usize, 2][..], &[3.0, 4.0][..]));
        assert_eq!(csc.col(2), (&[0usize, 2][..], &[2.0, 5.0][..]));
        assert_eq!(csc.col_dot(2, &[1.0, 10.0, 100.0]), 502.0);
        let mut buf = vec![9.0; 3];
        csc.scatter_col(1, &mut buf);
        assert_eq!(buf, vec![0.0, 3.0, 4.0]);
    }

    #[test]
    fn sparse_standard_form_densifies() {
        let sf = SparseStandardForm::new(
            CsrMatrix::from_rows(3, &[vec![(0, 1.0), (2, -2.0)], vec![(1, 4.0)]]),
            vec![1.0, 2.0],
            vec![0.5, 0.0, 0.0],
        );
        assert_eq!(sf.num_rows(), 2);
        assert_eq!(sf.num_cols(), 3);
        assert_eq!(sf.a.nnz(), 3);
        let dense = sf.to_dense();
        assert_eq!(dense.a, vec![vec![1.0, 0.0, -2.0], vec![0.0, 4.0, 0.0]]);
        assert_eq!(dense.b, vec![1.0, 2.0]);
        assert_eq!(dense.c, vec![0.5, 0.0, 0.0]);
    }
}
