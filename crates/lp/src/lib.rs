//! Linear-programming substrate for the PRDNN reproduction.
//!
//! The paper's repair algorithms reduce DNN repair to a linear program whose
//! variables are the parameter deltas `Δ` of a single value-channel layer and
//! whose objective is the ℓ1 or ℓ∞ norm of `Δ` (the paper uses Gurobi for
//! this step).  This crate provides the equivalent capability from scratch:
//!
//! * [`LpProblem`] — a small modelling layer: free or non-negative variables,
//!   `≤` / `≥` / `=` constraints, linear or norm-minimisation objectives.
//! * [`solve`] — a two-phase simplex solve that returns an optimal
//!   solution, or reports that the program is [infeasible](LpError::Infeasible)
//!   (the paper's `⊥`: no single-layer repair exists) or unbounded.
//!
//! Two backends implement the simplex method: a sparse *revised* simplex
//! with a Markowitz-ordered LU-factorised, eta-updated basis (the default
//! for the wide, block-sparse repair LPs) and the dense flat-tableau solver
//! it superseded (kept as the small-problem fallback and
//! differential-testing oracle).  The revised backend prices entering
//! columns with Devex reference weights over a partial-pricing candidate
//! list by default; [`PricingRule`] pins Dantzig or Devex explicitly (or
//! via the `PRDNN_LP_PRICING` environment variable).
//! [`SolveOptions`]/[`LpBackend`] select explicitly; [`solve`] picks
//! automatically per problem.
//!
//! # Example
//!
//! Find the ℓ1-minimal `(x, y)` with `x + y ≥ 1` and `x − y ≤ 0.25`:
//!
//! ```
//! use prdnn_lp::{ConstraintOp, LpProblem, VarKind};
//!
//! # fn main() -> Result<(), prdnn_lp::LpError> {
//! let mut lp = LpProblem::new();
//! let x = lp.add_var(VarKind::Free);
//! let y = lp.add_var(VarKind::Free);
//! lp.add_constraint(&[(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 1.0);
//! lp.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Le, 0.25);
//! lp.minimize_l1_of(&[x, y]);
//! let solution = prdnn_lp::solve(&lp)?;
//! assert!((solution.objective - 1.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

mod basis;
mod problem;
mod revised;
mod simplex;
mod solver;
mod sparse;

pub use problem::{ConstraintOp, LpProblem, Objective, VarId, VarKind};
pub use solver::{
    solve, solve_with_limit, solve_with_options, solve_with_stats, LpBackend, LpStats, PricingRule,
    Solution, SolveOptions,
};

/// Errors returned by [`solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The constraint system has no feasible point.  For the repair
    /// algorithms this is the paper's `⊥`: no single-layer repair of the
    /// requested layer satisfies the specification.
    Infeasible,
    /// The objective can be made arbitrarily small over the feasible region.
    Unbounded,
    /// The simplex iteration limit was exceeded before reaching optimality.
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}
