//! Property-based tests of the flat-tableau simplex core on random
//! standard-form programs, driven through the public
//! [`prdnn_lp::solve_with_limit`] API.
//!
//! A standard-form program `min c·x s.t. A x = b, x ≥ 0` is generated
//! feasible *by construction*: a non-negative witness `x₀` is drawn first
//! and `b := A x₀`.  The solver must then (i) return a feasible point,
//! (ii) report an objective equal to `c · x` for the returned `x`
//! (the objective value is complementary to the point), and (iii) never
//! return an objective worse than the witness's.

use prdnn_lp::{solve_with_limit, ConstraintOp, LpProblem, VarKind};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct StandardProgram {
    witness: Vec<f64>,
    rows: Vec<Vec<f64>>,
    cost: Vec<f64>,
}

fn standard_program(num_vars: usize, num_rows: usize) -> impl Strategy<Value = StandardProgram> {
    (
        prop::collection::vec(0.0..3.0f64, num_vars),
        prop::collection::vec(prop::collection::vec(-2.0..2.0f64, num_vars), num_rows),
        prop::collection::vec(-1.0..1.0f64, num_vars),
    )
        .prop_map(|(witness, rows, cost)| StandardProgram {
            witness,
            rows,
            cost,
        })
}

/// Builds `min cost·x  s.t.  A x = A·witness, x ≥ 0` as an [`LpProblem`].
fn build(program: &StandardProgram) -> (LpProblem, Vec<prdnn_lp::VarId>) {
    let mut lp = LpProblem::new();
    let vars = lp.add_vars(program.witness.len(), VarKind::NonNegative);
    for row in &program.rows {
        let rhs: f64 = row.iter().zip(&program.witness).map(|(a, w)| a * w).sum();
        let terms: Vec<_> = vars.iter().copied().zip(row.iter().copied()).collect();
        lp.add_constraint(&terms, ConstraintOp::Eq, rhs);
    }
    (lp, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn standard_form_feasibility_and_objective_invariants(
        program in standard_program(5, 3),
        bound in 4.0..8.0f64,
    ) {
        let (mut lp, vars) = build(&program);
        // Box the variables (x_i <= bound + witness bound) so a negative
        // cost cannot make the program unbounded.
        for (v, w) in vars.iter().zip(&program.witness) {
            lp.add_constraint(&[(*v, 1.0)], ConstraintOp::Le, w + bound);
        }
        let terms: Vec<_> = vars.iter().copied().zip(program.cost.iter().copied()).collect();
        lp.set_objective_linear(&terms);

        let sol = solve_with_limit(&lp, 100_000).expect("constructed program is feasible");
        // (i) The returned point satisfies A x = b, x >= 0, and the boxes.
        prop_assert!(lp.is_feasible(&sol.values, 1e-6));
        // (ii) The reported objective is complementary to the point.
        let recomputed: f64 =
            program.cost.iter().zip(&sol.values).map(|(c, x)| c * x).sum();
        prop_assert!(
            (sol.objective - recomputed).abs() < 1e-6,
            "objective {} disagrees with c.x = {}",
            sol.objective,
            recomputed
        );
        // (iii) The optimum is no worse than the witness.
        let witness_obj: f64 =
            program.cost.iter().zip(&program.witness).map(|(c, w)| c * w).sum();
        prop_assert!(sol.objective <= witness_obj + 1e-6);
    }

    #[test]
    fn pure_feasibility_standard_form(program in standard_program(4, 4)) {
        let (lp, _) = build(&program);
        let sol = solve_with_limit(&lp, 100_000).expect("feasible by construction");
        prop_assert!(lp.is_feasible(&sol.values, 1e-6));
        prop_assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn l1_objective_on_standard_form(program in standard_program(4, 2)) {
        let (mut lp, vars) = build(&program);
        lp.minimize_l1_of(&vars);
        let sol = solve_with_limit(&lp, 100_000).expect("feasible by construction");
        prop_assert!(lp.is_feasible(&sol.values, 1e-6));
        // For non-negative variables the l1 norm is the plain sum.
        let witness_norm: f64 = program.witness.iter().sum();
        prop_assert!(sol.objective <= witness_norm + 1e-6);
        let sol_norm: f64 = sol.values.iter().map(|x| x.abs()).sum();
        prop_assert!((sol.objective - sol_norm).abs() < 1e-6);
    }
}
