//! Degeneracy regression tests: hand-built stalling / cycling programs that
//! historically trip simplex implementations, pinned to terminate at the
//! right answer under every backend × pricing combination.
//!
//! The Bland-fallback mechanics themselves (that a degenerate streak really
//! switches the rule) are pinned by unit tests inside `revised.rs`, which
//! can see the internal pivot counters; these integration tests pin the
//! user-visible contract: degenerate programs terminate, classify
//! correctly, and agree across configurations.

use prdnn_lp::{
    solve_with_options, ConstraintOp, LpBackend, LpProblem, PricingRule, SolveOptions, VarKind,
};

const CONFIGS: [(&str, LpBackend, PricingRule); 3] = [
    ("dense", LpBackend::DenseTableau, PricingRule::Auto),
    (
        "revised+dantzig",
        LpBackend::RevisedSparse,
        PricingRule::Dantzig,
    ),
    (
        "revised+devex",
        LpBackend::RevisedSparse,
        PricingRule::Devex,
    ),
];

/// Solves under every configuration with a finite iteration budget (so a
/// cycling solver fails the test instead of hanging) and checks agreement;
/// returns the dense oracle's objective.
fn solve_all_and_agree(lp: &LpProblem) -> f64 {
    let mut reference: Option<f64> = None;
    for (name, backend, pricing) in CONFIGS {
        let solution = solve_with_options(
            lp,
            &SolveOptions {
                backend,
                pricing,
                max_iters: 50_000,
            },
        )
        .unwrap_or_else(|e| panic!("{name} failed on a degenerate program: {e}"));
        assert!(
            lp.is_feasible(&solution.values, 1e-6),
            "{name} returned an infeasible point"
        );
        match reference {
            None => reference = Some(solution.objective),
            Some(r) => assert!(
                (r - solution.objective).abs() <= 1e-6 * (1.0 + r.abs()),
                "{name} disagrees on a degenerate program: {r} vs {}",
                solution.objective
            ),
        }
    }
    reference.unwrap()
}

#[test]
fn beale_cycling_example_terminates_under_all_configurations() {
    // Beale (1955): the classic example on which Dantzig's rule cycles
    // forever without an anti-cycling safeguard.
    //   min -0.75 x1 + 150 x2 - 0.02 x3 + 6 x4
    //   s.t. 0.25 x1 - 60 x2 - 0.04 x3 + 9 x4 <= 0
    //        0.50 x1 - 90 x2 - 0.02 x3 + 3 x4 <= 0
    //        x3 <= 1,  x >= 0
    // Optimum: x = (0.04, 0, 1, 0) with objective -0.05.
    let mut lp = LpProblem::new();
    let x = lp.add_vars(4, VarKind::NonNegative);
    lp.add_constraint(
        &[(x[0], 0.25), (x[1], -60.0), (x[2], -0.04), (x[3], 9.0)],
        ConstraintOp::Le,
        0.0,
    );
    lp.add_constraint(
        &[(x[0], 0.5), (x[1], -90.0), (x[2], -0.02), (x[3], 3.0)],
        ConstraintOp::Le,
        0.0,
    );
    lp.add_constraint(&[(x[2], 1.0)], ConstraintOp::Le, 1.0);
    lp.set_objective_linear(&[(x[0], -0.75), (x[1], 150.0), (x[2], -0.02), (x[3], 6.0)]);
    let objective = solve_all_and_agree(&lp);
    assert!(
        (objective + 0.05).abs() < 1e-7,
        "Beale optimum is -0.05, got {objective}"
    );
}

#[test]
fn zero_rhs_block_stalls_resolve() {
    // A long chain of zero-RHS rows makes every early vertex massively
    // degenerate: dozens of basic variables sit at level zero, and most
    // pivots make no progress.  The Devex rule must hand over to Bland
    // (pinned internally) and still reach the optimum.
    let n = 60usize;
    let mut lp = LpProblem::new();
    let x = lp.add_vars(n, VarKind::NonNegative);
    for i in 0..n - 1 {
        lp.add_constraint(&[(x[i], 1.0), (x[i + 1], -1.0)], ConstraintOp::Le, 0.0);
    }
    lp.add_constraint(
        &x.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
        ConstraintOp::Le,
        6.0,
    );
    let terms: Vec<_> = x
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, -1.0 - (i % 3) as f64))
        .collect();
    lp.set_objective_linear(&terms);
    let objective = solve_all_and_agree(&lp);
    // All mass goes to the chain tail (largest coefficient reachable):
    // x_i ≤ x_{i+1} forces a nondecreasing profile, so the optimum is
    // bounded and strictly negative.
    assert!(objective < -6.0 + 1e-9);
}

#[test]
fn duplicate_rows_keep_all_configurations_consistent() {
    // Duplicate and scaled-duplicate rows create redundant constraints
    // whose artificials stay basic at zero (the inert-artificial path) —
    // a classic source of backend divergence.
    let mut lp = LpProblem::new();
    let x = lp.add_var(VarKind::Free);
    let y = lp.add_var(VarKind::Free);
    for scale in [1.0, 1.0, 2.0, 5.0] {
        lp.add_constraint(&[(x, scale), (y, scale)], ConstraintOp::Eq, 3.0 * scale);
    }
    lp.add_constraint(&[(x, 1.0), (y, -1.0)], ConstraintOp::Le, 1.0);
    lp.minimize_l1_of(&[x, y]);
    let objective = solve_all_and_agree(&lp);
    assert!((objective - 3.0).abs() < 1e-7, "l1-minimum on x+y=3 is 3");
}

/// The negative-RHS standard-form fixtures from PR 2, now pinned across
/// every backend × pricing combination (they exercise the slack-sign
/// flip that once seeded phase 1 with an unusable basis).
#[test]
fn negative_rhs_fixtures_hold_under_all_configurations() {
    // `x ≤ -3` with min |x|: the flipped row needs an artificial.
    let mut le = LpProblem::new();
    let x = le.add_var(VarKind::Free);
    le.add_constraint(&[(x, 1.0)], ConstraintOp::Le, -3.0);
    le.minimize_l1_of(&[x]);
    let objective = solve_all_and_agree(&le);
    assert!((objective - 3.0).abs() < 1e-7);

    // `-x ≥ -5` (⟺ x ≤ 5) with max x: the flipped row carries a clean
    // slack, so no artificial is needed.
    let mut ge = LpProblem::new();
    let x = ge.add_var(VarKind::NonNegative);
    ge.add_constraint(&[(x, -1.0)], ConstraintOp::Ge, -5.0);
    ge.set_objective_linear(&[(x, -1.0)]);
    let objective = solve_all_and_agree(&ge);
    assert!((objective + 5.0).abs() < 1e-7);

    // Mixed system with several flipped rows and an equality.
    let mut mixed = LpProblem::new();
    let a = mixed.add_var(VarKind::Free);
    let b = mixed.add_var(VarKind::Free);
    mixed.add_constraint(&[(a, 1.0), (b, 1.0)], ConstraintOp::Ge, -2.0);
    mixed.add_constraint(&[(a, 1.0), (b, -1.0)], ConstraintOp::Le, -1.0);
    mixed.add_constraint(&[(a, 2.0)], ConstraintOp::Eq, -3.0);
    mixed.minimize_l1_of(&[a, b]);
    let objective = solve_all_and_agree(&mixed);
    // a = -1.5 fixed; rows 1–2 only force b ≥ -0.5, so the ℓ1-minimal
    // choice is b = 0 and the objective is |a| = 1.5.
    assert!((objective - 1.5).abs() < 1e-7, "expected |a| = 1.5");
}
