//! Property-based tests for the LP solver.
//!
//! Strategy: generate random constraint systems that are feasible *by
//! construction* (we pick a witness point first and only keep constraints it
//! satisfies), then check that the solver (i) returns a feasible point and
//! (ii) never returns an objective worse than the witness.

use prdnn_lp::{solve, ConstraintOp, LpProblem, VarKind};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomLp {
    witness: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>, // coeffs, slack added to make the row satisfied
}

fn random_lp(num_vars: usize, num_rows: usize) -> impl Strategy<Value = RandomLp> {
    let witness = prop::collection::vec(-3.0..3.0f64, num_vars);
    let rows = prop::collection::vec(
        (prop::collection::vec(-2.0..2.0f64, num_vars), 0.0..2.0f64),
        num_rows,
    );
    (witness, rows).prop_map(|(witness, rows)| RandomLp { witness, rows })
}

fn build_problem(spec: &RandomLp) -> (LpProblem, Vec<prdnn_lp::VarId>) {
    let mut lp = LpProblem::new();
    let vars = lp.add_vars(spec.witness.len(), VarKind::Free);
    for (coeffs, slack) in &spec.rows {
        // a · witness <= a · witness + slack, so the witness satisfies it.
        let rhs: f64 = coeffs
            .iter()
            .zip(&spec.witness)
            .map(|(a, w)| a * w)
            .sum::<f64>()
            + slack;
        let terms: Vec<_> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
        lp.add_constraint(&terms, ConstraintOp::Le, rhs);
    }
    (lp, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn feasible_by_construction_is_solved(spec in random_lp(4, 6)) {
        let (mut lp, vars) = build_problem(&spec);
        lp.minimize_l1_of(&vars);
        let sol = solve(&lp).expect("constructed problem must be feasible");
        prop_assert!(lp.is_feasible(&sol.values, 1e-6));
        // The witness is feasible, so the optimum can never exceed its norm.
        let witness_norm: f64 = spec.witness.iter().map(|x| x.abs()).sum();
        prop_assert!(sol.objective <= witness_norm + 1e-6);
        // The objective reported equals the l1 norm of the returned values.
        let sol_norm: f64 = sol.values.iter().map(|x| x.abs()).sum();
        prop_assert!((sol.objective - sol_norm).abs() < 1e-6);
    }

    #[test]
    fn linf_objective_never_exceeds_l1(spec in random_lp(3, 5)) {
        let (mut lp, vars) = build_problem(&spec);
        lp.minimize_l1_of(&vars);
        let l1 = solve(&lp).expect("feasible").objective;
        let (mut lp2, vars2) = build_problem(&spec);
        lp2.minimize_linf_of(&vars2);
        let linf = solve(&lp2).expect("feasible").objective;
        // For any vector, ||x||_inf <= ||x||_1; the same holds for the optima.
        prop_assert!(linf <= l1 + 1e-6);
    }

    #[test]
    fn linear_objective_optimum_beats_witness(spec in random_lp(4, 5),
                                              cost in prop::collection::vec(-1.0..1.0f64, 4)) {
        let (mut lp, vars) = build_problem(&spec);
        // Keep the feasible region bounded so the LP cannot be unbounded:
        // box constraints containing the witness.
        for (v, w) in vars.iter().zip(&spec.witness) {
            lp.add_constraint(&[(*v, 1.0)], ConstraintOp::Le, w.abs() + 5.0);
            lp.add_constraint(&[(*v, 1.0)], ConstraintOp::Ge, -(w.abs() + 5.0));
        }
        let terms: Vec<_> = vars.iter().copied().zip(cost.iter().copied()).collect();
        lp.set_objective_linear(&terms);
        let sol = solve(&lp).expect("feasible");
        prop_assert!(lp.is_feasible(&sol.values, 1e-6));
        let witness_obj: f64 = cost.iter().zip(&spec.witness).map(|(c, w)| c * w).sum();
        prop_assert!(sol.objective <= witness_obj + 1e-6);
    }
}
