//! Differential property tests: the sparse revised simplex against the
//! dense flat-tableau oracle.
//!
//! Both backends are run on the same randomly generated programs through
//! [`prdnn_lp::solve_with_options`]; they must classify every program
//! identically (optimal / infeasible / unbounded) and, when both report an
//! optimum, agree on the objective to within `1e-6` (the optimal *point*
//! may legitimately differ when optima are non-unique, so each backend's
//! point is instead checked feasible against the modelling form).
//!
//! Three program families keep all outcome classes covered:
//! * feasible-by-construction (a witness point is drawn first, and boxed so
//!   the objective is bounded),
//! * deliberately contradictory rows (infeasible),
//! * a cost ray left unboxed (unbounded, for some draws),
//!
//! plus unconstrained-direction draws where the class itself is random.

use prdnn_lp::{
    solve_with_options, ConstraintOp, LpBackend, LpError, LpProblem, SolveOptions, VarKind,
};
use proptest::prelude::*;

const ITERS: usize = 200_000;

fn run(lp: &LpProblem, backend: LpBackend) -> Result<(Vec<f64>, f64), LpError> {
    solve_with_options(
        lp,
        &SolveOptions {
            backend,
            max_iters: ITERS,
            ..SolveOptions::default()
        },
    )
    .map(|s| (s.values, s.objective))
}

/// Runs both backends and checks the differential invariants; returns the
/// shared classification for family-specific assertions.
fn assert_backends_agree(lp: &LpProblem) -> Result<f64, LpError> {
    let dense = run(lp, LpBackend::DenseTableau);
    let revised = run(lp, LpBackend::RevisedSparse);
    match (dense, revised) {
        (Ok((xd, od)), Ok((xr, or))) => {
            assert!(
                (od - or).abs() <= 1e-6 * (1.0 + od.abs().max(or.abs())),
                "objectives disagree: dense {od} vs revised {or}"
            );
            assert!(lp.is_feasible(&xd, 1e-6), "dense point infeasible");
            assert!(lp.is_feasible(&xr, 1e-6), "revised point infeasible");
            Ok(od)
        }
        (Err(ed), Err(er)) => {
            assert_eq!(ed, er, "backends classify the program differently");
            Err(ed)
        }
        (d, r) => panic!("backends disagree: dense {d:?} vs revised {r:?}"),
    }
}

#[derive(Debug, Clone)]
struct ProgramDraw {
    witness: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
    cost: Vec<f64>,
    /// 0 = feasible boxed, 1 = contradictory, 2 = unbounded-prone, 3 = raw.
    family: u8,
}

fn program(num_vars: usize, num_rows: usize) -> impl Strategy<Value = ProgramDraw> {
    (
        prop::collection::vec(-3.0..3.0f64, num_vars),
        prop::collection::vec(
            (prop::collection::vec(-2.0..2.0f64, num_vars), 0.0..2.0f64),
            num_rows,
        ),
        prop::collection::vec(-1.0..1.0f64, num_vars),
        0u8..4,
    )
        .prop_map(|(witness, rows, cost, family)| ProgramDraw {
            witness,
            rows,
            cost,
            family,
        })
}

fn build(draw: &ProgramDraw) -> LpProblem {
    let mut lp = LpProblem::new();
    let vars = lp.add_vars(draw.witness.len(), VarKind::Free);
    for (coeffs, slack) in &draw.rows {
        let terms: Vec<_> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
        let witness_lhs: f64 = coeffs.iter().zip(&draw.witness).map(|(a, w)| a * w).sum();
        match draw.family {
            // Feasible by construction: the witness satisfies every row.
            0 => lp.add_constraint(&terms, ConstraintOp::Le, witness_lhs + slack),
            // Contradictory: the same left-hand side must be both small and
            // large, so the program is infeasible whenever a row exists.
            1 => {
                lp.add_constraint(&terms, ConstraintOp::Le, witness_lhs);
                lp.add_constraint(&terms, ConstraintOp::Ge, witness_lhs + slack + 0.1);
            }
            // Unbounded-prone: feasible rows, no boxes (see below).
            2 => lp.add_constraint(&terms, ConstraintOp::Ge, witness_lhs - slack),
            // Raw: arbitrary rows; any classification may result.
            _ => lp.add_constraint(&terms, ConstraintOp::Le, *slack - 1.0),
        }
    }
    match draw.family {
        0 => {
            // Box every variable so a linear objective stays bounded.
            for (v, w) in vars.iter().zip(&draw.witness) {
                lp.add_constraint(&[(*v, 1.0)], ConstraintOp::Le, w.abs() + 4.0);
                lp.add_constraint(&[(*v, 1.0)], ConstraintOp::Ge, -(w.abs() + 4.0));
            }
            let terms: Vec<_> = vars
                .iter()
                .copied()
                .zip(draw.cost.iter().copied())
                .collect();
            lp.set_objective_linear(&terms);
        }
        2 => {
            let terms: Vec<_> = vars
                .iter()
                .copied()
                .zip(draw.cost.iter().copied())
                .collect();
            lp.set_objective_linear(&terms);
        }
        _ => lp.minimize_l1_of(&vars),
    }
    lp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn backends_agree_on_classification_and_objective(draw in program(5, 6)) {
        let lp = build(&draw);
        let outcome = assert_backends_agree(&lp);
        match draw.family {
            0 => {
                // Feasible by construction, boxed: must be optimal, no worse
                // than the witness.
                let witness_obj: f64 = draw
                    .cost
                    .iter()
                    .zip(&draw.witness)
                    .map(|(c, w)| c * w)
                    .sum();
                let obj = outcome.expect("family 0 is feasible and bounded");
                prop_assert!(obj <= witness_obj + 1e-6);
            }
            1 if !draw.rows.is_empty() => {
                prop_assert_eq!(outcome.unwrap_err(), LpError::Infeasible);
            }
            _ => {} // classification checked by agreement alone
        }
    }

    #[test]
    fn backends_agree_on_l1_norm_objectives(draw in program(4, 5)) {
        // The repair LPs' shape: free variables, l1 objective.
        let mut lp = LpProblem::new();
        let vars = lp.add_vars(draw.witness.len(), VarKind::Free);
        for (coeffs, slack) in &draw.rows {
            let rhs: f64 = coeffs
                .iter()
                .zip(&draw.witness)
                .map(|(a, w)| a * w)
                .sum::<f64>()
                + slack;
            let terms: Vec<_> = vars.iter().copied().zip(coeffs.iter().copied()).collect();
            lp.add_constraint(&terms, ConstraintOp::Le, rhs);
        }
        lp.minimize_l1_of(&vars);
        let obj = assert_backends_agree(&lp).expect("feasible by construction");
        let witness_norm: f64 = draw.witness.iter().map(|w| w.abs()).sum();
        prop_assert!(obj <= witness_norm + 1e-6);
    }

    #[test]
    fn backends_agree_on_wide_block_sparse_programs(
        blocks in prop::collection::vec(
            (prop::collection::vec(-1.0..1.0f64, 6), 0.05..1.0f64),
            8,
        ),
    ) {
        // One constraint block per "key point", touching only its own
        // 6-variable slice — the block structure of the repair LPs, wide
        // enough that the Auto policy routes it to the revised backend.
        let mut lp = LpProblem::new();
        let vars = lp.add_vars(6 * blocks.len(), VarKind::Free);
        for (bi, (coeffs, margin)) in blocks.iter().enumerate() {
            let slice = &vars[bi * 6..(bi + 1) * 6];
            let terms: Vec<_> = slice.iter().copied().zip(coeffs.iter().copied()).collect();
            lp.add_constraint(&terms, ConstraintOp::Le, *margin);
            let neg: Vec<_> = terms.iter().map(|&(v, c)| (v, -c)).collect();
            lp.add_constraint(&neg, ConstraintOp::Le, *margin);
        }
        lp.minimize_l1_of(&vars);
        let obj = assert_backends_agree(&lp).expect("x = 0 is feasible");
        // x = 0 satisfies every block, so the minimal l1 norm is 0.
        prop_assert!(obj.abs() <= 1e-6);
    }
}
