//! Cross-backend LP conformance suite: random feasible / infeasible /
//! unbounded sparse programs must be classified identically — and agree on
//! the optimal objective — under every backend × pricing combination:
//!
//! * `DenseTableau` (the flat-tableau oracle),
//! * `RevisedSparse` + Dantzig full pricing,
//! * `RevisedSparse` + Devex candidate-list partial pricing.
//!
//! The optimal *point* may legitimately differ between configurations when
//! optima are non-unique, so each configuration's point is instead checked
//! feasible against the modelling form.
//!
//! The vendored proptest stand-in has no shrinking, so this suite carries
//! its own: on a mismatch the failing program is greedily minimised —
//! dropping constraints, dropping variables, then zeroing single
//! coefficients, as long as the mismatch persists — and the panic message
//! prints the minimal program ready to paste into a regression test.

use prdnn_lp::{
    solve_with_options, ConstraintOp, LpBackend, LpError, LpProblem, PricingRule, SolveOptions,
    VarKind,
};
use proptest::prelude::*;

const ITERS: usize = 200_000;

/// One constraint: a sparse coefficient row, its operator, and its RHS.
type Row = (Vec<(usize, f64)>, ConstraintOp, f64);

/// What one solver configuration produced: the point and the objective.
type SolveResult = Result<(Vec<f64>, f64), LpError>;

/// The three configurations the conformance suite compares.
const CONFIGS: [(&str, LpBackend, PricingRule); 3] = [
    ("dense", LpBackend::DenseTableau, PricingRule::Auto),
    (
        "revised+dantzig",
        LpBackend::RevisedSparse,
        PricingRule::Dantzig,
    ),
    (
        "revised+devex",
        LpBackend::RevisedSparse,
        PricingRule::Devex,
    ),
];

/// A self-contained sparse test program: explicit rows over `num_vars` free
/// variables, plus either a linear objective or the ℓ1 norm.
#[derive(Debug, Clone)]
struct TestProgram {
    num_vars: usize,
    /// `(sparse row, op, rhs)` triples.
    rows: Vec<Row>,
    /// Linear objective coefficients; `None` minimises the ℓ1 norm of all
    /// variables instead.
    linear_objective: Option<Vec<f64>>,
}

impl TestProgram {
    fn build(&self) -> LpProblem {
        let mut lp = LpProblem::new();
        let vars = lp.add_vars(self.num_vars, VarKind::Free);
        for (coeffs, op, rhs) in &self.rows {
            let terms: Vec<_> = coeffs.iter().map(|&(j, c)| (vars[j], c)).collect();
            lp.add_constraint(&terms, *op, *rhs);
        }
        match &self.linear_objective {
            Some(c) => {
                let terms: Vec<_> = vars.iter().copied().zip(c.iter().copied()).collect();
                lp.set_objective_linear(&terms);
            }
            None => lp.minimize_l1_of(&vars),
        }
        lp
    }
}

/// Runs all three configurations; `Some(report)` describes a disagreement.
fn conformance_mismatch(program: &TestProgram) -> Option<String> {
    let lp = program.build();
    let results: Vec<(&str, SolveResult)> = CONFIGS
        .iter()
        .map(|&(name, backend, pricing)| {
            let r = solve_with_options(
                &lp,
                &SolveOptions {
                    backend,
                    pricing,
                    max_iters: ITERS,
                },
            )
            .map(|s| (s.values, s.objective));
            (name, r)
        })
        .collect();
    let (ref_name, ref_result) = &results[0];
    for (name, result) in &results[1..] {
        match (ref_result, result) {
            (Ok((_, ref_obj)), Ok((x, obj))) => {
                let tol = 1e-6 * (1.0 + ref_obj.abs().max(obj.abs()));
                if (ref_obj - obj).abs() > tol {
                    return Some(format!(
                        "objective mismatch: {ref_name} {ref_obj} vs {name} {obj}"
                    ));
                }
                if !lp.is_feasible(x, 1e-6) {
                    return Some(format!("{name} returned an infeasible point"));
                }
            }
            (Err(a), Err(b)) if a == b => {}
            (a, b) => {
                return Some(format!(
                    "status mismatch: {ref_name} {:?} vs {name} {:?}",
                    a.as_ref().map(|(_, o)| o),
                    b.as_ref().map(|(_, o)| o),
                ));
            }
        }
    }
    if let (_, Ok((x, _))) = &results[0] {
        if !lp.is_feasible(x, 1e-6) {
            return Some("dense oracle returned an infeasible point".into());
        }
    }
    None
}

/// Greedy shrink: repeatedly tries the smallest structural simplifications
/// (drop a row, drop a variable, zero one coefficient) and keeps any that
/// still reproduce a mismatch.
fn shrink(mut program: TestProgram) -> TestProgram {
    loop {
        let mut shrunk = false;
        // 1. Drop whole constraints.
        let mut i = 0;
        while i < program.rows.len() {
            let mut candidate = program.clone();
            candidate.rows.remove(i);
            if conformance_mismatch(&candidate).is_some() {
                program = candidate;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        // 2. Drop whole variables (remove their coefficients everywhere).
        for var in 0..program.num_vars {
            let mut candidate = program.clone();
            for (coeffs, _, _) in &mut candidate.rows {
                coeffs.retain(|&(j, _)| j != var);
            }
            if let Some(c) = &mut candidate.linear_objective {
                c[var] = 0.0;
            }
            if conformance_mismatch(&candidate).is_some() {
                program = candidate;
                shrunk = true;
            }
        }
        // 3. Zero single coefficients.
        for row in 0..program.rows.len() {
            let mut k = 0;
            while k < program.rows[row].0.len() {
                let mut candidate = program.clone();
                candidate.rows[row].0.remove(k);
                if conformance_mismatch(&candidate).is_some() {
                    program = candidate;
                    shrunk = true;
                } else {
                    k += 1;
                }
            }
        }
        if !shrunk {
            return program;
        }
    }
}

/// Checks conformance; on mismatch, shrinks to a minimal failing program
/// and panics with a reproduction-ready report.
fn assert_conformance(program: &TestProgram) {
    if let Some(report) = conformance_mismatch(program) {
        let minimal = shrink(program.clone());
        let minimal_report = conformance_mismatch(&minimal)
            .unwrap_or_else(|| "mismatch vanished while shrinking".into());
        panic!(
            "backend/pricing conformance failure: {report}\n\
             minimal failing program ({minimal_report}):\n{minimal:#?}"
        );
    }
}

#[derive(Debug, Clone)]
struct Draw {
    witness: Vec<f64>,
    /// Dense coefficient rows (zeros model sparsity) plus a slack margin.
    rows: Vec<(Vec<f64>, f64)>,
    cost: Vec<f64>,
    /// 0 = feasible boxed, 1 = contradictory, 2 = unbounded-prone, 3 = raw.
    family: u8,
}

/// Sparse rows: each row draws a dense coefficient vector plus a keep-mask
/// threshold so 30–80 % of the entries survive.
fn draw(num_vars: usize, num_rows: usize) -> impl Strategy<Value = Draw> {
    (
        prop::collection::vec(-3.0..3.0f64, num_vars),
        prop::collection::vec(
            (
                prop::collection::vec(prop_oneof![Just(0.0), -2.0..2.0f64], num_vars),
                0.0..2.0f64,
            ),
            num_rows,
        ),
        prop::collection::vec(-1.0..1.0f64, num_vars),
        0u8..4,
    )
        .prop_map(|(witness, rows, cost, family)| Draw {
            witness,
            rows,
            cost,
            family,
        })
}

fn program_from_draw(d: &Draw) -> TestProgram {
    let num_vars = d.witness.len();
    let sparse_row = |coeffs: &[f64]| -> Vec<(usize, f64)> {
        coeffs
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0.0)
            .map(|(j, &c)| (j, c))
            .collect()
    };
    let mut rows: Vec<Row> = Vec::new();
    for (coeffs, slack) in &d.rows {
        let row = sparse_row(coeffs);
        let witness_lhs: f64 = row.iter().map(|&(j, c)| c * d.witness[j]).sum();
        match d.family {
            0 => rows.push((row, ConstraintOp::Le, witness_lhs + slack)),
            1 => {
                rows.push((row.clone(), ConstraintOp::Le, witness_lhs));
                rows.push((row, ConstraintOp::Ge, witness_lhs + slack + 0.1));
            }
            2 => rows.push((row, ConstraintOp::Ge, witness_lhs - slack)),
            _ => rows.push((row, ConstraintOp::Le, *slack - 1.0)),
        }
    }
    let linear_objective = match d.family {
        0 => {
            // Box every variable so the linear objective stays bounded.
            for (j, w) in d.witness.iter().enumerate() {
                rows.push((vec![(j, 1.0)], ConstraintOp::Le, w.abs() + 4.0));
                rows.push((vec![(j, 1.0)], ConstraintOp::Ge, -(w.abs() + 4.0)));
            }
            Some(d.cost.clone())
        }
        2 => Some(d.cost.clone()),
        _ => None,
    };
    TestProgram {
        num_vars,
        rows,
        linear_objective,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_backend_pricing_combinations_agree(d in draw(5, 6)) {
        let program = program_from_draw(&d);
        assert_conformance(&program);
        // Family-specific classification checks (through the dense oracle).
        let lp = program.build();
        let dense = solve_with_options(&lp, &SolveOptions {
            backend: LpBackend::DenseTableau,
            max_iters: ITERS,
            ..SolveOptions::default()
        });
        match d.family {
            0 => prop_assert!(dense.is_ok(), "family 0 is feasible and bounded"),
            1 if d.rows.iter().any(|(c, _)| c.iter().any(|&v| v != 0.0)) => {
                prop_assert_eq!(dense.unwrap_err(), LpError::Infeasible);
            }
            _ => {}
        }
    }

    #[test]
    fn wide_block_sparse_programs_agree(
        blocks in prop::collection::vec(
            (prop::collection::vec(-1.0..1.0f64, 6), 0.05..1.0f64),
            10,
        ),
    ) {
        // The repair-LP shape: one constraint block per key point, each
        // touching only its own variable slice, ℓ1 objective — wide enough
        // that `Auto` routes it to the revised backend.
        let num_vars = 6 * blocks.len();
        let mut rows: Vec<Row> = Vec::new();
        for (bi, (coeffs, margin)) in blocks.iter().enumerate() {
            let row: Vec<(usize, f64)> = coeffs
                .iter()
                .enumerate()
                .map(|(k, &c)| (bi * 6 + k, c))
                .collect();
            let neg: Vec<(usize, f64)> = row.iter().map(|&(j, c)| (j, -c)).collect();
            rows.push((row, ConstraintOp::Le, *margin));
            rows.push((neg, ConstraintOp::Le, *margin));
        }
        let program = TestProgram { num_vars, rows, linear_objective: None };
        assert_conformance(&program);
    }
}

/// The shrinker itself must terminate and keep a genuine mismatch
/// reproducible; pin its behaviour on a synthetic "mismatch" predicate by
/// shrinking a program that is *feasible* — the shrinker is exercised via
/// the public entry by temporarily treating feasibility as the property.
#[test]
fn shrinker_reduces_redundant_rows() {
    // A program whose "interesting" property (infeasibility) is caused by
    // two rows; the other rows and variables are noise the shrinker must
    // remove.  We reuse the conformance plumbing by checking that shrink()
    // preserves mismatches: since no real mismatch exists in a healthy
    // build, test the greedy reducer directly against infeasibility.
    let base = TestProgram {
        num_vars: 4,
        rows: vec![
            (vec![(0, 1.0), (2, 0.5)], ConstraintOp::Le, 1.0),
            (vec![(1, 1.0)], ConstraintOp::Ge, 2.0),
            (vec![(1, 1.0)], ConstraintOp::Le, 1.0),
            (vec![(3, -1.0), (0, 2.0)], ConstraintOp::Le, 5.0),
        ],
        linear_objective: None,
    };
    let is_infeasible = |p: &TestProgram| {
        matches!(
            solve_with_options(&p.build(), &SolveOptions::default()),
            Err(LpError::Infeasible)
        )
    };
    assert!(is_infeasible(&base));
    // Greedy row-drop in the same spirit as shrink(): rows 0 and 3 must go.
    let mut p = base;
    let mut i = 0;
    while i < p.rows.len() {
        let mut candidate = p.clone();
        candidate.rows.remove(i);
        if is_infeasible(&candidate) {
            p = candidate;
        } else {
            i += 1;
        }
    }
    assert_eq!(p.rows.len(), 2, "only the contradictory pair should remain");
    assert!(p.rows.iter().all(|(c, _, _)| c == &vec![(1, 1.0)]));
}
