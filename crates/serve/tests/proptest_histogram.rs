//! Property tests for the telemetry histogram core: quantile error
//! bounds against a sorted-vector oracle, shard-merge associativity, and
//! bit-identical merged reports regardless of recording thread count.

use prdnn_serve::telemetry::{
    bucket_index, bucket_upper, Histogram, HistogramSnapshot, MAX_TRACKED, N_BUCKETS,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Values spanning the histogram's full dynamic range (µs): the linear
/// region, every octave, and the clamp at `MAX_TRACKED`.
fn value() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..64,
        64u64..100_000,
        // One value per octave: exp picks the octave, r the offset in it.
        (6u32..37, 0u64..u64::MAX).prop_map(|(exp, r)| {
            let lo = 1u64 << exp;
            lo + r % lo
        }),
        Just(MAX_TRACKED),
        Just(u64::MAX), // clamps to MAX_TRACKED
    ]
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let hist = Histogram::new();
    for &v in values {
        hist.record(v);
    }
    hist.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Bucket geometry: every value lands in a bucket whose upper bound
    /// is >= the (clamped) value, and within one sub-bucket's relative
    /// resolution of it.
    #[test]
    fn bucket_upper_bounds_its_values_within_resolution(v in value()) {
        let clamped = v.min(MAX_TRACKED);
        let i = bucket_index(v);
        prop_assert!(i < N_BUCKETS);
        let upper = bucket_upper(i);
        prop_assert!(upper >= clamped, "upper {upper} < value {clamped}");
        prop_assert!(
            upper - clamped <= clamped / 32 + 1,
            "bucket [..{upper}] too wide for {clamped}"
        );
    }

    /// Quantiles never under-report the true order statistic, and
    /// over-report it by at most one bucket width (<= value/32 + 1).
    #[test]
    fn quantiles_bound_the_sorted_oracle(
        mut values in prop::collection::vec(value(), 1..400),
        q in prop_oneof![0.0f64..1.0, Just(0.5), Just(0.99), Just(1.0)],
    ) {
        let snap = snapshot_of(&values);
        for v in &mut values {
            *v = (*v).min(MAX_TRACKED);
        }
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let truth = values[rank - 1];
        let got = snap.quantile(q);
        prop_assert!(got >= truth, "q{q} under-reported: {got} < {truth}");
        prop_assert!(
            got - truth <= truth / 32 + 1,
            "q{q} over-reported beyond bucket resolution: {got} vs {truth}"
        );
    }

    /// Merging is associative and commutative, and merging with an empty
    /// snapshot is the identity — the algebra that makes per-thread
    /// shards (and cross-process roll-ups) safe to combine in any order.
    #[test]
    fn merge_is_associative_commutative_with_identity(
        a in prop::collection::vec(value(), 0..60),
        b in prop::collection::vec(value(), 0..60),
        c in prop::collection::vec(value(), 0..60),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);

        let mut ba = sb.clone();
        ba.merge(&sa);
        let mut ab = sa.clone();
        ab.merge(&sb);
        prop_assert_eq!(&ab, &ba);

        let mut with_empty = sa.clone();
        with_empty.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&with_empty, &sa);
    }

    /// The merged report is bit-identical whether the same multiset of
    /// values was recorded by 1, 2, or 4 threads: recording order and
    /// shard assignment may differ, merged totals may not.
    #[test]
    fn merged_reports_are_bit_identical_at_1_2_4_threads(
        values in prop::collection::vec(value(), 1..200),
    ) {
        let serial = snapshot_of(&values);
        for threads in [1usize, 2, 4] {
            let hist = Arc::new(Histogram::new());
            let chunk = values.len().div_ceil(threads);
            let handles: Vec<_> = values
                .chunks(chunk)
                .map(|part| {
                    let hist = Arc::clone(&hist);
                    let part = part.to_vec();
                    std::thread::spawn(move || {
                        for v in part {
                            hist.record(v);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let snap = hist.snapshot();
            prop_assert_eq!(
                &snap, &serial,
                "report diverged at {} threads", threads
            );
        }
    }
}
