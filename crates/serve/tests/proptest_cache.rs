//! Property tests for the result cache: a cache hit must be **bit-identical**
//! to the direct library call at every pool width.
//!
//! The cache never compares payloads on probe — soundness rests on the
//! content-hash key and on version immutability — so these tests pin the
//! end-to-end consequence: evaluating twice through a cached batcher gives
//! exactly the bytes a direct `forward` / `lin_regions` call gives, whether
//! the answer came from the pool (cold) or from the cache (warm), at 1, 2,
//! and 4 threads.

use prdnn_core::DecoupledNetwork;
use prdnn_datasets::registry;
use prdnn_serve::batcher::{Batcher, Call, ReplyData};
use prdnn_serve::cache::ResultCache;
use prdnn_serve::store::ModelVersion;
use prdnn_serve::telemetry::Telemetry;
use proptest::prelude::*;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn version_of(spec: &str) -> Arc<ModelVersion> {
    let net = registry::build_model(spec).unwrap();
    Arc::new(ModelVersion::new(
        "m".to_owned(),
        1,
        DecoupledNetwork::from_network(&net),
        spec.to_owned(),
        None,
    ))
}

fn run(batcher: &Batcher, version: &Arc<ModelVersion>, call: Call) -> ReplyData {
    let deadline = Instant::now() + Duration::from_secs(60);
    let rx = batcher
        .submit(Arc::clone(version), call, deadline, 0)
        .unwrap();
    batcher.drain_once();
    rx.recv_timeout(Duration::from_secs(60))
        .expect("batcher answered")
        .expect("call succeeded")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn eval_hits_are_bit_identical_to_direct_forward_at_1_2_4_threads(
        seed in 0u64..10_000,
        xs in prop::collection::vec(
            prop::collection::vec(-4.0f64..4.0, 3), 1..5),
    ) {
        let spec = format!("mlp:{seed}:3x8x2");
        let net = registry::build_model(&spec).unwrap();
        let version = version_of(&spec);
        for threads in [1usize, 2, 4] {
            let pool = Arc::new(prdnn_par::pool_for(Some(threads)));
            let batcher =
                Batcher::new(pool, 64, Arc::new(ResultCache::new(1 << 20)), Telemetry::new(0));
            let cold = run(&batcher, &version, Call::Eval(xs.clone()));
            let warm = run(&batcher, &version, Call::Eval(xs.clone()));
            // The second call was answered from the cache, not the pool.
            prop_assert_eq!(
                batcher.counters.eval_batches.load(Ordering::Relaxed), 1,
                "warm eval ran on the pool at {} threads", threads
            );
            prop_assert_eq!(&cold, &warm);
            let ReplyData::Outputs(outputs) = &warm else {
                panic!("expected outputs")
            };
            for (x, y) in xs.iter().zip(outputs) {
                prop_assert_eq!(
                    y, &net.forward(x),
                    "cached eval differs from direct forward at {:?} ({} threads)",
                    x, threads
                );
            }
        }
    }

    #[test]
    fn lin_region_hits_are_bit_identical_to_direct_calls(
        seed in 0u64..10_000,
        lo in -3.0f64..0.0,
        len in 0.5f64..4.0,
        threads in prop_oneof![Just(1usize), Just(2), Just(4)],
    ) {
        let spec = format!("mlp:{seed}:1x6x1");
        let net = registry::build_model(&spec).unwrap();
        let version = version_of(&spec);
        let segment = vec![vec![lo], vec![lo + len]];
        let pool = Arc::new(prdnn_par::pool_for(Some(threads)));
        let batcher = Batcher::new(pool, 64, Arc::new(ResultCache::new(1 << 20)), Telemetry::new(0));
        let cold = run(&batcher, &version, Call::LinRegions(vec![segment.clone()]));
        let warm = run(&batcher, &version, Call::LinRegions(vec![segment.clone()]));
        prop_assert_eq!(
            batcher.counters.lin_batches.load(Ordering::Relaxed), 1,
            "warm lin_regions ran on the pool"
        );
        prop_assert_eq!(&cold, &warm);
        let ReplyData::Regions(regions) = &warm else {
            panic!("expected regions")
        };
        let direct = prdnn_syrenn::lin_regions(version.ddnn.activation_network(), &segment)
            .expect("direct lin_regions");
        prop_assert_eq!(regions.len(), 1);
        prop_assert_eq!(&regions[0], &direct);
        let _ = net;
    }
}
