//! Wire-level chaos tests: a real server behind a fault-injecting TCP
//! proxy ([`prdnn_serve::chaos::ChaosProxy`]), driven by the resilient
//! client ([`prdnn_serve::RetryingClient`]).
//!
//! The contract under chaos:
//!
//! * the server never crashes and never leaks a connection slot;
//! * every request that survives is answered **bit-identical** to the
//!   fault-free run;
//! * every failure a client observes is typed (`overloaded` with a
//!   `retry_after_ms` hint, `unavailable`, `deadline_exceeded`) or a
//!   client-side transport error — never a hang;
//! * storage faults fail publishes typed and acked versions recover
//!   bit-identical across a restart.

use prdnn_core::{OutputPolytope, PointSpec, RepairConfig};
use prdnn_datasets::registry;
use prdnn_serve::chaos::{ChaosConfig, ChaosProxy};
use prdnn_serve::client::{Client, ClientError};
use prdnn_serve::protocol::{
    embed_request_id, read_frame, request_id_of, ErrorKind, JobState, ModelRef, Request, Response,
};
use prdnn_serve::retry::{RetryPolicy, RetryingClient};
use prdnn_serve::server::{serve, ServerConfig, ServerHandle};
use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("prdnn-chaos-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn retry_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(100),
        jitter_per_mille: 200,
        seed,
    }
}

#[test]
fn server_survives_aggressive_wire_chaos_and_stays_bit_identical() {
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_connections: 8,
        // Reap connections the proxy stalled (dropped chunks) quickly so
        // their cap slots free within the test's lifetime.
        io_timeout_ms: 2_000,
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");

    // Setup over a clean connection: chaos tests the serving path, not the
    // fixture.
    let generator = "mlp:31:4x12x3";
    let net = registry::build_model(generator).unwrap();
    Client::connect(handle.addr())
        .unwrap()
        .load_generator("m", generator)
        .unwrap();

    // Aggressive chaos on every chunk class the proxy knows.
    let mut proxy = ChaosProxy::start(
        handle.addr(),
        ChaosConfig {
            seed: 11,
            sever_per_mille: 40,
            truncate_per_mille: 30,
            corrupt_per_mille: 60,
            drop_per_mille: 40,
            delay_per_mille: 200,
            max_delay_ms: 20,
        },
    )
    .unwrap();

    let mut client = RetryingClient::new(proxy.addr(), retry_policy(3), Duration::from_secs(1));
    let requests = 40;
    let mut successes = 0usize;
    for k in 0..requests {
        let inputs: Vec<Vec<f64>> = vec![(0..4).map(|i| (k * 4 + i) as f64 * 0.1 - 1.0).collect()];
        match client.eval(
            &ModelRef::latest("m"),
            &inputs,
            Some(5_000),
            Duration::from_secs(10),
        ) {
            Ok(outputs) => {
                successes += 1;
                // The survivor is bit-identical to the direct library call:
                // chaos may kill a request but never bend its answer.
                assert_eq!(outputs.len(), 1);
                assert_eq!(
                    outputs[0],
                    net.forward(&inputs[0]),
                    "chaos bent an answer at request {k}"
                );
            }
            // A failed request must be a typed rejection or a transport
            // error — ClientError is exactly that partition, and arriving
            // here at all means it did not hang.
            Err(ClientError::Server { kind, .. }) => {
                assert!(
                    matches!(
                        kind,
                        ErrorKind::Overloaded
                            | ErrorKind::Unavailable
                            | ErrorKind::DeadlineExceeded
                            | ErrorKind::BadRequest
                    ),
                    "unexpected server error kind {kind:?} at request {k}"
                );
            }
            Err(_) => {}
        }
    }
    let stats = client.stats;
    assert!(
        successes * 2 >= requests,
        "availability collapsed: {successes}/{requests} (retry stats {stats:?})"
    );
    assert!(
        proxy.counters().total_faults() > 0,
        "the chaos config never fired: {:?}",
        proxy.counters()
    );
    assert!(
        stats.retries > 0,
        "chaos heavy enough to fault must force retries: {stats:?}"
    );

    proxy.shutdown();
    drop(client);

    // No leaked connection slots: once the proxied connections die, the
    // full cap of 8 is available again to clean clients simultaneously.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut held: Vec<Client> = loop {
        let mut attempt = Vec::new();
        for _ in 0..8 {
            let mut c = Client::connect(handle.addr()).unwrap();
            if c.ping().is_ok() {
                attempt.push(c);
            } else {
                break;
            }
        }
        if attempt.len() == 8 {
            break attempt;
        }
        // A chaos-era connection still holds its slot; the io_timeout
        // reaps it shortly.
        assert!(
            std::time::Instant::now() < deadline,
            "connection slots leaked under chaos: only {} of 8 usable",
            attempt.len()
        );
        drop(attempt);
        std::thread::sleep(Duration::from_millis(100));
    };

    let mut closer = held.pop().unwrap();
    let server_stats = closer.stats().unwrap();
    assert_eq!(server_stats.open_connections, 8, "7 held + this client");
    assert!(server_stats.conns_opened > 8, "{server_stats:?}");
    closer.shutdown_server().unwrap();
    drop(held);
    handle.join().unwrap();
}

#[test]
fn slowloris_connections_are_reaped_and_free_their_slots() {
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_connections: 2,
        io_timeout_ms: 300,
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");

    // A classic slowloris: write half a frame header and stall.
    let mut slow = TcpStream::connect(handle.addr()).unwrap();
    slow.write_all(&[0u8, 0]).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // The server reaps us with a typed parting frame, then closes.
    let value = read_frame(&mut slow).expect("typed reap frame");
    match Response::from_value(&value).unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::DeadlineExceeded),
        other => panic!("expected deadline_exceeded, got {other:?}"),
    }
    drop(slow);

    // The reaped connection released its slot: the full cap is usable.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let (mut a, _b) = loop {
        let mut a = Client::connect(handle.addr()).unwrap();
        let mut b = Client::connect(handle.addr()).unwrap();
        if a.ping().is_ok() && b.ping().is_ok() {
            break (a, b);
        }
        assert!(
            std::time::Instant::now() < deadline,
            "slowloris leaked a connection slot"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    let stats = a.stats().unwrap();
    assert!(stats.io_timeouts >= 1, "reap not counted: {stats:?}");

    a.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn overload_rejections_carry_a_retry_after_hint() {
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_connections: 1,
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");

    let mut held = Client::connect(handle.addr()).unwrap();
    held.ping().unwrap();

    // Beyond the cap: a typed `overloaded` with an explicit backoff hint.
    let hinted = (0..100).find_map(|_| {
        let mut extra = TcpStream::connect(handle.addr()).ok()?;
        extra
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        match read_frame(&mut extra)
            .ok()
            .map(|v| Response::from_value(&v))
        {
            Some(Ok(Response::Error {
                kind: ErrorKind::Overloaded,
                retry_after_ms,
                ..
            })) => Some(retry_after_ms),
            _ => {
                std::thread::sleep(Duration::from_millis(5));
                None
            }
        }
    });
    let retry_after = hinted.expect("cap rejection never observed");
    assert!(
        retry_after.is_some_and(|ms| ms > 0),
        "overloaded rejection must carry retry_after_ms, got {retry_after:?}"
    );
    let stats = held.stats().unwrap();
    assert!(stats.conns_rejected >= 1, "{stats:?}");

    held.shutdown_server().unwrap();
    handle.join().unwrap();
}

fn equation_2_spec() -> PointSpec {
    let mut spec = PointSpec::new();
    spec.push(vec![0.5], OutputPolytope::scalar_interval(-1.0, -0.8));
    spec.push(vec![1.5], OutputPolytope::scalar_interval(-0.2, 0.0));
    spec
}

fn durable_server(dir: &Path, wal_fault_spec: Option<String>) -> ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        store_dir: Some(dir.to_owned()),
        snapshot_every: 4,
        wal_fault_spec,
        ..ServerConfig::default()
    })
    .expect("ephemeral bind")
}

#[test]
fn storage_faults_surface_unavailable_and_acked_versions_restart_exact() {
    let tmp = TempDir::new("walfault");

    // enospc@1: the very first publish (the load) fails — the client must
    // see a typed `unavailable`, and the immediate retry must succeed.
    {
        let handle = durable_server(tmp.path(), Some("seed=9,enospc@1".into()));
        let mut client = Client::connect(handle.addr()).unwrap();
        let err = client.load_generator("n1", "n1").unwrap_err();
        assert_eq!(err.kind(), Some(ErrorKind::Unavailable), "{err}");
        assert_eq!(client.load_generator("n1", "n1").unwrap(), 1);
        let stats = client.stats().unwrap();
        assert_eq!(stats.wal_failed_appends, 1);
        client.shutdown_server().unwrap();
        handle.join().unwrap();
    }

    // enospc@2 from a fresh op counter (recovery replay consumes no write
    // ops): the first repair's publish is write op 1 and lands as v2; the
    // second repair's publish is write op 2 and fails — the job reports
    // `failed` with the durability message, never a phantom version; the
    // third repair retries the number and publishes v3.
    let (acked, expected_network) = {
        let handle = durable_server(tmp.path(), Some("seed=9,enospc@2".into()));
        let mut client = Client::connect(handle.addr()).unwrap();
        assert_eq!(client.list_models().unwrap(), vec![("n1".into(), 1)]);

        let run_repair = |client: &mut Client| {
            let job = client
                .repair(
                    &ModelRef::latest("n1"),
                    0,
                    equation_2_spec(),
                    RepairConfig::default(),
                )
                .unwrap();
            client.wait_for_job(job, Duration::from_secs(60)).unwrap()
        };

        let state = run_repair(&mut client);
        assert!(
            matches!(state, JobState::Done { version: 2, .. }),
            "write op 1 is clean: {state:?}"
        );

        let state = run_repair(&mut client);
        let JobState::Failed { message } = state else {
            panic!("publish under enospc must fail the job, got {state:?}")
        };
        assert!(message.contains("publish not durable"), "{message}");
        assert_eq!(client.list_models().unwrap(), vec![("n1".into(), 2)]);

        let state = run_repair(&mut client);
        let JobState::Done { version, .. } = state else {
            panic!("retried repair must publish, got {state:?}")
        };
        assert_eq!(version, 3, "the failed publish's number is reused");
        assert_eq!(client.stats().unwrap().wal_failed_appends, 1);

        let acked = client.list_models().unwrap();
        let network = client.get_network(&ModelRef::version("n1", 3)).unwrap();
        client.shutdown_server().unwrap();
        handle.join().unwrap();
        (acked, network)
    };

    // Fault-free restart: exactly the acked versions, bit-identical.
    let handle = durable_server(tmp.path(), None);
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.list_models().unwrap(), acked);
    let recovered = client.get_network(&ModelRef::version("n1", 3)).unwrap();
    assert_eq!(
        recovered, expected_network,
        "acked version not bit-identical after restart"
    );
    client.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn chaos_delayed_request_surfaces_in_trace_with_its_full_span_chain() {
    // A request deliberately slowed on the wire (a delaying chaos proxy
    // plus a mid-frame stall) must cross --slow-ms and surface in `trace`
    // with its complete span chain under the client-chosen request_id.
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        slow_ms: 50,
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");
    Client::connect(handle.addr())
        .unwrap()
        .load_generator("n1", "n1")
        .unwrap();

    // Delay regime: every chunk through the proxy sleeps before it is
    // forwarded (no loss, no corruption — this test is about latency).
    let mut proxy = ChaosProxy::start(
        handle.addr(),
        ChaosConfig {
            seed: 0xD3_1A7,
            delay_per_mille: 1000,
            max_delay_ms: 20,
            ..ChaosConfig::default()
        },
    )
    .expect("proxy start");

    // Hand-rolled frame so the stall lands *mid-frame*: the server's
    // request clock starts at the first header byte, so the sleep between
    // the two halves is charged to server-side residence.
    let mut request = Request::Eval {
        model: ModelRef::latest("n1"),
        inputs: vec![vec![0.5]],
        deadline_ms: None,
    }
    .to_value();
    embed_request_id(&mut request, 4242);
    let body = request.to_json().into_bytes();
    let mut frame = (body.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(&body);
    let mut stream = TcpStream::connect(proxy.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let split = frame.len() / 2;
    stream.write_all(&frame[..split]).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(120));
    stream.write_all(&frame[split..]).unwrap();
    stream.flush().unwrap();
    let reply = read_frame(&mut stream).expect("slowed eval still answered");
    // The response echoes the client-chosen correlation id.
    assert_eq!(request_id_of(&reply), Some(4242));
    assert_eq!(reply.get("type").and_then(|v| v.as_str()), Some("outputs"));
    drop(stream);
    proxy.shutdown();

    // The slow-log (read over a clean connection) retains the request's
    // whole chain: the e2e request span plus the batcher stages it
    // crossed, each with a sane duration.
    let mut client = Client::connect(handle.addr()).unwrap();
    let slow = client.trace().unwrap();
    let traces = slow.as_arr().expect("trace returns an array");
    let entry = traces
        .iter()
        .find(|t| t.get("request_id").and_then(|v| v.as_f64()) == Some(4242.0))
        .unwrap_or_else(|| panic!("request 4242 missing from trace: {}", slow.to_json()));
    assert_eq!(entry.get("kind").and_then(|v| v.as_str()), Some("eval"));
    let total_ms = entry.get("total_ms").and_then(|v| v.as_f64()).unwrap();
    assert!(
        total_ms >= 100.0,
        "stall not charged to the server: {total_ms}ms"
    );
    let spans = entry.get("spans").and_then(|v| v.as_arr()).unwrap();
    let stages: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("stage").and_then(|v| v.as_str()))
        .collect();
    for want in ["request", "batch_queue", "batch_exec"] {
        assert!(
            stages.contains(&want),
            "span chain {stages:?} missing {want}"
        );
    }
    for span in spans {
        let dur = span.get("duration_ms").and_then(|v| v.as_f64()).unwrap();
        assert!((0.0..60_000.0).contains(&dur), "absurd span duration {dur}");
        assert!(span.get("outcome").and_then(|v| v.as_str()).is_some());
    }

    // The client helpers cover the same correlation plumbing.
    client.set_next_request_id(777);
    client.ping().unwrap();
    assert_eq!(client.last_request_id(), Some(777));
    client.ping().unwrap();
    let assigned = client.last_request_id().expect("server assigns an id");
    assert_ne!(assigned, 777, "one-shot id leaked into the next request");

    client.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn slow_ms_zero_disables_tracing_but_keeps_histograms() {
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        slow_ms: 0,
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load_generator("n1", "n1").unwrap();
    client
        .eval(&ModelRef::latest("n1"), vec![vec![0.5]], None)
        .unwrap();
    // Tracing off: nothing is ever promoted, however slow.
    let slow = client.trace().unwrap();
    assert_eq!(
        slow.as_arr().map(|a| a.len()),
        Some(0),
        "{}",
        slow.to_json()
    );
    // Histograms stay on: the eval recorded into its e2e family.
    let metrics = client.metrics().unwrap();
    assert!(
        metrics.contains("prdnn_request_seconds_count{kind=\"eval\"} 1"),
        "histograms must record with tracing disabled"
    );
    client.shutdown_server().unwrap();
    handle.join().unwrap();
}
