//! Property tests for [`RetryPolicy`]: the backoff schedule must respect
//! the caller's deadline budget no matter the policy parameters, and the
//! jitter must stay inside its configured envelope at every attempt count.

use prdnn_serve::RetryPolicy;
use proptest::prelude::*;
use std::time::Duration;

fn policies() -> impl Strategy<Value = RetryPolicy> {
    (1u32..12, 1u64..200, 1u64..2_000, 0u32..500, 0u64..u64::MAX).prop_map(
        |(max_attempts, base_ms, max_ms, jitter_per_mille, seed)| RetryPolicy {
            max_attempts,
            base_delay: Duration::from_millis(base_ms),
            // Ensure max >= base so the cap is meaningful.
            max_delay: Duration::from_millis(base_ms.max(max_ms)),
            jitter_per_mille,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn total_delay_never_exceeds_the_deadline_budget(
        policy in policies(),
        budget_ms in 0u64..10_000,
    ) {
        // Simulate a full retry loop: every sleep the policy hands out is
        // subtracted from the budget; their sum must never overshoot it.
        let budget = Duration::from_millis(budget_ms);
        let mut remaining = budget;
        let mut total = Duration::ZERO;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match policy.next_delay(attempt, remaining) {
                Some(delay) => {
                    prop_assert!(delay <= remaining, "delay {delay:?} > remaining {remaining:?}");
                    total += delay;
                    remaining = remaining.saturating_sub(delay);
                }
                None => break,
            }
            prop_assert!(attempt <= policy.max_attempts, "loop must terminate on attempts");
        }
        prop_assert!(total <= budget, "slept {total:?} of a {budget:?} budget");
        // Attempts exhausted or budget drained — either way the loop ended
        // within the policy's own bound.
        prop_assert!(attempt <= policy.max_attempts);
    }

    #[test]
    fn jitter_stays_inside_its_envelope_at_every_attempt_count(
        policy in policies(),
        attempt in 1u32..64,
    ) {
        let exp = policy
            .base_delay
            .saturating_mul(1u32.checked_shl(attempt - 1).unwrap_or(u32::MAX))
            .min(policy.max_delay);
        let j = u64::from(policy.jitter_per_mille.min(999));
        let lo = exp.saturating_mul((1000 - j) as u32) / 1000;
        let hi = exp.saturating_mul((1000 + j) as u32) / 1000;
        let d = policy.backoff(attempt);
        prop_assert!(d >= lo && d <= hi, "{d:?} outside [{lo:?}, {hi:?}] at attempt {attempt}");
        // Deterministic: the same policy yields the same schedule.
        prop_assert_eq!(d, policy.backoff(attempt));
    }

    #[test]
    fn next_delay_gives_up_exactly_when_it_should(
        policy in policies(),
        remaining_ms in 0u64..1_000,
    ) {
        let remaining = Duration::from_millis(remaining_ms);
        // At or past max_attempts: always None.
        prop_assert_eq!(policy.next_delay(policy.max_attempts, remaining), None);
        prop_assert_eq!(policy.next_delay(policy.max_attempts + 1, remaining), None);
        // With budget and attempts left: always Some, clamped.
        if policy.max_attempts > 1 && !remaining.is_zero() {
            let d = policy.next_delay(1, remaining);
            prop_assert!(d.is_some());
            prop_assert!(d.unwrap() <= remaining);
        }
        // Zero budget: never sleeps.
        prop_assert_eq!(policy.next_delay(1, Duration::ZERO), None);
    }
}
