//! End-to-end serving tests: a real server on an ephemeral port, real TCP
//! clients, eval → repair → eval-on-the-new-version, concurrency, abuse,
//! and graceful drain.
//!
//! The central claim is **serving adds nothing numerically**: every value
//! that crosses the wire is bit-identical to the equivalent direct library
//! call.

use prdnn_core::{repair_points, OutputPolytope, PointSpec, RepairConfig};
use prdnn_datasets::registry;
use prdnn_serve::client::Client;
use prdnn_serve::protocol::{
    read_frame, write_frame, ErrorKind, JobState, ModelRef, Request, Response,
};
use prdnn_serve::server::{serve, ServerConfig, ServerHandle};
use std::net::TcpStream;
use std::time::Duration;

fn start_server() -> ServerHandle {
    serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServerConfig::default()
    })
    .expect("ephemeral bind")
}

fn equation_2_spec() -> PointSpec {
    let mut spec = PointSpec::new();
    spec.push(vec![0.5], OutputPolytope::scalar_interval(-1.0, -0.8));
    spec.push(vec![1.5], OutputPolytope::scalar_interval(-0.2, 0.0));
    spec
}

#[test]
fn eval_repair_eval_on_new_version() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.ping().unwrap();
    assert_eq!(client.load_generator("n1", "n1").unwrap(), 1);

    // Eval v1: bit-identical to the direct forward pass.
    let n1 = registry::build_model("n1").unwrap();
    let xs: Vec<Vec<f64>> = vec![vec![-0.75], vec![0.25], vec![0.5], vec![1.5], vec![1.9]];
    let served = client
        .eval(&ModelRef::latest("n1"), xs.clone(), None)
        .unwrap();
    for (x, y) in xs.iter().zip(&served) {
        assert_eq!(y, &n1.forward(x), "serving changed an output at {x:?}");
    }

    // The spec is violated by v1 (that is the point of the repair).
    let spec = equation_2_spec();
    assert!(!spec.is_satisfied_by(|x| n1.forward(x), 1e-6));

    // Repair through the job queue.
    let job = client
        .repair(
            &ModelRef::latest("n1"),
            0,
            spec.clone(),
            RepairConfig::default(),
        )
        .unwrap();
    let state = client.wait_for_job(job, Duration::from_secs(60)).unwrap();
    let JobState::Done {
        model,
        version,
        delta_l1,
        delta_linf,
        ..
    } = state
    else {
        panic!("repair failed: {state:?}")
    };
    assert_eq!((model.as_str(), version), ("n1", 2));
    assert!(delta_l1 > 0.0 && delta_linf > 0.0);

    // The published version satisfies the spec over the wire…
    let repaired_served = client
        .eval(&ModelRef::version("n1", 2), spec.points.clone(), None)
        .unwrap();
    for (y, c) in repaired_served.iter().zip(&spec.constraints) {
        assert!(
            c.contains(y, 1e-6),
            "served repair violates the spec: {y:?}"
        );
    }
    // …and is bit-identical to the direct library repair.
    let direct = repair_points(&n1, 0, &spec, &RepairConfig::default()).unwrap();
    for (x, y) in spec.points.iter().zip(&repaired_served) {
        assert_eq!(
            y,
            &direct.repaired.forward(x),
            "wire repair differs at {x:?}"
        );
    }
    assert!((delta_l1 - direct.stats.delta_l1).abs() < 1e-12);

    // name@latest now resolves to v2; the pinned v1 is untouched.
    let latest = client
        .eval(&ModelRef::latest("n1"), xs.clone(), None)
        .unwrap();
    for (x, y) in xs.iter().zip(&latest) {
        assert_eq!(y, &direct.repaired.forward(x));
    }
    let pinned = client
        .eval(&ModelRef::version("n1", 1), xs.clone(), None)
        .unwrap();
    for (x, y) in xs.iter().zip(&pinned) {
        assert_eq!(y, &n1.forward(x));
    }

    // Provenance is recorded on the published version.
    let versions = client.list_versions("n1").unwrap();
    assert_eq!(versions.len(), 2);
    assert_eq!(versions[0].spec_hash, None);
    assert_eq!(
        versions[1].spec_hash.as_deref(),
        Some(format!("0x{:016x}", spec.content_hash()).as_str())
    );
    assert_eq!(versions[1].layer, Some(0));
    assert_eq!(versions[1].source, "repair of n1@v1");
    assert_eq!(client.list_models().unwrap(), vec![("n1".to_owned(), 2)]);

    // Linear regions of the repaired model: value repairs never move them
    // (Theorem 4.6), so v1 and v2 agree region for region.
    let segment = vec![vec![-1.0], vec![2.0]];
    let r1 = client
        .lin_regions(&ModelRef::version("n1", 1), vec![segment.clone()], None)
        .unwrap();
    let r2 = client
        .lin_regions(&ModelRef::version("n1", 2), vec![segment], None)
        .unwrap();
    assert_eq!(r1, r2);
    assert_eq!(r1[0].len(), 3, "N1 has three regions on [-1, 2]");

    client.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn concurrent_clients_get_batched_bit_identical_evals() {
    let handle = start_server();
    let generator = "mlp:31:4x12x3";
    let net = registry::build_model(generator).unwrap();
    Client::connect(handle.addr())
        .unwrap()
        .load_generator("m", generator)
        .unwrap();

    let clients = 8;
    let per_client = 6;
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let addr = handle.addr();
            let net = net.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let inputs: Vec<Vec<f64>> = (0..per_client)
                    .map(|k| {
                        (0..4)
                            .map(|i| ((c * per_client + k) * 4 + i) as f64 * 0.1 - 1.0)
                            .collect()
                    })
                    .collect();
                let outputs = client
                    .eval(&ModelRef::latest("m"), inputs.clone(), Some(30_000))
                    .unwrap();
                for (x, y) in inputs.iter().zip(&outputs) {
                    assert_eq!(y, &net.forward(x), "client {c} diverged at {x:?}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // Counter consistency: every request and every point went through the
    // batcher, and the batch count never exceeds the request count (it is
    // lower whenever coalescing merged concurrent requests).
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.eval_requests, clients as u64);
    assert_eq!(stats.eval_points, (clients * per_client) as u64);
    assert!(stats.eval_batches >= 1 && stats.eval_batches <= stats.eval_requests);

    client.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn result_cache_hits_are_bit_identical_and_repairs_never_serve_stale() {
    // Default config: the result cache is on.  Repeated evals must be
    // answered bit-identically from the cache, and publishing a repaired
    // version must never let `@latest` hit the parent's entries.
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load_generator("n1", "n1").unwrap();
    let n1 = registry::build_model("n1").unwrap();
    let xs: Vec<Vec<f64>> = vec![vec![-0.5], vec![0.25], vec![1.75]];

    let cold = client
        .eval(&ModelRef::latest("n1"), xs.clone(), None)
        .unwrap();
    let warm = client
        .eval(&ModelRef::latest("n1"), xs.clone(), None)
        .unwrap();
    assert_eq!(cold, warm, "a cache hit changed an output");
    for (x, y) in xs.iter().zip(&warm) {
        assert_eq!(y, &n1.forward(x));
    }
    let stats = client.stats().unwrap();
    assert!(stats.cache_inserts >= 1, "{stats:?}");
    assert!(stats.cache_hits >= 1, "second eval should hit: {stats:?}");
    assert!(stats.cache_bytes > 0, "{stats:?}");

    // Same for lin_regions.
    let segment = vec![vec![-1.0], vec![2.0]];
    let lin_cold = client
        .lin_regions(&ModelRef::latest("n1"), vec![segment.clone()], None)
        .unwrap();
    let lin_warm = client
        .lin_regions(&ModelRef::latest("n1"), vec![segment.clone()], None)
        .unwrap();
    assert_eq!(lin_cold, lin_warm);

    // Publish a repair; @latest now resolves to v2, whose outputs differ
    // from v1's on the repaired region — a stale hit would serve v1's.
    let spec = equation_2_spec();
    let job = client
        .repair(
            &ModelRef::latest("n1"),
            0,
            spec.clone(),
            RepairConfig::default(),
        )
        .unwrap();
    let state = client.wait_for_job(job, Duration::from_secs(60)).unwrap();
    assert!(
        matches!(state, JobState::Done { version: 2, .. }),
        "{state:?}"
    );

    let direct = repair_points(&n1, 0, &spec, &RepairConfig::default()).unwrap();
    let after = client
        .eval(&ModelRef::latest("n1"), xs.clone(), None)
        .unwrap();
    for (x, y) in xs.iter().zip(&after) {
        assert_eq!(
            y,
            &direct.repaired.forward(x),
            "eval after repair must come from v2, not v1's cache entry"
        );
    }
    // Value-only repairs share the parent's lin_regions entries (Theorem
    // 4.6): the v2 request is a hit, and bit-identical to v1's regions.
    let hits_before_lin = client.stats().unwrap().cache_hits;
    let lin_v2 = client
        .lin_regions(&ModelRef::latest("n1"), vec![segment], None)
        .unwrap();
    assert_eq!(lin_v2, lin_cold);
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_hits, hits_before_lin + 1, "{stats:?}");

    client.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn metrics_endpoint_renders_well_formed_prometheus_text() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load_generator("n1", "n1").unwrap();
    let xs = vec![vec![0.5], vec![1.5]];
    client
        .eval(&ModelRef::latest("n1"), xs.clone(), None)
        .unwrap();
    client.eval(&ModelRef::latest("n1"), xs, None).unwrap();

    let stats = client.stats().unwrap();
    let text = client.metrics().unwrap();
    // Every line is a HELP comment, a TYPE comment, or a
    // `prdnn_<name>[{labels}] <float>` sample; nothing else.  Counters
    // carry the `_total` suffix, gauges are bare, histograms contribute
    // `_bucket`/`_sum`/`_count` series.
    let mut samples = std::collections::HashMap::new();
    let mut types = std::collections::HashMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# ") {
            assert!(
                rest.starts_with("HELP prdnn_") || rest.starts_with("TYPE prdnn_"),
                "malformed comment line: {line:?}"
            );
            if let Some(typed) = rest.strip_prefix("TYPE ") {
                let (name, ty) = typed.split_once(' ').expect("TYPE line");
                assert!(
                    matches!(ty, "counter" | "gauge" | "histogram"),
                    "unknown metric type in {line:?}"
                );
                types.insert(name.to_owned(), ty.to_owned());
            }
            continue;
        }
        let (name, value) = line.split_once(' ').expect("sample line");
        assert!(name.starts_with("prdnn_"), "unprefixed metric {line:?}");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("unparseable sample in {line:?}");
        });
        assert!(value.is_finite(), "non-finite sample in {line:?}");
        samples.insert(name.to_owned(), value);
    }
    // Every family named by a sample has a TYPE (strip labels, then the
    // histogram series suffixes).
    for name in samples.keys() {
        let base = name.split('{').next().unwrap();
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| base.strip_suffix(s))
            .unwrap_or(base);
        assert!(
            types.contains_key(family) || types.contains_key(base),
            "sample {name:?} has no TYPE line"
        );
    }
    // The endpoint reports the same numbers as the stats request (counters
    // that cannot move between the two reads), `_total`-suffixed.
    assert_eq!(
        samples["prdnn_eval_requests_total"] as u64,
        stats.eval_requests
    );
    assert_eq!(samples["prdnn_eval_points_total"] as u64, stats.eval_points);
    assert_eq!(samples["prdnn_cache_hits_total"] as u64, stats.cache_hits);
    assert_eq!(
        samples["prdnn_cache_misses_total"] as u64,
        stats.cache_misses
    );
    assert!(
        samples["prdnn_cache_hits_total"] >= 1.0,
        "warm eval should hit"
    );
    assert!(samples.contains_key("prdnn_lp_pivots_total"));
    assert!(samples.contains_key("prdnn_deadline_expired_total"));
    assert!(samples.contains_key("prdnn_lin_rescue_calls_total"));
    // Point-in-time values export as bare-named gauges.
    assert_eq!(types["prdnn_open_connections"], "gauge");
    assert_eq!(types["prdnn_cache_bytes"], "gauge");
    assert_eq!(types["prdnn_cache_entries"], "gauge");
    assert_eq!(types["prdnn_repair_queue_depth"], "gauge");
    assert_eq!(types["prdnn_repair_in_flight"], "gauge");
    assert_eq!(samples["prdnn_open_connections"] as u64, 1);
    // Histogram families: at least the six stage boundaries, each with a
    // complete `+Inf` bucket / sum / count triple.
    let histograms: Vec<_> = types
        .iter()
        .filter(|(_, ty)| ty.as_str() == "histogram")
        .map(|(name, _)| name.clone())
        .collect();
    assert!(histograms.len() >= 6, "only {histograms:?}");
    for family in &histograms {
        assert!(
            samples
                .keys()
                .any(|k| k.starts_with(&format!("{family}_bucket")) && k.contains("le=\"+Inf\"")),
            "{family} has no +Inf bucket"
        );
        assert!(
            samples
                .keys()
                .any(|k| k.starts_with(&format!("{family}_sum"))),
            "{family} has no _sum"
        );
        assert!(
            samples
                .keys()
                .any(|k| k.starts_with(&format!("{family}_count"))),
            "{family} has no _count"
        );
    }
    // The e2e histogram count matches the request counter exactly: both
    // tick once per accepted eval.
    assert_eq!(
        samples["prdnn_request_seconds_count{kind=\"eval\"}"] as u64,
        stats.eval_requests
    );
    // Process info: a version-labeled constant and an uptime gauge.
    assert!(
        samples
            .keys()
            .any(|k| k.starts_with("prdnn_build_info{version=")),
        "missing build info"
    );
    assert!(samples["prdnn_uptime_seconds"] >= 0.0);

    client.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn shutdown_drains_queued_repairs_before_exiting() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.load_generator("n1", "n1").unwrap();
    let spec = equation_2_spec();
    let job = client
        .repair(
            &ModelRef::latest("n1"),
            0,
            spec.clone(),
            RepairConfig::default(),
        )
        .unwrap();
    // Trigger shutdown immediately: the accepted job must still run and
    // publish during the drain.
    client.shutdown_server().unwrap();
    let store = handle.store();
    handle.join().unwrap();

    let v2 = store
        .resolve(&ModelRef::version("n1", 2))
        .expect("queued repair must publish during drain");
    assert!(spec.is_satisfied_by(|x| v2.ddnn.forward(x), 1e-6));
    assert_eq!(
        v2.provenance.as_ref().unwrap().spec_hash,
        spec.content_hash()
    );
    let _ = job;
}

#[test]
fn typed_errors_and_protocol_abuse_over_real_sockets() {
    // Default config: the connection cap (tested separately) stays out of
    // the way of the framing checks.
    let handle = start_server();

    // Unknown models and versions are typed errors.
    let mut client = Client::connect(handle.addr()).unwrap();
    let err = client
        .eval(&ModelRef::latest("ghost"), vec![vec![0.0]], None)
        .unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::UnknownModel));
    client.load_generator("n1", "n1").unwrap();
    let err = client
        .eval(&ModelRef::version("n1", 9), vec![vec![0.0]], None)
        .unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::UnknownVersion));
    // Dimension mismatches are rejected before they reach the batcher.
    let err = client
        .eval(&ModelRef::latest("n1"), vec![vec![0.0, 1.0]], None)
        .unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::BadRequest));
    let err = client.load_generator("n1", "n1").unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::BadRequest), "duplicate load");
    let err = client.load_generator("x", "warp-drive").unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::BadRequest), "bad generator");
    // '@' is reserved for version references; such a name could never be
    // resolved again, so the load is rejected up front.
    let err = client.load_generator("m@v2", "n1").unwrap_err();
    assert_eq!(err.kind(), Some(ErrorKind::BadRequest), "name with '@'");

    // An oversized frame header is rejected and the connection closed.
    let mut abuser = TcpStream::connect(handle.addr()).unwrap();
    use std::io::Write as _;
    abuser.write_all(&u32::MAX.to_be_bytes()).unwrap();
    abuser.write_all(b"junk").unwrap();
    match read_frame(&mut abuser) {
        Ok(value) => {
            let response = Response::from_value(&value).unwrap();
            assert!(
                matches!(
                    response,
                    Response::Error {
                        kind: ErrorKind::BadRequest,
                        ..
                    }
                ),
                "{response:?}"
            );
        }
        Err(e) => panic!("expected an error response frame, got {e}"),
    }
    drop(abuser);

    // Garbage JSON gets a bad_request error frame.
    let mut garbler = TcpStream::connect(handle.addr()).unwrap();
    let body = b"this is not json";
    garbler
        .write_all(&(body.len() as u32).to_be_bytes())
        .unwrap();
    garbler.write_all(body).unwrap();
    let value = read_frame(&mut garbler).expect("error frame");
    assert!(matches!(
        Response::from_value(&value).unwrap(),
        Response::Error {
            kind: ErrorKind::BadRequest,
            ..
        }
    ));
    drop(garbler);

    client.shutdown_server().unwrap();
    handle.join().unwrap();
}

#[test]
fn connection_cap_admission_control() {
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_connections: 2,
        ..ServerConfig::default()
    })
    .expect("ephemeral bind");

    // Admission control: with both slots held, a further connection is
    // answered with `overloaded` and closed.  (Earlier connections may
    // still be releasing their slots, which only raises the count; a
    // rejected connection is never counted.)
    let held1 = Client::connect(handle.addr()).unwrap();
    let held2 = Client::connect(handle.addr()).unwrap();
    let overloaded = (0..100).find_map(|_| {
        let mut extra = TcpStream::connect(handle.addr()).ok()?;
        extra
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        match read_frame(&mut extra) {
            Ok(value) => match Response::from_value(&value).ok()? {
                Response::Error {
                    kind: ErrorKind::Overloaded,
                    ..
                } => Some(true),
                _ => None,
            },
            // A free slot means the server is waiting for our request;
            // the read times out — try again.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                None
            }
        }
    });
    assert_eq!(
        overloaded,
        Some(true),
        "connection beyond the cap should see `overloaded`"
    );
    drop(held1);
    drop(held2);

    // A raw shutdown request still gets its acknowledgement once a slot
    // frees up.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mut closer = TcpStream::connect(handle.addr()).unwrap();
        closer
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        if write_frame(&mut closer, &Request::Shutdown.to_value()).is_err() {
            continue;
        }
        match read_frame(&mut closer) {
            Ok(value) if Response::from_value(&value) == Ok(Response::ShuttingDown) => break,
            _ if std::time::Instant::now() > deadline => {
                panic!("shutdown request never acknowledged")
            }
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    handle.join().unwrap();
}
