//! Property tests for the wire protocol: encode↔decode round-trips over
//! randomly generated requests/responses, plus framing robustness
//! (truncated and oversized frames must be rejected, never mis-parsed).

use prdnn_core::{LpBackend, OutputPolytope, PointSpec, PricingRule, RepairConfig, RepairNorm};
use prdnn_linalg::Matrix;
use prdnn_serve::protocol::{
    read_frame, write_frame, ErrorKind, FrameError, JobState, ModelRef, RegionWire, Request,
    Response, ServerStats, VersionInfo, MAX_FRAME_LEN,
};
use proptest::prelude::*;
use proptest::strategy::Strategy;
use std::io::Cursor;

fn wire_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        Just(1.0 / 3.0),
        -1e6..1e6f64,
        -1e-6..1e-6f64,
    ]
}

fn name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("n1".to_owned()),
        Just("digits".to_owned()),
        Just("weird name \"quoted\" \\ slash\nnewline".to_owned()),
        Just("模型".to_owned()),
    ]
}

fn model_ref() -> impl Strategy<Value = ModelRef> {
    // Names must survive the textual `name@vN` form, so no '@' here.
    (0u32..5).prop_map(|v| {
        if v == 0 {
            ModelRef::latest("model-a")
        } else {
            ModelRef::version("model-a", v)
        }
    })
}

fn spec() -> impl Strategy<Value = PointSpec> {
    (1usize..4, 1usize..4, prop::collection::vec(wire_f64(), 24)).prop_map(
        |(num_points, dims, vals)| {
            let mut spec = PointSpec::new();
            let mut it = vals.into_iter().cycle();
            for _ in 0..num_points {
                let point: Vec<f64> = (0..dims).map(|_| it.next().unwrap()).collect();
                let faces = 2;
                let a = Matrix::from_flat(
                    faces,
                    dims,
                    (0..faces * dims).map(|_| it.next().unwrap()).collect(),
                );
                let b: Vec<f64> = (0..faces).map(|_| it.next().unwrap()).collect();
                spec.push(point, OutputPolytope::new(a, b));
            }
            spec
        },
    )
}

fn config() -> impl Strategy<Value = RepairConfig> {
    (0usize..2, 0usize..3, 0usize..3, 0usize..3, 1usize..1000).prop_map(
        |(norm, backend, pricing, bound, iters)| RepairConfig {
            norm: [RepairNorm::L1, RepairNorm::LInf][norm],
            param_bound: [None, Some(0.5), Some(1e3)][bound],
            max_lp_iterations: iters * 1000,
            lp_backend: [
                LpBackend::Auto,
                LpBackend::DenseTableau,
                LpBackend::RevisedSparse,
            ][backend],
            lp_pricing: [PricingRule::Auto, PricingRule::Dantzig, PricingRule::Devex][pricing],
            // Not on the wire: the server owns its pool.
            threads: None,
        },
    )
}

fn request() -> impl Strategy<Value = Request> {
    let eval =
        (model_ref(), 1usize..4, 0usize..5, 0u64..3).prop_map(|(model, dim, n, deadline)| {
            Request::Eval {
                model,
                inputs: (0..n)
                    .map(|k| {
                        (0..dim)
                            .map(|i| (k * dim + i) as f64 * 0.25 - 1.0)
                            .collect()
                    })
                    .collect(),
                deadline_ms: if deadline == 0 {
                    None
                } else {
                    Some(deadline * 100)
                },
            }
        });
    let lin =
        (model_ref(), 1usize..3, 2usize..5).prop_map(|(model, dim, verts)| Request::LinRegions {
            model,
            polytopes: vec![(0..verts)
                .map(|k| (0..dim).map(|i| (k + i) as f64 * 0.5).collect())
                .collect()],
            deadline_ms: None,
        });
    let repair =
        (model_ref(), 0usize..3, spec(), config()).prop_map(|(model, layer, spec, config)| {
            Request::Repair {
                model,
                layer,
                spec,
                config,
            }
        });
    prop_oneof![
        Just(Request::Ping),
        (name(), name()).prop_map(|(n, g)| Request::LoadGenerator {
            name: n,
            generator: g
        }),
        eval,
        lin,
        repair,
        (0u64..u64::from(u32::MAX)).prop_map(|job| Request::JobStatus { job }),
        model_ref().prop_map(|model| Request::GetNetwork { model }),
        Just(Request::ListModels),
        name().prop_map(|n| Request::ListVersions { name: n }),
        Just(Request::Stats),
        Just(Request::Shutdown),
    ]
}

fn response() -> impl Strategy<Value = Response> {
    let outputs = (0usize..4, 1usize..4).prop_map(|(n, dim)| {
        Response::Outputs(
            (0..n)
                .map(|k| (0..dim).map(|i| (k + i) as f64 * 0.125 - 0.5).collect())
                .collect(),
        )
    });
    let regions = (1usize..3, 1usize..3).prop_map(|(polys, regions)| {
        Response::Regions(
            (0..polys)
                .map(|p| {
                    (0..regions)
                        .map(|r| RegionWire {
                            vertices: vec![vec![p as f64, r as f64], vec![r as f64, 1.5]],
                            interior: vec![p as f64 + 0.5, r as f64 - 0.25],
                        })
                        .collect()
                })
                .collect(),
        )
    });
    let job = prop_oneof![
        Just(JobState::Queued),
        Just(JobState::Running),
        (name(), 1u32..9, wire_f64(), wire_f64()).prop_map(|(model, version, l1, linf)| {
            JobState::Done {
                model,
                version,
                delta_l1: l1.abs(),
                delta_linf: linf.abs(),
                lp_pivots: version as u64 * 17,
                lp_refactorizations: version as u64 / 2,
            }
        }),
        name().prop_map(|message| JobState::Failed { message }),
    ]
    .prop_map(Response::Job);
    let versions = (1u32..4, 0usize..3).prop_map(|(n, with_prov)| {
        Response::Versions(
            (1..=n)
                .map(|v| VersionInfo {
                    version: v,
                    source: format!("source-{v}"),
                    spec_hash: (with_prov > 0).then(|| format!("0x{:016x}", u64::MAX - v as u64)),
                    delta_l1: (with_prov > 0).then_some(v as f64 * 0.5),
                    delta_linf: (with_prov > 1).then_some(v as f64 * 0.25),
                    layer: (with_prov > 1).then_some(v as usize),
                })
                .collect(),
        )
    });
    let network = (name(), 1u32..9, 0usize..2, wire_f64()).prop_map(|(n, v, with_prov, w)| {
        // Real network/provenance documents ride this response; arbitrary
        // JSON values stand in for them here — the codec must pass them
        // through untouched.
        let channel = |tag: f64| {
            serde::json::Value::obj([
                ("layers", serde::json::Value::num_array(&[w, tag, -w])),
                ("kind", serde::json::Value::Str(format!("stub-{n}"))),
            ])
        };
        Response::Network {
            name: n.clone(),
            version: v,
            source: format!("source-{v}"),
            activation: channel(1.0),
            value: channel(2.0),
            provenance: (with_prov > 0).then(|| {
                serde::json::Value::obj([("spec_hash", serde::json::Value::Str("0xdead".into()))])
            }),
        }
    });
    let error = (
        0usize..9,
        name(),
        prop_oneof![Just(None), (0u64..5000).prop_map(Some)],
    )
        .prop_map(|(k, message, retry_after_ms)| Response::Error {
            kind: [
                ErrorKind::UnknownModel,
                ErrorKind::UnknownVersion,
                ErrorKind::UnknownJob,
                ErrorKind::BadRequest,
                ErrorKind::Overloaded,
                ErrorKind::DeadlineExceeded,
                ErrorKind::ShuttingDown,
                ErrorKind::Unavailable,
                ErrorKind::Internal,
            ][k],
            message,
            retry_after_ms,
        });
    prop_oneof![
        Just(Response::Pong),
        (name(), 1u32..9).prop_map(|(n, v)| Response::Loaded {
            name: n,
            version: v
        }),
        outputs,
        regions,
        (1u64..1_000_000).prop_map(|job| Response::JobQueued { job }),
        job,
        (name(), 1u32..9).prop_map(|(n, v)| Response::Models(vec![(n, v)])),
        versions,
        (0u64..100, 0u64..100).prop_map(|(a, b)| Response::Stats(ServerStats {
            eval_requests: a,
            eval_batches: b,
            eval_points: a * 3,
            lin_requests: b,
            lin_batches: a.min(b),
            lin_polytopes: a + b,
            gulps: a.max(b),
            gulp_items: a + 2 * b,
            max_gulp: b + 1,
            jobs_submitted: a / 2,
            jobs_completed: a / 3,
            jobs_failed: a / 7,
            repair_queue_depth: b % 5,
            repair_in_flight: a % 3,
            wal_appends: a + b,
            wal_bytes: a * 1000 + b,
            snapshots: b / 5,
            recovered_versions: a / 4,
            recovered_wal_records: a / 8,
            torn_tail_bytes: b * 13,
            wal_failed_appends: a / 9,
            conns_opened: a + 5 * b,
            conns_rejected: b / 3,
            open_connections: a.min(7),
            io_timeouts: b / 11,
            batch_shed: a / 6,
            jobs_shed: b / 7,
            cache_hits: a * 2,
            cache_misses: b * 2,
            cache_inserts: a + 1,
            cache_evictions: b / 2,
            cache_fill_skips: a / 5,
            cache_bytes: a * 100 + b,
            cache_entries: a % 50,
            deadline_expired: b / 4,
            lin_rescue_calls: a / 10,
            lp_pivots: a * 19,
            lp_refactorizations: b / 6,
        })),
        network,
        Just(Response::ShuttingDown),
        error,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn requests_round_trip_through_frames(request in request()) {
        let value = request.to_value();
        let mut buf = Vec::new();
        write_frame(&mut buf, &value).unwrap();
        let read = read_frame(&mut Cursor::new(&buf)).unwrap();
        let decoded = Request::from_value(&read).unwrap();
        prop_assert_eq!(decoded, request);
    }

    #[test]
    fn responses_round_trip_through_frames(response in response()) {
        let value = response.to_value();
        let mut buf = Vec::new();
        write_frame(&mut buf, &value).unwrap();
        let read = read_frame(&mut Cursor::new(&buf)).unwrap();
        let decoded = Response::from_value(&read).unwrap();
        prop_assert_eq!(decoded, response);
    }

    #[test]
    fn truncated_frames_are_rejected(request in request(), cut in 0usize..1000) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &request.to_value()).unwrap();
        prop_assume!(cut < buf.len());
        let truncated = &buf[..cut];
        match read_frame(&mut Cursor::new(truncated)) {
            Err(FrameError::Closed) => prop_assert_eq!(cut, 0, "only an unstarted frame is a clean close"),
            Err(FrameError::Io(_)) => prop_assert!(cut > 0),
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
            Ok(_) => prop_assert!(false, "truncated frame parsed"),
        }
    }

    #[test]
    fn corrupt_payloads_never_panic(request in request(), flip in 4usize..600) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &request.to_value()).unwrap();
        prop_assume!(flip < buf.len());
        buf[flip] ^= 0x3f;
        // Any outcome is fine except a panic or a hang; decoding errors are
        // the common case.
        if let Ok(value) = read_frame(&mut Cursor::new(&buf)) {
            let _ = Request::from_value(&value);
        }
    }
}

#[test]
fn oversized_header_is_rejected_without_reading_the_body() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&u32::MAX.to_be_bytes());
    // No body at all: the header alone must trigger rejection.
    match read_frame(&mut Cursor::new(&bytes)) {
        Err(FrameError::Oversized(len)) => assert_eq!(len, u32::MAX as usize),
        other => panic!("expected Oversized, got {other:?}"),
    }
    assert!(MAX_FRAME_LEN < u32::MAX as usize);
}
