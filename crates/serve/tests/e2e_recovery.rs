//! Crash-recovery end-to-end tests: the durability contract is that an
//! **acknowledged** publish survives anything up to and including
//! `SIGKILL`.  The headline test runs the real `prdnn-serve` binary with
//! `--store-dir`, drives a repair burst over TCP, kills the process with
//! no warning mid-burst, restarts it on the same directory, and checks
//! that every version acknowledged before the kill resolves with
//! **bit-identical** weights and provenance.  A second, in-process test
//! exercises the graceful path across a snapshot boundary so recovery
//! replays snapshot *and* WAL tail.

use prdnn_core::{OutputPolytope, PointSpec, RepairConfig};
use prdnn_serve::client::Client;
use prdnn_serve::protocol::{JobState, ModelRef, Response, VersionInfo};
use prdnn_serve::server::{serve, ServerConfig};
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

/// Self-cleaning scratch directory (no tempfile dependency).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let path = std::env::temp_dir().join(format!(
            "prdnn-e2e-recovery-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A spawned `prdnn-serve` child that is SIGKILLed on drop, so a failing
/// assertion never leaks a listener.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Starts the real binary on an ephemeral port with a durable store,
    /// and parses the bound address from its stderr.
    fn start(store_dir: &std::path::Path, snapshot_every: u64) -> Server {
        Server::start_with_args(store_dir, snapshot_every, &[])
    }

    /// Like [`Server::start`] with extra flags appended — e.g.
    /// `--fault-wal` for the crash test over faulty storage.
    fn start_with_args(store_dir: &std::path::Path, snapshot_every: u64, extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_prdnn-serve"))
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--store-dir")
            .arg(store_dir)
            .arg("--snapshot-every")
            .arg(snapshot_every.to_string())
            .arg("--preload")
            .arg("n1=n1")
            .args(extra)
            .stderr(Stdio::piped())
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn prdnn-serve");
        let stderr = child.stderr.take().unwrap();
        let mut lines = BufReader::new(stderr).lines();
        let mut addr = None;
        for line in lines.by_ref() {
            let line = line.expect("read child stderr");
            if let Some(rest) = line.strip_prefix("prdnn-serve: listening on ") {
                addr = Some(rest.trim().to_owned());
                break;
            }
        }
        let addr = addr.expect("child exited before reporting its address");
        // Keep draining stderr so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Server { child, addr }
    }

    fn connect(&self) -> Client {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match Client::connect(&self.addr) {
                Ok(client) => return client,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10))
                }
                Err(e) => panic!("could not connect to {}: {e}", self.addr),
            }
        }
    }

    /// SIGKILL — no drain, no flush, no goodbye.
    fn kill(mut self) {
        self.child.kill().expect("kill child");
        self.child.wait().expect("reap child");
        // Consume without running Drop's second kill.
        std::mem::forget(self);
    }

    /// Graceful stop via the protocol; waits for the process to exit.
    fn shutdown(mut self, client: &mut Client) {
        client.shutdown_server().expect("shutdown request");
        let status = self.child.wait().expect("reap child");
        assert!(status.success(), "server exited with {status:?}");
        std::mem::forget(self);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Two alternating point specs so every repair in the burst has real work
/// to do (each undoes the other's constraint).
fn burst_spec(i: usize) -> PointSpec {
    let mut spec = PointSpec::new();
    if i.is_multiple_of(2) {
        spec.push(vec![0.5], OutputPolytope::scalar_interval(-1.0, -0.8));
        spec.push(vec![1.5], OutputPolytope::scalar_interval(-0.2, 0.0));
    } else {
        spec.push(vec![0.5], OutputPolytope::scalar_interval(0.1, 0.3));
        spec.push(vec![1.5], OutputPolytope::scalar_interval(0.4, 0.6));
    }
    spec
}

/// Everything the client observed at ack time for one version; after the
/// kill + restart, the same queries must produce identical answers.
struct Acked {
    version: u32,
    network: Response,
    info: VersionInfo,
}

/// The binary reports its address before `--preload` runs; wait until the
/// model is actually in the store.
fn wait_for_preload(client: &mut Client, name: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if client.list_models().unwrap().iter().any(|(n, _)| n == name) {
            return;
        }
        assert!(Instant::now() < deadline, "{name} never preloaded");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn record_ack(client: &mut Client, name: &str, version: u32) -> Acked {
    let network = client
        .get_network(&ModelRef::version(name, version))
        .expect("get_network at ack time");
    let info = client
        .list_versions(name)
        .expect("list_versions at ack time")
        .into_iter()
        .find(|v| v.version == version)
        .expect("acked version listed");
    Acked {
        version,
        network,
        info,
    }
}

#[test]
fn sigkill_mid_burst_loses_nothing_acknowledged() {
    let dir = TempDir::new("sigkill");
    let server = Server::start(&dir.0, 3);
    let mut client = server.connect();
    client.ping().unwrap();
    wait_for_preload(&mut client, "n1");

    // v1 is the preload; record it like any other ack.
    let mut acked = vec![record_ack(&mut client, "n1", 1)];

    // Acknowledged burst: repair, wait for `done`, record the full
    // served state of the new version.
    for i in 0..5 {
        let job = client
            .repair(
                &ModelRef::latest("n1"),
                0,
                burst_spec(i),
                RepairConfig::default(),
            )
            .expect("enqueue repair");
        match client.wait_for_job(job, Duration::from_secs(60)).unwrap() {
            JobState::Done { version, .. } => {
                acked.push(record_ack(&mut client, "n1", version));
            }
            other => panic!("repair {i} did not complete: {other:?}"),
        }
    }
    let max_acked = acked.iter().map(|a| a.version).max().unwrap();
    assert!(
        max_acked >= 6,
        "burst published fewer versions than expected"
    );

    // Un-acknowledged tail: enqueue more repairs and SIGKILL while they
    // are (possibly) in flight.  These carry no promise either way.
    for i in 5..8 {
        let _ = client.repair(
            &ModelRef::latest("n1"),
            0,
            burst_spec(i),
            RepairConfig::default(),
        );
    }
    server.kill();

    // Restart on the same directory — the identical command line must
    // work (the preload finds n1 recovered and skips itself).
    let server = Server::start(&dir.0, 3);
    let mut client = server.connect();

    // The model is back, and nothing acknowledged was lost.  (In-flight
    // repairs may or may not have persisted, so `latest` is a floor.)
    let models = client.list_models().unwrap();
    let (_, latest) = models
        .iter()
        .find(|(name, _)| name == "n1")
        .expect("n1 recovered");
    assert!(
        *latest >= max_acked,
        "latest {latest} < last acknowledged version {max_acked}"
    );

    // Every acknowledged version: bit-identical weights and provenance.
    // `Response::Network` carries both channels as shortest-round-trip
    // JSON documents, so `==` here means every `f64` matches bit for bit.
    for ack in &acked {
        let network = client
            .get_network(&ModelRef::version("n1", ack.version))
            .expect("acknowledged version resolves after restart");
        assert_eq!(
            network, ack.network,
            "n1@v{} changed across the crash",
            ack.version
        );
    }
    let versions = client.list_versions("n1").unwrap();
    for ack in &acked {
        let info = versions
            .iter()
            .find(|v| v.version == ack.version)
            .expect("acked version listed after restart");
        assert_eq!(
            info, &ack.info,
            "provenance of n1@v{} changed across the crash",
            ack.version
        );
    }

    server.shutdown(&mut client);
}

#[test]
fn sigkill_over_faulty_storage_still_loses_nothing_acknowledged() {
    let dir = TempDir::new("sigkill-faults");

    // A deterministic fail-on-Nth-op schedule.  The preload is the first
    // WAL append (write op 1 + fsync op 1), so it lands clean; then the
    // burst below sees exactly three injected failures: write op 2
    // (ENOSPC), fsync op 4, and write op 5 (short write).  Note that
    // healing a failed tail consumes one fsync op itself, so fsync op 4
    // is reached on the *second* publish after the ENOSPC.  Snapshots
    // are disabled so the op numbering stays this simple.
    let spec = "seed=42,enospc@2,short@5,fsync@4";
    let server = Server::start_with_args(&dir.0, 0, &["--fault-wal", spec]);
    let mut client = server.connect();
    wait_for_preload(&mut client, "n1");

    let mut acked = vec![record_ack(&mut client, "n1", 1)];
    let mut failures = Vec::new();
    for i in 0..6 {
        let job = client
            .repair(
                &ModelRef::latest("n1"),
                0,
                burst_spec(i),
                RepairConfig::default(),
            )
            .expect("enqueue repair");
        match client.wait_for_job(job, Duration::from_secs(60)).unwrap() {
            JobState::Done { version, .. } => {
                acked.push(record_ack(&mut client, "n1", version));
            }
            JobState::Failed { message } => {
                assert!(
                    message.contains("publish not durable"),
                    "repair {i} failed for a non-storage reason: {message}"
                );
                failures.push(i);
            }
            other => panic!("repair {i} ended in {other:?}"),
        }
    }
    // The schedule is deterministic: attempts 0, 2, 3 hit the injected
    // faults, and the retried version numbers are reused, not burned.
    assert_eq!(failures, vec![0, 2, 3]);
    let versions: Vec<u32> = acked.iter().map(|a| a.version).collect();
    assert_eq!(versions, vec![1, 2, 3, 4]);

    // Un-acknowledged tail in flight, then SIGKILL — the worst case:
    // injected faults *and* a crash with no flush.
    for i in 0..2 {
        let _ = client.repair(
            &ModelRef::latest("n1"),
            0,
            burst_spec(i),
            RepairConfig::default(),
        );
    }
    server.kill();

    // Fault-free restart on the same directory: every acknowledged
    // version is back, bit-identical, and the store is live.
    let server = Server::start(&dir.0, 0);
    let mut client = server.connect();
    let models = client.list_models().unwrap();
    let (_, latest) = models
        .iter()
        .find(|(name, _)| name == "n1")
        .expect("n1 recovered");
    assert!(
        *latest >= 4,
        "latest {latest} < last acknowledged version 4"
    );
    for ack in &acked {
        let network = client
            .get_network(&ModelRef::version("n1", ack.version))
            .expect("acknowledged version resolves after restart");
        assert_eq!(
            network, ack.network,
            "n1@v{} changed across the faulty-storage crash",
            ack.version
        );
        let info = client
            .list_versions("n1")
            .unwrap()
            .into_iter()
            .find(|v| v.version == ack.version)
            .expect("acked version listed after restart");
        assert_eq!(info, ack.info, "provenance of n1@v{} drifted", ack.version);
    }

    // Live, not read-only: one more publish on top of the recovery.
    let job = client
        .repair(
            &ModelRef::latest("n1"),
            0,
            burst_spec(1),
            RepairConfig::default(),
        )
        .unwrap();
    match client.wait_for_job(job, Duration::from_secs(60)).unwrap() {
        JobState::Done { version, .. } => assert!(version > *latest),
        other => panic!("post-recovery repair failed: {other:?}"),
    }
    server.shutdown(&mut client);
}

#[test]
fn graceful_restart_replays_snapshot_plus_wal_tail() {
    let dir = TempDir::new("graceful");

    // First life: two models, enough publishes to cross the snapshot
    // threshold so the second life replays snapshot *and* WAL tail.
    let mut acked = Vec::new();
    {
        let handle = serve(ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            store_dir: Some(dir.0.clone()),
            snapshot_every: 2,
            ..ServerConfig::default()
        })
        .expect("bind first life");
        let mut client = Client::connect(handle.addr()).unwrap();
        client.load_generator("n1", "n1").unwrap();
        client.load_generator("mlp", "mlp:7:2x4x2").unwrap();
        for i in 0..3 {
            let job = client
                .repair(
                    &ModelRef::latest("n1"),
                    0,
                    burst_spec(i),
                    RepairConfig::default(),
                )
                .unwrap();
            let state = client.wait_for_job(job, Duration::from_secs(60)).unwrap();
            assert!(matches!(state, JobState::Done { .. }), "repair {i} failed");
        }
        let stats = client.stats().unwrap();
        assert_eq!(stats.wal_appends, 5, "2 loads + 3 repairs hit the WAL");
        assert!(stats.snapshots >= 1, "snapshot threshold never crossed");
        assert_eq!(stats.recovered_versions, 0, "first life recovered nothing");
        for v in 1..=4u32 {
            acked.push(record_ack(&mut client, "n1", v));
        }
        acked.push(record_ack(&mut client, "mlp", 1));
        client.shutdown_server().unwrap();
        handle.join().expect("drain first life");
    }

    // Second life: recovery happens before the listener accepts anyone.
    let handle = serve(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        store_dir: Some(dir.0.clone()),
        snapshot_every: 2,
        ..ServerConfig::default()
    })
    .expect("bind second life");
    let mut client = Client::connect(handle.addr()).unwrap();

    let stats = client.stats().unwrap();
    assert_eq!(stats.recovered_versions, 5, "4×n1 + 1×mlp recovered");
    assert!(
        stats.recovered_wal_records < 5,
        "a snapshot should have absorbed part of the log"
    );
    assert_eq!(stats.torn_tail_bytes, 0, "graceful shutdown leaves no tear");

    let mut models = client.list_models().unwrap();
    models.sort();
    assert_eq!(models, vec![("mlp".to_owned(), 1), ("n1".to_owned(), 4)]);
    for ack in &acked {
        let name = match &ack.network {
            Response::Network { name, .. } => name.clone(),
            other => panic!("recorded non-network response {other:?}"),
        };
        let network = client
            .get_network(&ModelRef::version(&name, ack.version))
            .unwrap();
        assert_eq!(network, ack.network, "{name}@v{} drifted", ack.version);
    }

    // The recovered store is live, not read-only: publish on top of it.
    let job = client
        .repair(
            &ModelRef::latest("n1"),
            0,
            burst_spec(1),
            RepairConfig::default(),
        )
        .unwrap();
    match client.wait_for_job(job, Duration::from_secs(60)).unwrap() {
        JobState::Done { version, .. } => assert_eq!(version, 5),
        other => panic!("post-recovery repair failed: {other:?}"),
    }

    client.shutdown_server().unwrap();
    handle.join().expect("drain second life");
}
