//! Property tests for the WAL under injected I/O fault schedules.
//!
//! The durability contract under any storage fault (fsync failure, short
//! write, ENOSPC) at any point in a publish sequence:
//!
//! * a failed publish surfaces a typed [`StoreError::Durability`] and
//!   leaves the store exactly as it was (the head never swaps);
//! * every **acknowledged** publish is recoverable bit-identical by a
//!   fault-free reopen — no acked version lost, no phantom version gained;
//! * fault schedules are deterministic: the same spec over the same
//!   publish sequence fails the same attempts.

use prdnn_core::{DecoupledNetwork, RepairConfig, RepairProvenance};
use prdnn_datasets::registry;
use prdnn_serve::faults::FaultInjector;
use prdnn_serve::store::{ModelStore, StoreError};
use prdnn_serve::version_log::VersionLog;
use prdnn_serve::wal::{record_to_json, WalLog};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("prdnn-walfault-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn ddnn() -> DecoupledNetwork {
    DecoupledNetwork::from_network(&registry::build_model("n1").unwrap())
}

fn provenance(i: usize) -> RepairProvenance {
    RepairProvenance {
        spec_hash: 0x5eed_0000 + i as u64,
        config: RepairConfig::default(),
        layer: i % 2,
        num_key_points: 2,
        delta_l1: 0.5 + i as f64,
        delta_linf: 0.25,
        lp_pivots: i as u64,
        lp_refactorizations: 0,
    }
}

/// Every stored version's record document, in deterministic order.
fn docs(store: &ModelStore) -> Vec<String> {
    store
        .list()
        .iter()
        .flat_map(|(name, _)| store.versions(name).unwrap())
        .map(|v| record_to_json(&v, None).to_json())
        .collect()
}

/// Runs `publishes` attempts against a faulty store in `dir`.  Returns the
/// per-attempt outcomes (true = acked) and the acked record documents.
fn run_schedule(
    dir: &Path,
    spec: &str,
    snapshot_every: u64,
    publishes: usize,
) -> (Vec<bool>, Vec<String>) {
    let faults = FaultInjector::parse(spec).unwrap();
    let log = Arc::new(WalLog::open_with_faults(dir, snapshot_every, faults).unwrap());
    let store = ModelStore::with_log(Arc::clone(&log) as Arc<dyn VersionLog>);

    // The initial load is subject to faults too; retry until it lands so
    // every schedule exercises the repair path.
    let mut attempts = 0;
    while let Err(e) = store.load("m", ddnn(), "n1".into()) {
        assert!(matches!(e, StoreError::Durability(_)), "{e:?}");
        attempts += 1;
        assert!(attempts < 10_000, "load never survived schedule {spec:?}");
    }

    let mut outcomes = Vec::with_capacity(publishes);
    for i in 0..publishes {
        let before = docs(&store);
        match store.publish_repair("m", ddnn(), format!("repair {i}"), provenance(i)) {
            Ok(v) => {
                outcomes.push(true);
                assert_eq!(v.version as usize, before.len() + 1);
            }
            Err(e) => {
                outcomes.push(false);
                // Typed, and the store is untouched: same versions, and the
                // failed attempt left no phantom behind.
                assert!(matches!(e, StoreError::Durability(_)), "{e:?}");
                assert_eq!(docs(&store), before, "failed publish mutated the store");
            }
        }
    }
    (outcomes, docs(&store))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn acked_publishes_survive_any_fault_schedule(
        seed in 0u64..1_000_000,
        fsync in 0u32..350,
        short in 0u32..350,
        enospc in 0u32..350,
        snapshot_every in prop_oneof![Just(0u64), Just(2u64), Just(3u64), Just(7u64)],
        publishes in 4usize..16,
    ) {
        let spec = format!("seed={seed},fsync={fsync},short={short},enospc={enospc}");
        let tmp = TempDir::new("sched");
        let (outcomes, acked) = run_schedule(tmp.path(), &spec, snapshot_every, publishes);

        // A fault-free reopen recovers exactly the acked versions,
        // bit-identical — nothing lost, nothing phantom.
        let log = Arc::new(WalLog::open(tmp.path(), snapshot_every).unwrap());
        let recovered_store = ModelStore::with_log(Arc::clone(&log) as Arc<dyn VersionLog>);
        prop_assert_eq!(&docs(&recovered_store), &acked);
        // Failed appends never leave garbage for recovery to trip over:
        // the tail is healed at publish time, not at reopen.
        prop_assert_eq!(log.recovery_report().torn_tail_bytes, 0);

        // Determinism: the same schedule over a fresh directory fails the
        // same attempts and acks the same documents.
        let tmp2 = TempDir::new("replay");
        let (outcomes2, acked2) = run_schedule(tmp2.path(), &spec, snapshot_every, publishes);
        prop_assert_eq!(outcomes, outcomes2);
        prop_assert_eq!(acked, acked2);
    }

    #[test]
    fn store_stays_live_after_a_burst_of_guaranteed_failures(
        seed in 0u64..1_000_000,
        kind in 0usize..3,
    ) {
        // Deterministic worst case: every write (or fsync) fails for the
        // first 5 operations of its kind, then the trigger goes quiet.
        let kinds = ["fsync", "short", "enospc"];
        let spec = format!(
            "seed={seed},{}",
            (1..=5).map(|n| format!("{}@{n}", kinds[kind])).collect::<Vec<_>>().join(",")
        );
        let tmp = TempDir::new("burst");
        let (outcomes, acked) = run_schedule(tmp.path(), &spec, 0, 8);
        // After the burst the store must accept publishes again.
        prop_assert!(outcomes.iter().filter(|&&ok| ok).count() >= 3);
        let log = Arc::new(WalLog::open(tmp.path(), 0).unwrap());
        let recovered = ModelStore::with_log(Arc::clone(&log) as Arc<dyn VersionLog>);
        prop_assert_eq!(&docs(&recovered), &acked);
    }
}
