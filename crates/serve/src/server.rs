//! The multi-threaded TCP server.
//!
//! One accept loop, one handler thread per connection, one batch worker,
//! and a configurable number of repair workers, all sharing a single
//! `prdnn-par` pool — the same pool the library hot paths use, so server
//! parallelism and kernel parallelism do not fight over cores.
//!
//! Admission control:
//!
//! * at most [`ServerConfig::max_connections`] concurrent connections
//!   (excess connections get an `overloaded` error frame and are closed);
//! * the batch queue and repair FIFO are bounded ([`ServerConfig`] caps);
//! * every `eval`/`lin_regions` request carries a deadline (client-supplied
//!   or [`ServerConfig::default_deadline_ms`]) enforced both while queued
//!   and while the handler waits for its reply.
//!
//! Shutdown (a `shutdown` request or [`ServerHandle::shutdown`]) is a
//! graceful drain: the accept loop stops, queued batches and repairs run
//! to completion (repairs still publish their versions), and only then are
//! lingering connections closed.

use crate::batcher::{Batcher, Call, ReplyData};
use crate::cache::{ResultCache, DEFAULT_CACHE_BYTES};
use crate::jobs::JobQueue;
use crate::protocol::{
    embed_request_id, read_frame_timed, request_id_of, write_frame, ErrorKind, FrameError,
    RegionWire, Request, Response, ServerStats, VersionInfo,
};
use crate::store::{ModelStore, ModelVersion, StoreError};
use crate::telemetry::{self, Outcome, Stage, Telemetry};
use prdnn_core::DecoupledNetwork;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Pool parallelism (`None` = `PRDNN_THREADS` / available cores).
    pub threads: Option<usize>,
    /// Concurrent connection cap.
    pub max_connections: usize,
    /// Pending-item cap of the eval/lin_regions batch queue.
    pub batch_queue_cap: usize,
    /// Pending-job cap of the repair FIFO.
    pub job_queue_cap: usize,
    /// Number of repair worker threads.
    pub repair_workers: usize,
    /// Deadline applied to `eval`/`lin_regions` requests that do not set
    /// their own, in milliseconds.
    pub default_deadline_ms: u64,
    /// Durable store directory.  `None` keeps the in-memory version log
    /// (versions live exactly as long as the process); `Some(dir)` opens a
    /// [`crate::wal::WalLog`] there — recovery runs **before** the accept
    /// loop starts, so the first client already sees every version that was
    /// acknowledged before the last shutdown or crash.
    pub store_dir: Option<std::path::PathBuf>,
    /// Snapshot/compact the WAL after this many publishes (`0` = never
    /// snapshot; the WAL grows without bound).  Ignored without
    /// `store_dir`.
    pub snapshot_every: u64,
    /// Per-connection socket read/write timeout in milliseconds (`0` =
    /// none).  A peer that stalls mid-frame longer than this is counted in
    /// [`ServerStats::io_timeouts`] and its connection-cap slot is freed —
    /// the slowloris defense.
    pub io_timeout_ms: u64,
    /// Deterministic WAL fault-injection spec (see
    /// [`crate::faults::FaultInjector::parse`]); `None` disables injection.
    /// Ignored without `store_dir`.  Test/chaos tooling only.
    pub wal_fault_spec: Option<String>,
    /// Byte budget of the per-version result cache (`0` disables caching).
    /// Payload bytes only; see [`crate::cache`] for the accounting.
    pub cache_bytes: usize,
    /// Slow-request threshold in milliseconds: a request whose server-side
    /// residence crosses this promotes its full span chain to the retained
    /// slow-log served by the `trace` request.  `0` disables span tracing
    /// entirely (histograms stay on); see [`crate::telemetry`].
    pub slow_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            threads: None,
            max_connections: 64,
            batch_queue_cap: 256,
            job_queue_cap: 64,
            repair_workers: 1,
            default_deadline_ms: 10_000,
            store_dir: None,
            snapshot_every: 64,
            io_timeout_ms: 30_000,
            wal_fault_spec: None,
            cache_bytes: DEFAULT_CACHE_BYTES,
            slow_ms: 400,
        }
    }
}

/// Retry hints (in ms) attached to `overloaded` responses, by shed point.
/// Batch queues turn over in one gulp; repair queues take whole solves;
/// connection slots free as fast as requests finish.
const RETRY_AFTER_BATCH_MS: u64 = 25;
const RETRY_AFTER_JOBS_MS: u64 = 250;
const RETRY_AFTER_CONN_MS: u64 = 100;

struct Shared {
    config: ServerConfig,
    store: Arc<ModelStore>,
    batcher: Arc<Batcher>,
    cache: Arc<ResultCache>,
    jobs: Arc<JobQueue>,
    telemetry: Arc<Telemetry>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    conn_count: AtomicUsize,
    next_conn_id: AtomicU64,
    /// Server-assigned request ids start at 1 (0 means "untracked").
    next_request_id: AtomicU64,
    conns_opened: AtomicU64,
    conns_rejected: AtomicU64,
    io_timeouts: AtomicU64,
    /// Stream clones of live connections, so shutdown can unblock their
    /// handler threads' reads.
    conns: Mutex<HashMap<u64, TcpStream>>,
    handler_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// Lock poisoning on the connection bookkeeping recovers the guard: the
/// maps stay structurally valid across a handler panic (inserts/removes
/// are atomic at `HashMap` granularity), and wedging the accept loop over
/// one crashed handler would turn a bug into an outage.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
    }

    fn stats(&self) -> ServerStats {
        let b = &self.batcher.counters;
        let c = &self.cache.counters;
        let j = &self.jobs.counters;
        let l = self.store.log_stats();
        ServerStats {
            eval_requests: b.eval_requests.load(Ordering::Relaxed),
            eval_batches: b.eval_batches.load(Ordering::Relaxed),
            eval_points: b.eval_points.load(Ordering::Relaxed),
            lin_requests: b.lin_requests.load(Ordering::Relaxed),
            lin_batches: b.lin_batches.load(Ordering::Relaxed),
            lin_polytopes: b.lin_polytopes.load(Ordering::Relaxed),
            gulps: b.gulps.load(Ordering::Relaxed),
            gulp_items: b.gulp_items.load(Ordering::Relaxed),
            max_gulp: b.max_gulp.load(Ordering::Relaxed),
            jobs_submitted: j.submitted.load(Ordering::Relaxed),
            jobs_completed: j.completed.load(Ordering::Relaxed),
            jobs_failed: j.failed.load(Ordering::Relaxed),
            repair_queue_depth: self.jobs.queue_depth(),
            repair_in_flight: self.jobs.in_flight(),
            wal_appends: l.wal_appends,
            wal_bytes: l.wal_bytes,
            snapshots: l.snapshots,
            recovered_versions: l.recovered_versions,
            recovered_wal_records: l.recovered_wal_records,
            torn_tail_bytes: l.torn_tail_bytes,
            wal_failed_appends: l.wal_failed_appends,
            conns_opened: self.conns_opened.load(Ordering::Relaxed),
            conns_rejected: self.conns_rejected.load(Ordering::Relaxed),
            open_connections: self.conn_count.load(Ordering::SeqCst) as u64,
            io_timeouts: self.io_timeouts.load(Ordering::Relaxed),
            batch_shed: b.shed.load(Ordering::Relaxed),
            jobs_shed: j.shed.load(Ordering::Relaxed),
            cache_hits: c.hits.load(Ordering::Relaxed),
            cache_misses: c.misses.load(Ordering::Relaxed),
            cache_inserts: c.inserts.load(Ordering::Relaxed),
            cache_evictions: c.evictions.load(Ordering::Relaxed),
            cache_fill_skips: c.fill_skips.load(Ordering::Relaxed),
            cache_bytes: self.cache.bytes(),
            cache_entries: self.cache.entries(),
            deadline_expired: b.deadline_expired.load(Ordering::Relaxed),
            lin_rescue_calls: b.lin_rescue_calls.load(Ordering::Relaxed),
            lp_pivots: j.lp_pivots.load(Ordering::Relaxed),
            lp_refactorizations: j.lp_refactorizations.load(Ordering::Relaxed),
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] and/or [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    batch_worker: Option<JoinHandle<()>>,
    job_workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The server's model store (for post-drain inspection in tests and
    /// embedded use).
    pub fn store(&self) -> Arc<ModelStore> {
        Arc::clone(&self.shared.store)
    }

    /// Triggers graceful shutdown without waiting for it.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Waits for shutdown to be triggered (by a `shutdown` request or
    /// [`Self::shutdown`]), then drains: queued batches and repairs run to
    /// completion, lingering connections are closed, and every thread is
    /// joined.
    ///
    /// # Errors
    ///
    /// Returns an error if any server thread panicked.
    pub fn join(mut self) -> io::Result<()> {
        let mut panicked = false;
        if let Some(t) = self.accept_thread.take() {
            panicked |= t.join().is_err();
        }
        // Stop accepting work and drain what was already accepted: the
        // batch worker answers every queued item, the repair workers run
        // (and publish) every queued job.
        self.shared.batcher.shutdown();
        self.shared.jobs.shutdown();
        if let Some(t) = self.batch_worker.take() {
            panicked |= t.join().is_err();
        }
        for t in self.job_workers.drain(..) {
            panicked |= t.join().is_err();
        }
        // Every queued repair has now published; flush the version log so
        // the drain leaves nothing buffered.
        if let Err(e) = self.shared.store.flush_log() {
            eprintln!("prdnn-serve: version-log flush on drain failed: {e}");
        }
        // Only now unblock connection handlers still waiting for frames.
        for (_, conn) in lock_recover(&self.shared.conns).drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let handlers = std::mem::take(&mut *lock_recover(&self.shared.handler_threads));
        for t in handlers {
            panicked |= t.join().is_err();
        }
        if panicked {
            return Err(io::Error::other("a server thread panicked"));
        }
        Ok(())
    }
}

/// Starts the server and returns its handle.
///
/// # Errors
///
/// Propagates the bind failure, if any.
pub fn serve(config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let pool = Arc::new(prdnn_par::pool_for(config.threads));
    let telemetry = Telemetry::new(config.slow_ms);
    // Recovery happens here, before the accept loop exists: the first
    // client can already resolve every version acknowledged before the
    // last shutdown or crash.
    let store = match &config.store_dir {
        None => Arc::new(ModelStore::new()),
        Some(dir) => {
            let faults = match &config.wal_fault_spec {
                None => crate::faults::FaultInjector::none(),
                Some(spec) => {
                    let injector =
                        crate::faults::FaultInjector::parse(spec).map_err(io::Error::other)?;
                    if injector.is_active() {
                        eprintln!("prdnn-serve: WAL fault injection active: {spec}");
                    }
                    injector
                }
            };
            let wal = crate::wal::WalLog::open_with_faults(dir, config.snapshot_every, faults)
                .map_err(|e| io::Error::other(e.to_string()))?;
            wal.set_telemetry(Arc::clone(&telemetry));
            let report = wal.recovery_report();
            if report.versions > 0 || report.torn_tail_bytes > 0 {
                eprintln!(
                    "prdnn-serve: recovered {} version(s) of {} model(s) from {} \
                     ({} from the WAL tail, {} torn byte(s) dropped)",
                    report.versions,
                    report.models,
                    dir.display(),
                    report.wal_records,
                    report.torn_tail_bytes
                );
            }
            Arc::new(ModelStore::with_log(Arc::new(wal)))
        }
    };
    let cache = Arc::new(ResultCache::new(config.cache_bytes));
    let batcher = Arc::new(Batcher::new(
        Arc::clone(&pool),
        config.batch_queue_cap,
        Arc::clone(&cache),
        Arc::clone(&telemetry),
    ));
    let jobs = Arc::new(JobQueue::new(
        Arc::clone(&store),
        Arc::clone(&pool),
        config.job_queue_cap,
        Arc::clone(&telemetry),
    ));
    let repair_workers = config.repair_workers.max(1);
    let shared = Arc::new(Shared {
        config,
        store,
        batcher: Arc::clone(&batcher),
        cache,
        jobs: Arc::clone(&jobs),
        telemetry,
        shutdown: AtomicBool::new(false),
        addr,
        conn_count: AtomicUsize::new(0),
        next_conn_id: AtomicU64::new(0),
        next_request_id: AtomicU64::new(1),
        conns_opened: AtomicU64::new(0),
        conns_rejected: AtomicU64::new(0),
        io_timeouts: AtomicU64::new(0),
        conns: Mutex::new(HashMap::new()),
        handler_threads: Mutex::new(Vec::new()),
    });

    let batch_worker = {
        let batcher = Arc::clone(&batcher);
        thread::Builder::new()
            .name("prdnn-serve-batch".to_owned())
            .spawn(move || batcher.worker_loop())?
    };
    let job_workers = (0..repair_workers)
        .map(|i| {
            let jobs = Arc::clone(&jobs);
            thread::Builder::new()
                .name(format!("prdnn-serve-repair-{i}"))
                .spawn(move || jobs.worker_loop())
        })
        .collect::<io::Result<Vec<_>>>()?;
    let accept_thread = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("prdnn-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &shared))?
    };

    Ok(ServerHandle {
        shared,
        accept_thread: Some(accept_thread),
        batch_worker: Some(batch_worker),
        job_workers,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    // Transient accept() failures (ECONNABORTED, and EMFILE/ENFILE under fd
    // exhaustion) must neither kill the accept thread nor busy-spin it:
    // log, back off exponentially (10ms..1s), and keep accepting.
    let mut consecutive_errors = 0u32;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                consecutive_errors = 0;
                stream
            }
            Err(e) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if consecutive_errors == 0 || consecutive_errors.is_multiple_of(50) {
                    eprintln!(
                        "prdnn-serve: accept failed ({e}); backing off \
                         ({consecutive_errors} consecutive failures)"
                    );
                }
                let backoff = Duration::from_millis(10u64 << consecutive_errors.min(7));
                consecutive_errors = consecutive_errors.saturating_add(1);
                thread::sleep(backoff);
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wakeup connection (or a late client) during drain.
            let mut s = stream;
            let _ = write_frame(
                &mut s,
                &Response::error(ErrorKind::ShuttingDown, "server is draining").to_value(),
            );
            return;
        }
        // Admission: cap concurrent connections.
        if shared.conn_count.load(Ordering::SeqCst) >= shared.config.max_connections {
            shared.conns_rejected.fetch_add(1, Ordering::Relaxed);
            let mut s = stream;
            let _ = write_frame(
                &mut s,
                &Response::error_retry_after(
                    ErrorKind::Overloaded,
                    format!(
                        "connection limit ({}) reached",
                        shared.config.max_connections
                    ),
                    RETRY_AFTER_CONN_MS,
                )
                .to_value(),
            );
            continue;
        }
        // Replies are request-response frames, never streamed: leaving
        // Nagle on costs a delayed-ACK round (~40ms) per reply, which
        // would dwarf every latency the server actually controls.
        let _ = stream.set_nodelay(true);
        // Slowloris defense: a peer stalled mid-frame past this deadline
        // surfaces as FrameError::TimedOut in the handler, which closes the
        // connection and frees its slot.
        if shared.config.io_timeout_ms > 0 {
            let timeout = Some(Duration::from_millis(shared.config.io_timeout_ms));
            let _ = stream.set_read_timeout(timeout);
            let _ = stream.set_write_timeout(timeout);
        }
        shared.conn_count.fetch_add(1, Ordering::SeqCst);
        shared.conns_opened.fetch_add(1, Ordering::Relaxed);
        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            lock_recover(&shared.conns).insert(conn_id, clone);
        }
        let handler = {
            let shared = Arc::clone(shared);
            thread::Builder::new()
                .name(format!("prdnn-serve-conn-{conn_id}"))
                .spawn(move || {
                    // The slot bookkeeping must survive a panicking
                    // request handler, or each panic would leak one
                    // connection slot until the cap locks everyone out.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_connection(&shared, stream)
                    }));
                    lock_recover(&shared.conns).remove(&conn_id);
                    shared.conn_count.fetch_sub(1, Ordering::SeqCst);
                })
        };
        match handler {
            Ok(handle) => {
                let mut threads = lock_recover(&shared.handler_threads);
                // Reap handles of connections that already hung up, so the
                // list tracks live connections (bounded by the connection
                // cap) rather than every connection ever accepted.
                // Dropping a finished handle just releases it — the thread
                // has already returned.
                threads.retain(|t| !t.is_finished());
                threads.push(handle);
            }
            Err(_) => {
                lock_recover(&shared.conns).remove(&conn_id);
                shared.conn_count.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    loop {
        let (value, received) = match read_frame_timed(&mut stream) {
            Ok(pair) => pair,
            Err(FrameError::Closed) => return,
            Err(FrameError::Io(_)) => return,
            Err(FrameError::TimedOut) => {
                // The peer stalled mid-frame past the socket timeout: shed
                // the connection so its cap slot frees, telling the peer
                // why on the off chance it is still reading.
                shared.io_timeouts.fetch_add(1, Ordering::Relaxed);
                let _ = write_frame(
                    &mut stream,
                    &Response::error(
                        ErrorKind::DeadlineExceeded,
                        "connection idle past the socket timeout mid-frame",
                    )
                    .to_value(),
                );
                return;
            }
            Err(e @ (FrameError::Oversized(_) | FrameError::Empty | FrameError::Malformed(_))) => {
                // Framing is unrecoverable once a bad header/payload is
                // seen: answer once and close.
                let _ = write_frame(
                    &mut stream,
                    &Response::error(ErrorKind::BadRequest, e.to_string()).to_value(),
                );
                return;
            }
        };
        // Correlation id: a client-set positive integral `request_id` field
        // wins; otherwise the server assigns one.  Either way it is echoed
        // in the response and threads through every span this request
        // records (the thread-local scope covers stages — like WAL appends
        // — reached without an explicit id parameter).
        let request_id = request_id_of(&value)
            .unwrap_or_else(|| shared.next_request_id.fetch_add(1, Ordering::Relaxed));
        let _scope = telemetry::enter_request(request_id);
        let (response, kind, close_after) = match Request::from_value(&value) {
            Err(message) => (
                Response::error(ErrorKind::BadRequest, message),
                "other",
                false,
            ),
            Ok(request) => {
                let kind = request.kind();
                let close_after = request == Request::Shutdown;
                (
                    handle_request(shared, request, received, request_id),
                    kind,
                    close_after,
                )
            }
        };
        let outcome = match &response {
            Response::Error {
                kind: ErrorKind::DeadlineExceeded,
                ..
            } => Outcome::Deadline,
            Response::Error { .. } => Outcome::Error,
            _ => Outcome::Ok,
        };
        let mut reply = response.to_value();
        embed_request_id(&mut reply, request_id);
        if let Err(e) = write_frame(&mut stream, &reply) {
            // A response too large for the frame cap (e.g. lin_regions on
            // a huge model) writes nothing — tell the client why instead
            // of silently hanging up on a valid request.
            if e.kind() == std::io::ErrorKind::InvalidData {
                let _ = write_frame(
                    &mut stream,
                    &Response::error(
                        ErrorKind::Internal,
                        "response exceeds the frame size cap; narrow the request",
                    )
                    .to_value(),
                );
            } else if crate::protocol::is_timeout(&e) {
                // The peer stopped draining our response.
                shared.io_timeouts.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        // The Request span covers the whole server-side residence: from
        // the frame's first header byte through the response write.  The
        // eval/lin_regions e2e histograms are recorded at the batcher
        // boundary instead (so their counts match the request counters);
        // other kinds are recorded here, covering every request.
        let total = received.elapsed();
        if telemetry::request_kind_index(kind) >= 2 {
            shared.telemetry.request_e2e[telemetry::request_kind_index(kind)]
                .record_duration(total);
        }
        shared
            .telemetry
            .span_at(request_id, Stage::Request, received, total, outcome);
        shared.telemetry.maybe_promote(request_id, kind, total);
        if close_after {
            return;
        }
    }
}

fn store_error(e: &StoreError) -> Response {
    let kind = match e {
        StoreError::UnknownModel(_) => ErrorKind::UnknownModel,
        StoreError::UnknownVersion(..) => ErrorKind::UnknownVersion,
        StoreError::AlreadyExists(_) => ErrorKind::BadRequest,
        // Nothing was published; the store is intact and the operation is
        // safe to retry once storage heals.
        StoreError::Durability(_) => ErrorKind::Unavailable,
    };
    Response::error(kind, e.to_string())
}

fn bad_request(message: impl Into<String>) -> Response {
    Response::error(ErrorKind::BadRequest, message)
}

/// Maps a queue-submission rejection to a response, attaching the shed
/// point's retry hint to `overloaded` rejections.
fn queue_rejection((kind, message): (ErrorKind, String), retry_after_ms: u64) -> Response {
    if kind == ErrorKind::Overloaded {
        Response::error_retry_after(kind, message, retry_after_ms)
    } else {
        Response::error(kind, message)
    }
}

fn handle_request(
    shared: &Arc<Shared>,
    request: Request,
    received: Instant,
    request_id: u64,
) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::LoadGenerator { name, generator } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return shutting_down();
            }
            let net = match prdnn_datasets::registry::build_model(&generator) {
                Ok(net) => net,
                Err(e) => return bad_request(e),
            };
            load_into_store(shared, &name, net, generator)
        }
        Request::LoadNetwork { name, network } => {
            if shared.shutdown.load(Ordering::SeqCst) {
                return shutting_down();
            }
            let net = match prdnn_nn::network_from_json(&network) {
                Ok(net) => net,
                Err(e) => return bad_request(e),
            };
            load_into_store(shared, &name, net, "network-json".to_owned())
        }
        Request::Eval {
            model,
            inputs,
            deadline_ms,
        } => {
            let version = match shared.store.resolve(&model) {
                Ok(v) => v,
                Err(e) => return store_error(&e),
            };
            let dim = version.ddnn.input_dim();
            if let Some(bad) = inputs.iter().find(|x| x.len() != dim) {
                return bad_request(format!(
                    "eval: input of dimension {} but {} expects {dim}",
                    bad.len(),
                    model
                ));
            }
            submit_and_wait(
                shared,
                version,
                Call::Eval(inputs),
                deadline_ms,
                received,
                request_id,
            )
        }
        Request::LinRegions {
            model,
            polytopes,
            deadline_ms,
        } => {
            let version = match shared.store.resolve(&model) {
                Ok(v) => v,
                Err(e) => return store_error(&e),
            };
            if !version.ddnn.activation_network().is_piecewise_linear() {
                return bad_request(format!(
                    "lin_regions: {model} uses non-piecewise-linear activations"
                ));
            }
            let dim = version.ddnn.input_dim();
            for polytope in &polytopes {
                if polytope.len() < 2 {
                    return bad_request("lin_regions: polytopes need at least two vertices");
                }
                if let Some(bad) = polytope.iter().find(|v| v.len() != dim) {
                    return bad_request(format!(
                        "lin_regions: vertex of dimension {} but {} expects {dim}",
                        bad.len(),
                        model
                    ));
                }
            }
            submit_and_wait(
                shared,
                version,
                Call::LinRegions(polytopes),
                deadline_ms,
                received,
                request_id,
            )
        }
        Request::Repair {
            model,
            layer,
            spec,
            config,
        } => {
            let version = match shared.store.resolve(&model) {
                Ok(v) => v,
                Err(e) => return store_error(&e),
            };
            // Cheap structural validation up front, so obviously malformed
            // repairs fail at submission instead of as a failed job.
            if spec.is_empty() {
                return bad_request("repair: empty specification");
            }
            if layer >= version.ddnn.num_layers() {
                return bad_request(format!(
                    "repair: layer {layer} out of range ({} layers)",
                    version.ddnn.num_layers()
                ));
            }
            let (in_dim, out_dim) = (version.ddnn.input_dim(), version.ddnn.output_dim());
            if let Some(bad) = spec.points.iter().find(|p| p.len() != in_dim) {
                return bad_request(format!(
                    "repair: point of dimension {} but {} expects {in_dim}",
                    bad.len(),
                    model
                ));
            }
            if let Some(bad) = spec.constraints.iter().find(|c| c.output_dim() != out_dim) {
                return bad_request(format!(
                    "repair: constraint over {} outputs but {} has {out_dim}",
                    bad.output_dim(),
                    model
                ));
            }
            match shared.jobs.submit(version, layer, spec, config, request_id) {
                Ok(job) => Response::JobQueued { job },
                Err(rejection) => queue_rejection(rejection, RETRY_AFTER_JOBS_MS),
            }
        }
        Request::JobStatus { job } => match shared.jobs.lookup(job) {
            crate::jobs::StatusLookup::Found(state) => Response::Job(state),
            crate::jobs::StatusLookup::Evicted => Response::error(
                ErrorKind::UnknownJob,
                format!(
                    "job {job} settled, but its status record has been evicted \
                     (only the most recent settled jobs are retained)"
                ),
            ),
            crate::jobs::StatusLookup::NeverIssued => {
                Response::error(ErrorKind::UnknownJob, format!("job {job} was never issued"))
            }
        },
        Request::GetNetwork { model } => match shared.store.resolve(&model) {
            Err(e) => store_error(&e),
            Ok(v) => Response::Network {
                name: v.name.clone(),
                version: v.version,
                source: v.source.clone(),
                activation: prdnn_nn::network_to_json(v.ddnn.activation_network()),
                value: prdnn_nn::network_to_json(v.ddnn.value_network()),
                provenance: v.provenance.as_ref().map(|p| p.to_json()),
            },
        },
        Request::ListModels => Response::Models(shared.store.list()),
        Request::ListVersions { name } => match shared.store.versions(&name) {
            Err(e) => store_error(&e),
            Ok(versions) => Response::Versions(
                versions
                    .iter()
                    .map(|v| VersionInfo {
                        version: v.version,
                        source: v.source.clone(),
                        spec_hash: v
                            .provenance
                            .as_ref()
                            .map(|p| format!("0x{:016x}", p.spec_hash)),
                        delta_l1: v.provenance.as_ref().map(|p| p.delta_l1),
                        delta_linf: v.provenance.as_ref().map(|p| p.delta_linf),
                        layer: v.provenance.as_ref().map(|p| p.layer),
                    })
                    .collect(),
            ),
        },
        Request::Stats => Response::Stats(shared.stats()),
        Request::Metrics => Response::Metrics {
            text: shared.telemetry.render_prometheus(&shared.stats()),
        },
        Request::Trace => Response::Trace {
            slow: shared.telemetry.slow_traces_json(),
        },
        Request::Shutdown => {
            shared.begin_shutdown();
            Response::ShuttingDown
        }
    }
}

fn shutting_down() -> Response {
    Response::error(
        ErrorKind::ShuttingDown,
        "server is draining; no new work accepted",
    )
}

fn load_into_store(
    shared: &Arc<Shared>,
    name: &str,
    net: prdnn_nn::Network,
    source: String,
) -> Response {
    if name.is_empty() {
        return bad_request("load: empty model name");
    }
    // '@' is the ModelRef version separator: a name containing it would be
    // loadable but never resolvable (`"m@v2"` parses as version 2 of "m").
    if name.contains('@') {
        return bad_request(format!(
            "load: model name {name:?} must not contain '@' (reserved for \"name@vN\" references)"
        ));
    }
    let ddnn = DecoupledNetwork::from_network(&net);
    match shared.store.load(name, ddnn, source) {
        Ok(version) => Response::Loaded {
            name: version.name.clone(),
            version: version.version,
        },
        Err(e) => store_error(&e),
    }
}

fn submit_and_wait(
    shared: &Arc<Shared>,
    version: Arc<ModelVersion>,
    call: Call,
    deadline_ms: Option<u64>,
    received: Instant,
    request_id: u64,
) -> Response {
    let kind_index = telemetry::request_kind_index(match call {
        Call::Eval(_) => "eval",
        Call::LinRegions(_) => "lin_regions",
    });
    let budget = Duration::from_millis(
        deadline_ms
            .unwrap_or(shared.config.default_deadline_ms)
            .max(1),
    );
    let deadline = Instant::now() + budget;
    let receiver = match shared.batcher.submit(version, call, deadline, request_id) {
        Ok(rx) => rx,
        Err(rejection) => return queue_rejection(rejection, RETRY_AFTER_BATCH_MS),
    };
    // A small grace period past the deadline: the batcher answers expired
    // items itself, so waiting slightly longer prefers its (more precise)
    // verdict over racing it.  Measured from the deadline, not the budget —
    // time already burned in `submit` (queue lock, key hashing) must not
    // push the wait past the deadline the batcher enforces.
    let wait = deadline.saturating_duration_since(Instant::now()) + Duration::from_millis(50);
    let reply = receiver.recv_timeout(wait);
    // One e2e sample per *accepted* item, whatever the outcome — this is
    // what keeps `prdnn_request_seconds_count{kind="eval"}` equal to
    // `prdnn_eval_requests_total` at quiesce (shed/invalid requests never
    // reach either).
    shared.telemetry.request_e2e[kind_index].record_duration(received.elapsed());
    match reply {
        Ok(Ok(ReplyData::Outputs(outputs))) => Response::Outputs(outputs),
        Ok(Ok(ReplyData::Regions(regions))) => Response::Regions(
            regions
                .into_iter()
                .map(|per_poly| {
                    per_poly
                        .into_iter()
                        .map(|r| RegionWire {
                            vertices: r.vertices,
                            interior: r.interior,
                        })
                        .collect()
                })
                .collect(),
        ),
        Ok(Err((kind, message))) => Response::error(kind, message),
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Response::error(
            ErrorKind::DeadlineExceeded,
            "request timed out in the batch queue",
        ),
        // The batch worker dropped our reply channel without answering —
        // it panicked mid-batch.
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            Response::error(ErrorKind::Internal, "batch execution failed")
        }
    }
}
