//! The versioned model store.
//!
//! A stored model is a *name* plus an append-only chain of immutable
//! [`ModelVersion`]s.  Version 1 is the loaded network; every successful
//! repair publishes version `N+1` with the repair's
//! [`RepairProvenance`].  Nothing is ever mutated or removed: an eval
//! pinned to `name@v2` keeps answering from version 2 forever, and
//! `name@latest` moves atomically when a repair lands.
//!
//! # Lock-freedom
//!
//! Readers resolve `latest` through an **arc-swap-style atomic head
//! pointer**: each entry keeps its versions in an intrusive linked list of
//! heap nodes whose head is an [`AtomicPtr`].  Publishing allocates a node
//! and stores the new head (writers are serialised by a small mutex);
//! resolving loads the head with `Acquire` and walks `prev` pointers.  The
//! safety argument is containment, not hazard pointers: **nodes are only
//! freed when the entry itself drops**, so any pointer loaded from the
//! head is valid for as long as the reader can hold it (readers access
//! entries through `Arc<ModelEntry>`).  This is the same immortal-snapshot
//! trade `arc-swap`'s cache layer makes, and it is exactly right here: all
//! versions must stay resolvable by `name@vN` anyway, so retaining them is
//! a feature, not a leak.

use prdnn_core::{DecoupledNetwork, RepairProvenance};
use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::protocol::ModelRef;

/// One immutable published version of a model.
#[derive(Debug)]
pub struct ModelVersion {
    /// The model's store name.
    pub name: String,
    /// The version number (1 = the loaded model).
    pub version: u32,
    /// The network, in decoupled form (version 1 has identical activation
    /// and value channels; repaired versions differ in one value layer).
    pub ddnn: DecoupledNetwork,
    /// Where this version came from: a generator spec, `"network-json"`,
    /// or `"repair of <name>@v<N>"`.
    pub source: String,
    /// Repair provenance (`None` for loaded versions).
    pub provenance: Option<RepairProvenance>,
}

/// A node in an entry's append-only version chain.
struct VersionNode {
    version: Arc<ModelVersion>,
    /// The previously published version (null for version 1).
    prev: *mut VersionNode,
}

/// One named model: an atomic head pointer into its version chain.
pub struct ModelEntry {
    name: String,
    /// Arc-swap-style latest pointer; see the module docs for the safety
    /// argument.
    head: AtomicPtr<VersionNode>,
    /// Serialises publishers (readers never take it).
    publish_lock: Mutex<()>,
}

// SAFETY: the raw pointers only ever reference nodes owned by this entry's
// chain, which are allocated before being made reachable and freed only in
// `Drop`; all mutation of `head` is a single atomic store under
// `publish_lock`.
unsafe impl Send for ModelEntry {}
unsafe impl Sync for ModelEntry {}

impl ModelEntry {
    fn new(name: String) -> Self {
        ModelEntry {
            name,
            head: AtomicPtr::new(std::ptr::null_mut()),
            publish_lock: Mutex::new(()),
        }
    }

    /// The latest published version (lock-free).
    ///
    /// # Panics
    ///
    /// Panics if called before the first publish (the store never exposes
    /// an entry in that state).
    pub fn latest(&self) -> Arc<ModelVersion> {
        let head = self.head.load(Ordering::Acquire);
        assert!(!head.is_null(), "model entry exposed before first publish");
        // SAFETY: `head` points into this entry's chain; nodes live until
        // the entry drops, and `&self` keeps the entry alive.
        Arc::clone(unsafe { &(*head).version })
    }

    /// Every published version in one chain walk, oldest first
    /// (lock-free, O(versions)).
    pub fn all_versions(&self) -> Vec<Arc<ModelVersion>> {
        let mut out = Vec::new();
        let mut node = self.head.load(Ordering::Acquire);
        while !node.is_null() {
            // SAFETY: as in `latest`.
            let r = unsafe { &*node };
            out.push(Arc::clone(&r.version));
            node = r.prev;
        }
        out.reverse();
        out
    }

    /// Resolves a specific version by walking the chain from the head
    /// (lock-free; chains are as long as the number of repairs published).
    pub fn resolve_version(&self, version: u32) -> Option<Arc<ModelVersion>> {
        let mut node = self.head.load(Ordering::Acquire);
        while !node.is_null() {
            // SAFETY: as in `latest`.
            let r = unsafe { &*node };
            if r.version.version == version {
                return Some(Arc::clone(&r.version));
            }
            node = r.prev;
        }
        None
    }

    /// Publishes `build`'s version as the new head, assigning it the next
    /// version number.  Returns the published version.
    fn publish_with(&self, build: impl FnOnce(u32) -> ModelVersion) -> Arc<ModelVersion> {
        let _guard = self.publish_lock.lock().unwrap();
        let prev = self.head.load(Ordering::Relaxed);
        let next_version = if prev.is_null() {
            1
        } else {
            // SAFETY: as in `latest`.
            unsafe { &*prev }.version.version + 1
        };
        let version = Arc::new(build(next_version));
        let published = Arc::clone(&version);
        let node = Box::into_raw(Box::new(VersionNode { version, prev }));
        self.head.store(node, Ordering::Release);
        published
    }
}

impl Drop for ModelEntry {
    fn drop(&mut self) {
        let mut node = *self.head.get_mut();
        while !node.is_null() {
            // SAFETY: chain nodes are uniquely owned by the entry and only
            // freed here, exactly once.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.prev;
        }
    }
}

/// Errors returned by store lookups and loads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No model with the requested name.
    UnknownModel(String),
    /// The model exists but not the pinned version.
    UnknownVersion(String, u32),
    /// A load targeted a name that is already taken.
    AlreadyExists(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            StoreError::UnknownVersion(name, v) => {
                write!(f, "model {name:?} has no version {v}")
            }
            StoreError::AlreadyExists(name) => {
                write!(f, "model {name:?} already exists (versions are immutable)")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// The versioned model store.
#[derive(Default)]
pub struct ModelStore {
    /// Name → entry.  Read-mostly: loads of *new* models take the write
    /// lock; every other operation takes the read lock just long enough to
    /// clone an `Arc<ModelEntry>`, and all version resolution inside an
    /// entry is lock-free.
    entries: RwLock<HashMap<String, Arc<ModelEntry>>>,
}

impl ModelStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ModelStore::default()
    }

    /// Loads a network under a new name, publishing it as version 1.
    ///
    /// # Errors
    ///
    /// [`StoreError::AlreadyExists`] if the name is taken — published
    /// versions are immutable, so re-loading cannot silently replace them.
    pub fn load(
        &self,
        name: &str,
        ddnn: DecoupledNetwork,
        source: String,
    ) -> Result<Arc<ModelVersion>, StoreError> {
        let mut entries = self.entries.write().unwrap();
        if entries.contains_key(name) {
            return Err(StoreError::AlreadyExists(name.to_owned()));
        }
        let entry = Arc::new(ModelEntry::new(name.to_owned()));
        let published = entry.publish_with(|version| ModelVersion {
            name: name.to_owned(),
            version,
            ddnn,
            source,
            provenance: None,
        });
        entries.insert(name.to_owned(), entry);
        Ok(published)
    }

    /// Publishes a repaired network as the next version of an existing
    /// model.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownModel`] if the model was never loaded.
    pub fn publish_repair(
        &self,
        name: &str,
        ddnn: DecoupledNetwork,
        source: String,
        provenance: RepairProvenance,
    ) -> Result<Arc<ModelVersion>, StoreError> {
        let entry = self.entry(name)?;
        Ok(entry.publish_with(|version| ModelVersion {
            name: name.to_owned(),
            version,
            ddnn,
            source,
            provenance: Some(provenance),
        }))
    }

    /// Resolves a model reference to a version.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownModel`] / [`StoreError::UnknownVersion`].
    pub fn resolve(&self, model: &ModelRef) -> Result<Arc<ModelVersion>, StoreError> {
        let entry = self.entry(&model.name)?;
        match model.version {
            None => Ok(entry.latest()),
            Some(v) => entry
                .resolve_version(v)
                .ok_or_else(|| StoreError::UnknownVersion(model.name.clone(), v)),
        }
    }

    /// `(name, latest_version)` for every stored model, sorted by name.
    pub fn list(&self) -> Vec<(String, u32)> {
        let entries = self.entries.read().unwrap();
        let mut out: Vec<(String, u32)> = entries
            .values()
            .map(|e| (e.name.clone(), e.latest().version))
            .collect();
        out.sort();
        out
    }

    /// Every version of one model, oldest first.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownModel`].
    pub fn versions(&self, name: &str) -> Result<Vec<Arc<ModelVersion>>, StoreError> {
        Ok(self.entry(name)?.all_versions())
    }

    fn entry(&self, name: &str) -> Result<Arc<ModelEntry>, StoreError> {
        self.entries
            .read()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::UnknownModel(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdnn_core::RepairConfig;
    use prdnn_datasets::registry;
    use std::thread;

    fn ddnn(spec: &str) -> DecoupledNetwork {
        DecoupledNetwork::from_network(&registry::build_model(spec).unwrap())
    }

    fn provenance() -> RepairProvenance {
        RepairProvenance {
            spec_hash: 0xfeed,
            config: RepairConfig::default(),
            layer: 0,
            num_key_points: 2,
            delta_l1: 1.0,
            delta_linf: 0.5,
        }
    }

    #[test]
    fn load_resolve_and_publish() {
        let store = ModelStore::new();
        let v1 = store.load("n1", ddnn("n1"), "n1".into()).unwrap();
        assert_eq!((v1.version, v1.name.as_str()), (1, "n1"));
        assert!(v1.provenance.is_none());
        assert_eq!(
            store.load("n1", ddnn("n1"), "n1".into()).unwrap_err(),
            StoreError::AlreadyExists("n1".into())
        );

        let v2 = store
            .publish_repair("n1", ddnn("n1"), "repair of n1@v1".into(), provenance())
            .unwrap();
        assert_eq!(v2.version, 2);
        assert_eq!(v2.provenance.as_ref().unwrap().spec_hash, 0xfeed);

        // latest moves; pinned versions stay resolvable.
        let latest = store.resolve(&ModelRef::latest("n1")).unwrap();
        assert_eq!(latest.version, 2);
        let pinned = store.resolve(&ModelRef::version("n1", 1)).unwrap();
        assert_eq!(pinned.version, 1);
        assert!(Arc::ptr_eq(&pinned, &v1));
        assert_eq!(
            store.resolve(&ModelRef::version("n1", 3)).unwrap_err(),
            StoreError::UnknownVersion("n1".into(), 3)
        );
        assert_eq!(
            store.resolve(&ModelRef::latest("ghost")).unwrap_err(),
            StoreError::UnknownModel("ghost".into())
        );

        assert_eq!(store.list(), vec![("n1".to_owned(), 2)]);
        let versions = store.versions("n1").unwrap();
        assert_eq!(
            versions.iter().map(|v| v.version).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn concurrent_readers_see_consistent_versions_during_publishes() {
        let store = Arc::new(ModelStore::new());
        store.load("m", ddnn("n1"), "n1".into()).unwrap();
        let publishes = 64u32;
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                thread::spawn(move || {
                    let mut last = 0u32;
                    loop {
                        let latest = store.resolve(&ModelRef::latest("m")).unwrap();
                        // Versions are monotone and self-consistent.
                        assert!(latest.version >= last);
                        assert_eq!(latest.name, "m");
                        last = latest.version;
                        if last > publishes {
                            return;
                        }
                        // Every historical version stays resolvable.
                        let pin = 1 + last / 2;
                        let pinned = store.resolve(&ModelRef::version("m", pin)).unwrap();
                        assert_eq!(pinned.version, pin);
                    }
                })
            })
            .collect();
        for _ in 0..publishes {
            store
                .publish_repair("m", ddnn("n1"), "repair".into(), provenance())
                .unwrap();
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(store.versions("m").unwrap().len(), publishes as usize + 1);
    }
}
