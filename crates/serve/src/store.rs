//! The versioned model store.
//!
//! A stored model is a *name* plus an append-only chain of immutable
//! [`ModelVersion`]s.  Version 1 is the loaded network; every successful
//! repair publishes version `N+1` with the repair's
//! [`RepairProvenance`](prdnn_core::RepairProvenance).  Nothing is ever
//! mutated or removed: an eval pinned to `name@v2` keeps answering from
//! version 2 forever, and `name@latest` moves atomically when a repair
//! lands.
//!
//! The store no longer owns the version chains directly: they live in the
//! [`VersionLog`] backend ([`crate::version_log`]), which is either the
//! in-memory [`MemoryLog`] (the original behaviour) or the durable
//! [`crate::wal::WalLog`].  Every publish is **write-ahead**: the log
//! records the version (fsync for the WAL backend) before the new chain
//! head is stored, so an acknowledged publish survives a crash.  Reads are
//! unchanged and lock-free (see the `version_log` module docs for the
//! safety argument).

use prdnn_core::{DecoupledNetwork, RepairProvenance};
use std::sync::{Arc, Mutex, PoisonError};

use crate::protocol::ModelRef;
use crate::version_log::{LogStats, MemoryLog, ModelEntry, VersionLog};

pub use crate::version_log::ModelVersion;

/// Errors returned by store lookups and loads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No model with the requested name.
    UnknownModel(String),
    /// The model exists but not the pinned version.
    UnknownVersion(String, u32),
    /// A load targeted a name that is already taken.
    AlreadyExists(String),
    /// The version log refused the publish — nothing was published, so the
    /// store never acknowledges data the log did not make durable.
    Durability(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownModel(name) => write!(f, "unknown model {name:?}"),
            StoreError::UnknownVersion(name, v) => {
                write!(f, "model {name:?} has no version {v}")
            }
            StoreError::AlreadyExists(name) => {
                write!(f, "model {name:?} already exists (versions are immutable)")
            }
            StoreError::Durability(m) => write!(f, "publish not durable: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The versioned model store: a thin façade over a [`VersionLog`].
pub struct ModelStore {
    log: Arc<dyn VersionLog>,
    /// Serialises publishes *across* models.  Each entry's own lock already
    /// serialises per-model publishers; this outer lock additionally makes
    /// the (log append → chain insert) pair atomic with respect to the
    /// snapshot collection in [`VersionLog::after_publish`], so a snapshot
    /// can never miss an appended-but-not-yet-visible version.
    publish_order: Mutex<()>,
}

impl Default for ModelStore {
    fn default() -> Self {
        ModelStore::new()
    }
}

impl ModelStore {
    /// Creates an empty in-memory store (a [`MemoryLog`] backend).
    pub fn new() -> Self {
        ModelStore::with_log(Arc::new(MemoryLog::new()))
    }

    /// Creates a store over an explicit log backend.  The backend may
    /// already hold recovered chains (the WAL backend replays its snapshot
    /// and WAL tail in `open`).
    pub fn with_log(log: Arc<dyn VersionLog>) -> Self {
        ModelStore {
            log,
            publish_order: Mutex::new(()),
        }
    }

    /// Loads a network under a new name, publishing it as version 1.
    ///
    /// # Errors
    ///
    /// [`StoreError::AlreadyExists`] if the name is taken — published
    /// versions are immutable, so re-loading cannot silently replace them.
    /// [`StoreError::Durability`] if the log refused the record.
    pub fn load(
        &self,
        name: &str,
        ddnn: DecoupledNetwork,
        source: String,
    ) -> Result<Arc<ModelVersion>, StoreError> {
        // Poison recovery: the guard carries no data and a panicked publish
        // leaves the chains consistent (the head swaps atomically), so a
        // crashed repair worker must not wedge every future publish.
        let _order = self
            .publish_order
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let chains = self.log.chains();
        if chains.contains(name) {
            return Err(StoreError::AlreadyExists(name.to_owned()));
        }
        // Publish into a detached entry first: the map only ever exposes
        // entries that hold at least one version.
        let entry = Arc::new(ModelEntry::new(name.to_owned()));
        let published = entry
            .publish_logged(self.log.as_ref(), |version| {
                ModelVersion::new(name.to_owned(), version, ddnn, source, None)
            })
            .map_err(|e| StoreError::Durability(e.to_string()))?;
        chains.insert(entry);
        self.compact_if_due();
        Ok(published)
    }

    /// Publishes a repaired network as the next version of an existing
    /// model.  Returns only once the version is as durable as the log
    /// backend promises — callers may acknowledge it to clients.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownModel`] if the model was never loaded;
    /// [`StoreError::Durability`] if the log refused the record.
    pub fn publish_repair(
        &self,
        name: &str,
        ddnn: DecoupledNetwork,
        source: String,
        provenance: RepairProvenance,
    ) -> Result<Arc<ModelVersion>, StoreError> {
        let _order = self
            .publish_order
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let entry = self.entry(name)?;
        let published = entry
            .publish_logged(self.log.as_ref(), |version| {
                ModelVersion::new(name.to_owned(), version, ddnn, source, Some(provenance))
            })
            .map_err(|e| StoreError::Durability(e.to_string()))?;
        self.compact_if_due();
        Ok(published)
    }

    /// Runs the backend's snapshot/compaction policy.  Failures do not
    /// invalidate the publish (its WAL record is already durable) but are
    /// loud: losing compaction silently would grow the WAL without bound.
    fn compact_if_due(&self) {
        if let Err(e) = self.log.after_publish() {
            eprintln!("prdnn-serve: snapshot/compaction failed: {e}");
        }
    }

    /// Resolves a model reference to a version.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownModel`] / [`StoreError::UnknownVersion`].
    pub fn resolve(&self, model: &ModelRef) -> Result<Arc<ModelVersion>, StoreError> {
        let entry = self.entry(&model.name)?;
        match model.version {
            None => Ok(entry.latest()),
            Some(v) => entry
                .resolve_version(v)
                .ok_or_else(|| StoreError::UnknownVersion(model.name.clone(), v)),
        }
    }

    /// `(name, latest_version)` for every stored model, sorted by name —
    /// deterministic across runs and across recovery.
    pub fn list(&self) -> Vec<(String, u32)> {
        self.log.chains().list()
    }

    /// Every version of one model, oldest first.
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownModel`].
    pub fn versions(&self, name: &str) -> Result<Vec<Arc<ModelVersion>>, StoreError> {
        Ok(self.entry(name)?.all_versions())
    }

    /// Flushes the log backend (graceful drain calls this after the last
    /// queued repair has published).
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures.
    pub fn flush_log(&self) -> Result<(), StoreError> {
        self.log
            .flush()
            .map_err(|e| StoreError::Durability(e.to_string()))
    }

    /// The log backend's durability counters.
    pub fn log_stats(&self) -> LogStats {
        self.log.stats()
    }

    fn entry(&self, name: &str) -> Result<Arc<ModelEntry>, StoreError> {
        self.log
            .chains()
            .get(name)
            .ok_or_else(|| StoreError::UnknownModel(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdnn_core::RepairConfig;
    use prdnn_datasets::registry;
    use std::thread;

    fn ddnn(spec: &str) -> DecoupledNetwork {
        DecoupledNetwork::from_network(&registry::build_model(spec).unwrap())
    }

    fn provenance() -> RepairProvenance {
        RepairProvenance {
            spec_hash: 0xfeed,
            config: RepairConfig::default(),
            layer: 0,
            num_key_points: 2,
            delta_l1: 1.0,
            delta_linf: 0.5,
            lp_pivots: 5,
            lp_refactorizations: 0,
        }
    }

    #[test]
    fn load_resolve_and_publish() {
        let store = ModelStore::new();
        let v1 = store.load("n1", ddnn("n1"), "n1".into()).unwrap();
        assert_eq!((v1.version, v1.name.as_str()), (1, "n1"));
        assert!(v1.provenance.is_none());
        assert_eq!(
            store.load("n1", ddnn("n1"), "n1".into()).unwrap_err(),
            StoreError::AlreadyExists("n1".into())
        );

        let v2 = store
            .publish_repair("n1", ddnn("n1"), "repair of n1@v1".into(), provenance())
            .unwrap();
        assert_eq!(v2.version, 2);
        assert_eq!(v2.provenance.as_ref().unwrap().spec_hash, 0xfeed);

        // latest moves; pinned versions stay resolvable.
        let latest = store.resolve(&ModelRef::latest("n1")).unwrap();
        assert_eq!(latest.version, 2);
        let pinned = store.resolve(&ModelRef::version("n1", 1)).unwrap();
        assert_eq!(pinned.version, 1);
        assert!(Arc::ptr_eq(&pinned, &v1));
        assert_eq!(
            store.resolve(&ModelRef::version("n1", 3)).unwrap_err(),
            StoreError::UnknownVersion("n1".into(), 3)
        );
        assert_eq!(
            store.resolve(&ModelRef::latest("ghost")).unwrap_err(),
            StoreError::UnknownModel("ghost".into())
        );

        assert_eq!(store.list(), vec![("n1".to_owned(), 2)]);
        let versions = store.versions("n1").unwrap();
        assert_eq!(
            versions.iter().map(|v| v.version).collect::<Vec<_>>(),
            vec![1, 2]
        );
    }

    #[test]
    fn list_is_sorted_by_name_regardless_of_load_order() {
        // Pinned: list responses over the wire must be deterministic across
        // runs (and across recovery), so `list()` sorts — never exposes
        // HashMap iteration order.
        let store = ModelStore::new();
        for name in ["zebra", "alpha", "mid", "Alpha", "a0"] {
            store.load(name, ddnn("n1"), "n1".into()).unwrap();
        }
        store
            .publish_repair("mid", ddnn("n1"), "repair of mid@v1".into(), provenance())
            .unwrap();
        let listed = store.list();
        let names: Vec<&str> = listed.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Alpha", "a0", "alpha", "mid", "zebra"]);
        let mut sorted = listed.clone();
        sorted.sort();
        assert_eq!(listed, sorted);
        assert_eq!(listed[3], ("mid".to_owned(), 2));
    }

    #[test]
    fn concurrent_readers_see_consistent_versions_during_publishes() {
        let store = Arc::new(ModelStore::new());
        store.load("m", ddnn("n1"), "n1".into()).unwrap();
        let publishes = 64u32;
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                thread::spawn(move || {
                    let mut last = 0u32;
                    loop {
                        let latest = store.resolve(&ModelRef::latest("m")).unwrap();
                        // Versions are monotone and self-consistent.
                        assert!(latest.version >= last);
                        assert_eq!(latest.name, "m");
                        last = latest.version;
                        if last > publishes {
                            return;
                        }
                        // Every historical version stays resolvable.
                        let pin = 1 + last / 2;
                        let pinned = store.resolve(&ModelRef::version("m", pin)).unwrap();
                        assert_eq!(pinned.version, pin);
                    }
                })
            })
            .collect();
        for _ in 0..publishes {
            store
                .publish_repair("m", ddnn("n1"), "repair".into(), provenance())
                .unwrap();
        }
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(store.versions("m").unwrap().len(), publishes as usize + 1);
    }
}
