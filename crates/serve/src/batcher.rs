//! The request planner/batcher.
//!
//! Connection threads never run network math.  They submit work items
//! (an `eval` or `lin_regions` payload, the resolved model version, a
//! deadline, and a reply channel) into a bounded queue and block on the
//! reply.  A dedicated batch worker drains the *whole* queue at once,
//! groups the items by model version, and executes **one** batched library
//! call per group on the shared `prdnn-par` pool — ten concurrent clients
//! asking about the same version cost one layer-at-a-time sweep.
//!
//! Coalescing changes nothing numerically: the batched entry points are
//! bit-identical to their serial counterparts (pinned by the PR 3
//! determinism suite), and results are split back per request in
//! submission order.
//!
//! Admission control lives here too: a full queue rejects instead of
//! buffering without bound, items whose deadline expired before their
//! batch ran are answered with `deadline_exceeded` without paying for the
//! forward pass (counted under `deadline_expired`; deadlines are
//! re-checked per group right before it executes, so a late group's
//! members do not pay for a forward pass into a dead reply channel), and
//! shutdown drains the queue before the worker exits.
//!
//! The [`crate::cache::ResultCache`] sits between the drain and the
//! grouping: each drained item is probed first (a hit replies immediately
//! without entering any group), and every computed result fills the cache
//! on the way out — unless the member's deadline expired while the group
//! ran, in which case the fill is skipped and counted.

use crate::cache::{CacheKey, ResultCache};
use crate::protocol::ErrorKind;
use crate::store::ModelVersion;
use crate::telemetry::{Outcome, Stage, Telemetry};
use prdnn_par::PoolRef;
use prdnn_syrenn::LinearRegion;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

/// One batched call's payload.
#[derive(Debug)]
pub enum Call {
    /// Forward-evaluate a batch of points.
    Eval(Vec<Vec<f64>>),
    /// Linear regions of a batch of input polytopes.
    LinRegions(Vec<Vec<Vec<f64>>>),
}

/// A successful reply's payload.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyData {
    /// Outputs, one per submitted input.
    Outputs(Vec<Vec<f64>>),
    /// Regions, one list per submitted polytope.
    Regions(Vec<Vec<LinearRegion>>),
}

/// What a submitter receives back.
pub type Reply = Result<ReplyData, (ErrorKind, String)>;

struct Pending {
    version: Arc<ModelVersion>,
    call: Call,
    deadline: Instant,
    reply: Sender<Reply>,
    /// The item's cache key, computed once at submission on the connection
    /// thread (`None` when the cache is disabled).
    key: Option<CacheKey>,
    /// Correlation id for span tracing (0 = untracked).
    request_id: u64,
    /// When the item entered the queue; queue-wait and service-time
    /// telemetry measure from here.
    enqueued: Instant,
}

struct BatchState {
    queue: Vec<Pending>,
    shutdown: bool,
}

/// Counters exposed through the `stats` request.
#[derive(Debug, Default)]
pub struct BatchCounters {
    /// `eval` items accepted.
    pub eval_requests: AtomicU64,
    /// Batched forward calls executed.
    pub eval_batches: AtomicU64,
    /// Points pushed through those calls.
    pub eval_points: AtomicU64,
    /// `lin_regions` items accepted.
    pub lin_requests: AtomicU64,
    /// Batched `lin_regions` calls executed.
    pub lin_batches: AtomicU64,
    /// Polytopes pushed through those calls.
    pub lin_polytopes: AtomicU64,
    /// Queue drains that found at least one item (a "gulp").
    pub gulps: AtomicU64,
    /// Items drained across all gulps (mean gulp size = `gulp_items /
    /// gulps` — how well concurrent load actually coalesces).
    pub gulp_items: AtomicU64,
    /// Largest single gulp observed.
    pub max_gulp: AtomicU64,
    /// Items rejected at submission because the queue was full (load
    /// shedding — each one surfaced a typed `overloaded` to its client).
    pub shed: AtomicU64,
    /// Items answered `deadline_exceeded` without executing, in the
    /// pre-batch sweep or the per-group re-check.
    pub deadline_expired: AtomicU64,
    /// Individual isolation-rescue calls run after a batched `lin_regions`
    /// group failed (each member re-runs alone; these calls are *not*
    /// counted under `lin_batches`/`lin_polytopes`, which track coalesced
    /// work only).
    pub lin_rescue_calls: AtomicU64,
}

/// The coalescing batcher; see the module docs.
pub struct Batcher {
    state: Mutex<BatchState>,
    cv: Condvar,
    cap: usize,
    pool: Arc<PoolRef>,
    cache: Arc<ResultCache>,
    telemetry: Arc<Telemetry>,
    /// Request/batch counters.
    pub counters: BatchCounters,
}

impl Batcher {
    /// Creates a batcher whose queue holds at most `cap` pending items,
    /// probing and filling `cache` around every batched call and recording
    /// queue-wait / execution / gulp-size telemetry into `telemetry`.
    pub fn new(
        pool: Arc<PoolRef>,
        cap: usize,
        cache: Arc<ResultCache>,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        Batcher {
            state: Mutex::new(BatchState {
                queue: Vec::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
            pool,
            cache,
            telemetry,
            counters: BatchCounters::default(),
        }
    }

    /// Submits one work item, returning the channel the reply will arrive
    /// on.  `request_id` correlates the item's telemetry spans with the
    /// originating request (0 = untracked).
    ///
    /// # Errors
    ///
    /// `(Overloaded, ..)` when the queue is full, `(ShuttingDown, ..)`
    /// once shutdown has begun.
    pub fn submit(
        &self,
        version: Arc<ModelVersion>,
        call: Call,
        deadline: Instant,
        request_id: u64,
    ) -> Result<Receiver<Reply>, (ErrorKind, String)> {
        let (tx, rx) = std::sync::mpsc::channel();
        // Hash the payload on the connection thread, outside the queue
        // lock: submissions hash in parallel, the single batch worker only
        // probes.
        let key = if self.cache.is_enabled() {
            Some(match &call {
                Call::Eval(inputs) => CacheKey::eval(&version, inputs),
                Call::LinRegions(polys) => CacheKey::lin_regions(&version, polys),
            })
        } else {
            None
        };
        {
            // A poisoned queue lock means a submitter panicked mid-push
            // (never observed; pushes are infallible) — the queue contents
            // are suspect, so fail this request typed rather than guess.
            let mut state = self
                .state
                .lock()
                .map_err(|_| (ErrorKind::Internal, "batch queue lock poisoned".to_owned()))?;
            if state.shutdown {
                return Err((
                    ErrorKind::ShuttingDown,
                    "server is draining; no new work accepted".to_owned(),
                ));
            }
            if state.queue.len() >= self.cap {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                return Err((
                    ErrorKind::Overloaded,
                    format!("batch queue full ({} pending items)", self.cap),
                ));
            }
            match &call {
                Call::Eval(_) => self.counters.eval_requests.fetch_add(1, Ordering::Relaxed),
                Call::LinRegions(_) => self.counters.lin_requests.fetch_add(1, Ordering::Relaxed),
            };
            state.queue.push(Pending {
                version,
                call,
                deadline,
                reply: tx,
                key,
                request_id,
                enqueued: Instant::now(),
            });
        }
        self.cv.notify_one();
        Ok(rx)
    }

    /// The worker loop: drain, execute, repeat; on shutdown, drain whatever
    /// is left, then exit.  Run this on a dedicated thread.
    pub fn worker_loop(self: &Arc<Self>) {
        loop {
            let (batch, shutdown) = {
                // The worker recovers from poison: draining a suspect queue
                // at worst answers stale items, whereas a dead worker
                // deadlocks every submitter already blocked on a reply.
                let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
                while state.queue.is_empty() && !state.shutdown {
                    state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
                (std::mem::take(&mut state.queue), state.shutdown)
            };
            let drained_empty = batch.is_empty();
            // The worker must survive a panicking forward pass (e.g. a
            // malformed model that slipped past validation): the batch's
            // reply senders are dropped by the unwind, so affected
            // submitters see a disconnect — and the next batch is served
            // normally instead of the whole eval plane going dark.
            let _ =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_batch(batch)));
            if shutdown && drained_empty {
                return;
            }
        }
    }

    /// Drains and executes the current queue once without blocking
    /// (used by tests to pin coalescing deterministically).  Returns the
    /// number of items processed.
    pub fn drain_once(&self) -> usize {
        let batch = std::mem::take(
            &mut self
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue,
        );
        let n = batch.len();
        self.run_batch(batch);
        n
    }

    /// Begins shutdown: rejects new submissions and wakes the worker to
    /// drain the remainder.
    pub fn shutdown(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .shutdown = true;
        self.cv.notify_all();
    }

    /// Answers one expired item and counts it.
    fn expire(&self, item: &Pending, when: &str) {
        self.counters
            .deadline_expired
            .fetch_add(1, Ordering::Relaxed);
        let _ = item.reply.send(Err((
            ErrorKind::DeadlineExceeded,
            format!("deadline expired before {when}"),
        )));
    }

    /// Groups the drained items by `(version, kind)` in first-seen order
    /// and executes one batched call per group.  Before grouping, each
    /// item's cache key is probed: hits reply immediately and never enter
    /// a group.
    fn run_batch(&self, batch: Vec<Pending>) {
        if !batch.is_empty() {
            let n = batch.len() as u64;
            self.counters.gulps.fetch_add(1, Ordering::Relaxed);
            self.counters.gulp_items.fetch_add(n, Ordering::Relaxed);
            self.counters.max_gulp.fetch_max(n, Ordering::Relaxed);
            self.telemetry.gulp_size.record(n);
        }
        let now = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for item in batch {
            // Queue wait is recorded for every drained item — hits,
            // expirations, and executed members alike — so the histogram's
            // count mirrors the gulp_items counter exactly.
            let wait = now.saturating_duration_since(item.enqueued);
            self.telemetry.batch_queue_wait.record_duration(wait);
            if item.deadline <= now {
                self.telemetry.span_at(
                    item.request_id,
                    Stage::BatchQueue,
                    item.enqueued,
                    wait,
                    Outcome::Deadline,
                );
                self.expire(&item, "the batch ran");
                continue;
            }
            self.telemetry.span_at(
                item.request_id,
                Stage::BatchQueue,
                item.enqueued,
                wait,
                Outcome::Ok,
            );
            if let Some(key) = &item.key {
                if let Some(data) = self.cache.probe(key) {
                    self.telemetry
                        .cache_hit_service
                        .record_duration(item.enqueued.elapsed());
                    self.telemetry
                        .span(item.request_id, Stage::Cache, now, Outcome::Hit);
                    let _ = item.reply.send(Ok(data));
                    continue;
                }
            }
            live.push(item);
        }
        let mut groups: Vec<(bool, Arc<ModelVersion>, Vec<Pending>)> = Vec::new();
        for item in live {
            let is_eval = matches!(item.call, Call::Eval(_));
            match groups
                .iter_mut()
                .find(|(e, v, _)| *e == is_eval && Arc::ptr_eq(v, &item.version))
            {
                Some((_, _, members)) => members.push(item),
                None => groups.push((is_eval, Arc::clone(&item.version), vec![item])),
            }
        }
        // One scratch slab per gulp, reused across groups: replies go out
        // through `&Sender`, so groups are walked by reference and the
        // borrowed input views are rebuilt in place instead of allocating
        // fresh Vecs per group.
        let mut pairs: Vec<(&[f64], &[f64])> = Vec::new();
        let mut polytopes: Vec<&Vec<Vec<f64>>> = Vec::new();
        for (is_eval, version, members) in &mut groups {
            // Re-check deadlines right before this group executes: earlier
            // groups' compute time may have expired members that were live
            // at the pre-batch sweep, and they must not pay for a forward
            // pass into a dead reply channel.
            let now = Instant::now();
            members.retain(|m| {
                if m.deadline <= now {
                    self.expire(m, "its group ran");
                    false
                } else {
                    true
                }
            });
            if members.is_empty() {
                continue;
            }
            if *is_eval {
                // The decoupled forward with both channels at the same
                // point is the served model's semantics (identical to
                // `ddnn.forward` point by point, batched here).
                pairs.clear();
                pairs.extend(
                    members
                        .iter()
                        .flat_map(|m| match &m.call {
                            Call::Eval(inputs) => inputs.iter(),
                            Call::LinRegions(_) => {
                                unreachable!("eval group holds eval calls")
                            }
                        })
                        .map(|x| (x.as_slice(), x.as_slice())),
                );
                self.run_eval_group(version, members, &pairs);
            } else {
                polytopes.clear();
                polytopes.extend(members.iter().flat_map(|m| match &m.call {
                    Call::LinRegions(polys) => polys.iter(),
                    Call::Eval(_) => unreachable!("lin group holds lin_regions calls"),
                }));
                self.run_lin_group(version, members, &polytopes);
            }
        }
    }

    /// Fills the cache with a member's computed payload — unless the
    /// member's deadline expired while its group ran, in which case the
    /// fill is skipped (and counted): the reply channel is likely dead,
    /// and a payload nobody received must not churn the LRU.
    fn fill_from(&self, member: &Pending, data: &ReplyData) {
        if let Some(key) = &member.key {
            if member.deadline <= Instant::now() {
                self.cache.skip_fill();
            } else {
                self.cache.fill(*key, data);
            }
        }
    }

    fn run_eval_group(
        &self,
        version: &ModelVersion,
        members: &[Pending],
        pairs: &[(&[f64], &[f64])],
    ) {
        let exec_start = Instant::now();
        let outputs = version.ddnn.forward_decoupled_batch_in(&self.pool, pairs);
        let exec = exec_start.elapsed();
        self.telemetry.batch_exec.record_duration(exec);
        self.counters.eval_batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .eval_points
            .fetch_add(pairs.len() as u64, Ordering::Relaxed);
        let mut outputs = outputs.into_iter();
        for member in members {
            let Call::Eval(inputs) = &member.call else {
                unreachable!("eval group holds eval calls")
            };
            let slice: Vec<Vec<f64>> = outputs.by_ref().take(inputs.len()).collect();
            let data = ReplyData::Outputs(slice);
            self.fill_from(member, &data);
            // Spans and service time land before the reply wakes the
            // connection thread, so a slow request's promotion scan always
            // finds its chain complete.
            self.telemetry.span_at(
                member.request_id,
                Stage::BatchExec,
                exec_start,
                exec,
                Outcome::Ok,
            );
            self.telemetry
                .cache_miss_service
                .record_duration(member.enqueued.elapsed());
            let _ = member.reply.send(Ok(data));
        }
    }

    fn run_lin_group(
        &self,
        version: &ModelVersion,
        members: &[Pending],
        polytopes: &[&Vec<Vec<f64>>],
    ) {
        // Value edits never move the linear regions (Theorem 4.6), so every
        // version's regions are its activation network's regions.
        let exec_start = Instant::now();
        let result = prdnn_syrenn::lin_regions_batch_in(
            &self.pool,
            version.ddnn.activation_network(),
            polytopes,
        );
        self.counters.lin_batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .lin_polytopes
            .fetch_add(polytopes.len() as u64, Ordering::Relaxed);
        match result {
            Ok(all_regions) => {
                let exec = exec_start.elapsed();
                self.telemetry.batch_exec.record_duration(exec);
                let mut regions = all_regions.into_iter();
                for member in members {
                    let Call::LinRegions(polys) = &member.call else {
                        unreachable!("lin group holds lin_regions calls")
                    };
                    let slice: Vec<Vec<LinearRegion>> =
                        regions.by_ref().take(polys.len()).collect();
                    let data = ReplyData::Regions(slice);
                    self.fill_from(member, &data);
                    self.telemetry.span_at(
                        member.request_id,
                        Stage::BatchExec,
                        exec_start,
                        exec,
                        Outcome::Ok,
                    );
                    self.telemetry
                        .cache_miss_service
                        .record_duration(member.enqueued.elapsed());
                    let _ = member.reply.send(Ok(data));
                }
            }
            Err(_) => {
                // `lin_regions_batch_in` reports the first failing
                // polytope as a batch-level error (e.g. one member sent a
                // degenerate segment the cheap pre-validation cannot
                // catch).  One bad request must not fail the others it
                // happened to be coalesced with, so isolate: re-run each
                // member on its own and deliver per-member verdicts.  The
                // re-runs are accounted under `lin_rescue_calls`, not
                // `lin_batches`/`lin_polytopes`, which track coalesced
                // work only — rescue work must not inflate mean-gulp
                // metrics.
                for member in members {
                    let Call::LinRegions(polys) = &member.call else {
                        unreachable!("lin group holds lin_regions calls")
                    };
                    self.counters
                        .lin_rescue_calls
                        .fetch_add(1, Ordering::Relaxed);
                    let reply = match prdnn_syrenn::lin_regions_batch_in(
                        &self.pool,
                        version.ddnn.activation_network(),
                        polys,
                    ) {
                        Ok(regions) => {
                            let data = ReplyData::Regions(regions);
                            self.fill_from(member, &data);
                            Ok(data)
                        }
                        Err(e) => Err((ErrorKind::BadRequest, e.to_string())),
                    };
                    // The rescue span covers the batched attempt plus this
                    // member's solo re-run; its outcome is the verdict the
                    // member actually received.
                    let outcome = if reply.is_ok() {
                        Outcome::Ok
                    } else {
                        Outcome::Error
                    };
                    self.telemetry
                        .span(member.request_id, Stage::BatchExec, exec_start, outcome);
                    self.telemetry
                        .cache_miss_service
                        .record_duration(member.enqueued.elapsed());
                    let _ = member.reply.send(reply);
                }
                // The failed batched call still consumed pool time: charge
                // the whole attempt-plus-rescues window once.
                self.telemetry
                    .batch_exec
                    .record_duration(exec_start.elapsed());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ModelStore;
    use prdnn_core::DecoupledNetwork;
    use prdnn_datasets::registry;
    use std::time::Duration;

    fn version_of(spec: &str) -> Arc<ModelVersion> {
        let store = ModelStore::new();
        store
            .load(
                "m",
                DecoupledNetwork::from_network(&registry::build_model(spec).unwrap()),
                spec.to_owned(),
            )
            .unwrap()
    }

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(60)
    }

    /// The pre-cache batcher the legacy tests pin: caching disabled.
    fn batcher_without_cache(threads: usize, cap: usize) -> Batcher {
        let pool = Arc::new(prdnn_par::pool_for(Some(threads)));
        Batcher::new(
            pool,
            cap,
            Arc::new(ResultCache::disabled()),
            Telemetry::new(0),
        )
    }

    /// A batcher with a generous enabled cache.
    fn batcher_with_cache(threads: usize, cap: usize) -> Batcher {
        let pool = Arc::new(prdnn_par::pool_for(Some(threads)));
        Batcher::new(
            pool,
            cap,
            Arc::new(ResultCache::new(1 << 20)),
            Telemetry::new(0),
        )
    }

    #[test]
    fn concurrent_evals_coalesce_into_one_batch_with_exact_results() {
        let batcher = batcher_without_cache(2, 16);
        let version = version_of("mlp:5:3x8x2");
        let net = registry::build_model("mlp:5:3x8x2").unwrap();

        // Three requests queued before any drain: must coalesce into ONE
        // batched call covering all five points.
        let requests: Vec<Vec<Vec<f64>>> = vec![
            vec![vec![0.1, 0.2, 0.3], vec![-0.5, 0.0, 0.5]],
            vec![vec![1.0, -1.0, 0.25]],
            vec![vec![0.0, 0.0, 0.0], vec![0.9, 0.8, 0.7]],
        ];
        let receivers: Vec<_> = requests
            .iter()
            .map(|inputs| {
                batcher
                    .submit(
                        Arc::clone(&version),
                        Call::Eval(inputs.clone()),
                        far_deadline(),
                        0,
                    )
                    .unwrap()
            })
            .collect();
        assert_eq!(batcher.drain_once(), 3);
        assert_eq!(batcher.counters.eval_batches.load(Ordering::Relaxed), 1);
        assert_eq!(batcher.counters.eval_points.load(Ordering::Relaxed), 5);
        assert_eq!(batcher.counters.gulps.load(Ordering::Relaxed), 1);
        assert_eq!(batcher.counters.gulp_items.load(Ordering::Relaxed), 3);
        assert_eq!(batcher.counters.max_gulp.load(Ordering::Relaxed), 3);
        for (inputs, rx) in requests.iter().zip(receivers) {
            let ReplyData::Outputs(outputs) = rx.recv().unwrap().unwrap() else {
                panic!("expected outputs")
            };
            assert_eq!(outputs.len(), inputs.len());
            for (x, y) in inputs.iter().zip(&outputs) {
                // Bit-identical to the direct library call.
                assert_eq!(y, &net.forward(x));
            }
        }
    }

    #[test]
    fn overload_deadline_and_shutdown_are_enforced() {
        let batcher = batcher_without_cache(1, 1);
        let version = version_of("n1");

        let _held = batcher
            .submit(
                Arc::clone(&version),
                Call::Eval(vec![vec![0.5]]),
                far_deadline(),
                0,
            )
            .unwrap();
        let err = batcher
            .submit(
                Arc::clone(&version),
                Call::Eval(vec![vec![0.5]]),
                far_deadline(),
                0,
            )
            .unwrap_err();
        assert_eq!(err.0, ErrorKind::Overloaded);

        // Expired deadline: answered without evaluating.
        batcher.drain_once();
        let rx = batcher
            .submit(
                Arc::clone(&version),
                Call::Eval(vec![vec![0.5]]),
                Instant::now() - Duration::from_millis(1),
                0,
            )
            .unwrap();
        batcher.drain_once();
        assert_eq!(
            rx.recv().unwrap().unwrap_err().0,
            ErrorKind::DeadlineExceeded
        );
        assert_eq!(batcher.counters.eval_batches.load(Ordering::Relaxed), 1);
        assert_eq!(batcher.counters.deadline_expired.load(Ordering::Relaxed), 1);

        batcher.shutdown();
        let err = batcher
            .submit(version, Call::Eval(vec![vec![0.5]]), far_deadline(), 0)
            .unwrap_err();
        assert_eq!(err.0, ErrorKind::ShuttingDown);
    }

    #[test]
    fn degenerate_polytope_does_not_fail_its_batchmates() {
        let batcher = batcher_without_cache(1, 16);
        let version = version_of("n1");

        // A degenerate segment (identical endpoints) coalesced with a
        // valid one: only the degenerate request may fail.
        let bad = batcher
            .submit(
                Arc::clone(&version),
                Call::LinRegions(vec![vec![vec![0.5], vec![0.5]]]),
                far_deadline(),
                0,
            )
            .unwrap();
        let good = batcher
            .submit(
                Arc::clone(&version),
                Call::LinRegions(vec![vec![vec![-1.0], vec![2.0]]]),
                far_deadline(),
                0,
            )
            .unwrap();
        assert_eq!(batcher.drain_once(), 2);
        let (kind, message) = bad.recv().unwrap().unwrap_err();
        assert_eq!(kind, ErrorKind::BadRequest);
        assert!(message.contains("degenerate"), "{message}");
        let ReplyData::Regions(regions) = good.recv().unwrap().unwrap() else {
            panic!("valid batchmate must still succeed")
        };
        assert_eq!(regions[0].len(), 3);
        // Both members re-ran individually; the rescue calls are counted
        // apart from the coalesced lin_batches/lin_polytopes.
        assert_eq!(batcher.counters.lin_rescue_calls.load(Ordering::Relaxed), 2);
        assert_eq!(batcher.counters.lin_batches.load(Ordering::Relaxed), 1);
        assert_eq!(batcher.counters.lin_polytopes.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn lin_regions_group_matches_direct_calls() {
        let batcher = batcher_without_cache(1, 16);
        let version = version_of("n1");
        let net = registry::build_model("n1").unwrap();

        let segment = vec![vec![-1.0], vec![2.0]];
        let rx = batcher
            .submit(
                Arc::clone(&version),
                Call::LinRegions(vec![segment.clone()]),
                far_deadline(),
                0,
            )
            .unwrap();
        batcher.drain_once();
        let ReplyData::Regions(regions) = rx.recv().unwrap().unwrap() else {
            panic!("expected regions")
        };
        let direct = prdnn_syrenn::lin_regions(&net, &segment).unwrap();
        assert_eq!(regions[0], direct);
        // N1 has three linear regions on [-1, 2].
        assert_eq!(regions[0].len(), 3);
    }

    #[test]
    fn cache_hits_are_bit_identical_and_skip_the_pool() {
        let batcher = batcher_with_cache(1, 16);
        let version = version_of("mlp:5:3x8x2");
        let net = registry::build_model("mlp:5:3x8x2").unwrap();
        let inputs = vec![vec![0.1, 0.2, 0.3], vec![-0.5, 0.0, 0.5]];

        let submit_eval = || {
            batcher
                .submit(
                    Arc::clone(&version),
                    Call::Eval(inputs.clone()),
                    far_deadline(),
                    0,
                )
                .unwrap()
        };
        let first = submit_eval();
        batcher.drain_once();
        let second = submit_eval();
        batcher.drain_once();
        // The second drain answered from the cache: still one pool call.
        assert_eq!(batcher.counters.eval_batches.load(Ordering::Relaxed), 1);
        let c = &batcher.cache.counters;
        assert_eq!(c.hits.load(Ordering::Relaxed), 1);
        assert_eq!(c.misses.load(Ordering::Relaxed), 1);
        assert_eq!(c.inserts.load(Ordering::Relaxed), 1);
        for rx in [first, second] {
            let ReplyData::Outputs(outputs) = rx.recv().unwrap().unwrap() else {
                panic!("expected outputs")
            };
            // Both the miss and the hit are bit-identical to the direct
            // library call.
            for (x, y) in inputs.iter().zip(&outputs) {
                assert_eq!(y, &net.forward(x));
            }
        }

        // Same story for lin_regions.
        let segment = vec![vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]];
        let submit_lin = || {
            batcher
                .submit(
                    Arc::clone(&version),
                    Call::LinRegions(vec![segment.clone()]),
                    far_deadline(),
                    0,
                )
                .unwrap()
        };
        let first = submit_lin();
        batcher.drain_once();
        let second = submit_lin();
        batcher.drain_once();
        assert_eq!(batcher.counters.lin_batches.load(Ordering::Relaxed), 1);
        let direct = prdnn_syrenn::lin_regions(&net, &segment).unwrap();
        for rx in [first, second] {
            let ReplyData::Regions(regions) = rx.recv().unwrap().unwrap() else {
                panic!("expected regions")
            };
            assert_eq!(regions[0], direct);
        }
    }

    #[test]
    fn repaired_version_misses_parent_eval_entries_but_shares_lin_entries() {
        let batcher = batcher_with_cache(1, 16);
        let v1 = version_of("n1");
        // A value-only repair of layer 0, exactly what `publish_repair`
        // stores: same activation channel, patched value channel.
        let mut repaired = DecoupledNetwork::from_network(&registry::build_model("n1").unwrap());
        let params = repaired.value_network().layer(0).num_params();
        repaired.apply_value_delta(0, &vec![0.5; params]);
        let v2 = Arc::new(ModelVersion::new(
            "m".to_owned(),
            2,
            repaired,
            "repair of m@v1".to_owned(),
            None,
        ));

        let input = vec![vec![0.5]];
        let eval = |version: &Arc<ModelVersion>| {
            let rx = batcher
                .submit(
                    Arc::clone(version),
                    Call::Eval(input.clone()),
                    far_deadline(),
                    0,
                )
                .unwrap();
            batcher.drain_once();
            let ReplyData::Outputs(outputs) = rx.recv().unwrap().unwrap() else {
                panic!("expected outputs")
            };
            outputs
        };
        let from_v1 = eval(&v1);
        let from_v2 = eval(&v2);
        let c = &batcher.cache.counters;
        // The repaired version's eval key differs (value channel changed):
        // both evals were misses, and the answers actually differ.
        assert_eq!(c.hits.load(Ordering::Relaxed), 0);
        assert_eq!(c.misses.load(Ordering::Relaxed), 2);
        assert_ne!(
            from_v1, from_v2,
            "a stale hit would have returned v1's outputs"
        );

        // lin_regions keys off the activation channel alone, which the
        // value-only repair preserved: v2 legitimately hits v1's entry.
        let segment = vec![vec![-1.0], vec![2.0]];
        let lin = |version: &Arc<ModelVersion>| {
            let rx = batcher
                .submit(
                    Arc::clone(version),
                    Call::LinRegions(vec![segment.clone()]),
                    far_deadline(),
                    0,
                )
                .unwrap();
            batcher.drain_once();
            let ReplyData::Regions(regions) = rx.recv().unwrap().unwrap() else {
                panic!("expected regions")
            };
            regions
        };
        let lin_v1 = lin(&v1);
        let lin_v2 = lin(&v2);
        assert_eq!(
            c.hits.load(Ordering::Relaxed),
            1,
            "v2 shares v1's lin entry"
        );
        assert_eq!(batcher.counters.lin_batches.load(Ordering::Relaxed), 1);
        assert_eq!(lin_v1, lin_v2);
        let direct =
            prdnn_syrenn::lin_regions(&registry::build_model("n1").unwrap(), &segment).unwrap();
        assert_eq!(lin_v1[0], direct);
    }
}
