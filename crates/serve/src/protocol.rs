//! The wire protocol: length-prefixed JSON frames and the request/response
//! vocabulary.
//!
//! Every message is one frame: a 4-byte big-endian length followed by that
//! many bytes of UTF-8 JSON ([`serde::json`]).  Frames above
//! [`MAX_FRAME_LEN`] are rejected *before* any allocation, truncated frames
//! are I/O errors, and malformed JSON is reported with the parser's byte
//! offset — the server never panics on untrusted input.
//!
//! Floating-point payloads (model weights, eval inputs/outputs) use the
//! JSON writer's shortest-round-trip formatting, so a value crossing the
//! wire arrives bit-identical — the end-to-end tests assert served results
//! equal direct library calls exactly.

use prdnn_core::{OutputPolytope, PointSpec, RepairConfig};
use prdnn_linalg::Matrix;
use serde::json::Value;
use std::io::{self, Read, Write};
use std::time::Instant;

/// Upper bound on a frame's payload length (16 MiB): far above any
/// legitimate request, far below an allocation-of-death.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Errors surfaced while reading a frame.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly before a frame started.
    Closed,
    /// The 4-byte header announced more than [`MAX_FRAME_LEN`] bytes.
    Oversized(usize),
    /// The header announced an empty frame.
    Empty,
    /// A socket read/write timeout expired (the peer stalled mid-frame);
    /// distinct from [`FrameError::Io`] so both ends can classify a
    /// slowloris-style stall separately from a broken stream.
    TimedOut,
    /// The stream ended or failed mid-frame.
    Io(io::Error),
    /// The payload was not valid UTF-8 JSON.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Oversized(len) => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte cap"
                )
            }
            FrameError::Empty => write!(f, "empty frame"),
            FrameError::TimedOut => write!(f, "socket timeout mid-frame"),
            FrameError::Io(e) => write!(f, "i/o error mid-frame: {e}"),
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Whether an I/O error is a socket read/write timeout.  Unix reports an
/// expired `set_read_timeout` as `WouldBlock`; Windows as `TimedOut`.
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn io_frame_error(e: io::Error) -> FrameError {
    if is_timeout(&e) {
        FrameError::TimedOut
    } else {
        FrameError::Io(e)
    }
}

/// Writes one length-prefixed JSON frame.
///
/// # Errors
///
/// I/O errors from the underlying writer; `InvalidData` if the encoded
/// document exceeds [`MAX_FRAME_LEN`] (nothing is written in that case).
pub fn write_frame(w: &mut impl Write, value: &Value) -> io::Result<()> {
    let body = value.to_json();
    if body.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds the cap", body.len()),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Reads one length-prefixed JSON frame.
///
/// # Errors
///
/// See [`FrameError`]; a clean close before the header is
/// [`FrameError::Closed`], a close mid-header or mid-body is an I/O error
/// (truncated frame).
pub fn read_frame(r: &mut impl Read) -> Result<Value, FrameError> {
    read_frame_timed(r).map(|(v, _)| v)
}

/// Like [`read_frame`], but also reports when the frame's first bytes
/// arrived.  The instant is captured after the first successful header
/// read, so idle time between requests is excluded while a peer that
/// trickles a frame in (or a proxy that delays mid-frame) *is* charged —
/// this is the request arrival time the server's telemetry measures from.
///
/// # Errors
///
/// See [`read_frame`].
pub fn read_frame_timed(r: &mut impl Read) -> Result<(Value, Instant), FrameError> {
    let mut header = [0u8; 4];
    // Distinguish "no frame at all" (clean close) from a truncated header.
    let arrival = match r.read(&mut header) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(n) => {
            let arrival = Instant::now();
            r.read_exact(&mut header[n..]).map_err(io_frame_error)?;
            arrival
        }
        Err(e) => return Err(io_frame_error(e)),
    };
    let len = u32::from_be_bytes(header) as usize;
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized(len));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(io_frame_error)?;
    let text = std::str::from_utf8(&body)
        .map_err(|e| FrameError::Malformed(format!("invalid UTF-8: {e}")))?;
    let value = Value::parse(text).map_err(|e| FrameError::Malformed(e.to_string()))?;
    Ok((value, arrival))
}

/// The optional `request_id` correlation field of a request document.
/// Clients may set it themselves (values should stay below 2^53 so JSON
/// numbers round-trip exactly); the server assigns one otherwise and
/// echoes it in every response.  Ids ride next to the typed payload so
/// the [`Request`]/[`Response`] codecs stay id-agnostic.
pub fn request_id_of(v: &Value) -> Option<u64> {
    match v.get("request_id") {
        Some(Value::Num(n)) if *n >= 1.0 && n.fract() == 0.0 && *n <= 9.0e15 => Some(*n as u64),
        _ => None,
    }
}

/// Stamps `request_id` onto an encoded request or response document.
pub fn embed_request_id(v: &mut Value, request_id: u64) {
    if let Value::Obj(fields) = v {
        fields.retain(|(k, _)| k != "request_id");
        fields.push(("request_id".to_owned(), Value::Num(request_id as f64)));
    }
}

/// A reference to a stored model: a name plus an optional pinned version
/// (`None` = latest).
///
/// The textual forms are `"name"`, `"name@latest"`, and `"name@vN"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRef {
    /// The model's name in the store.
    pub name: String,
    /// Pinned version, or `None` for latest.
    pub version: Option<u32>,
}

impl ModelRef {
    /// A reference to the latest version of `name`.
    pub fn latest(name: impl Into<String>) -> Self {
        ModelRef {
            name: name.into(),
            version: None,
        }
    }

    /// A reference to a specific version of `name`.
    pub fn version(name: impl Into<String>, version: u32) -> Self {
        ModelRef {
            name: name.into(),
            version: Some(version),
        }
    }

    /// Parses `"name"`, `"name@latest"`, or `"name@vN"`.
    ///
    /// # Errors
    ///
    /// Returns a message for empty names and malformed version suffixes.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (name, suffix) = match s.split_once('@') {
            None => (s, None),
            Some((name, suffix)) => (name, Some(suffix)),
        };
        if name.is_empty() {
            return Err(format!("model reference {s:?}: empty model name"));
        }
        let version = match suffix {
            None | Some("latest") => None,
            Some(v) => match v.strip_prefix('v').and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n > 0 => Some(n),
                _ => {
                    return Err(format!(
                        "model reference {s:?}: expected \"@latest\" or \"@vN\""
                    ))
                }
            },
        };
        Ok(ModelRef {
            name: name.to_owned(),
            version,
        })
    }
}

impl std::fmt::Display for ModelRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.version {
            None => write!(f, "{}@latest", self.name),
            Some(v) => write!(f, "{}@v{}", self.name, v),
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Load a model built by a `prdnn-datasets` generator spec and publish
    /// it as version 1 of `name`.
    LoadGenerator {
        /// Store name for the new model.
        name: String,
        /// Generator spec (see `prdnn_datasets::registry`).
        generator: String,
    },
    /// Load a model from its serialised JSON form (see `prdnn_nn::io`).
    LoadNetwork {
        /// Store name for the new model.
        name: String,
        /// The network document.
        network: Value,
    },
    /// Evaluate a model version on a batch of inputs.
    Eval {
        /// Which model version.
        model: ModelRef,
        /// The input points.
        inputs: Vec<Vec<f64>>,
        /// Per-request deadline override in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Compute the linear regions of a model version restricted to input
    /// polytopes (segments or planar polygons given by vertices).
    LinRegions {
        /// Which model version.
        model: ModelRef,
        /// One vertex list per polytope.
        polytopes: Vec<Vec<Vec<f64>>>,
        /// Per-request deadline override in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Enqueue a provable point repair; the reply carries a job id to poll.
    Repair {
        /// Which model version to repair (the new version's parent).
        model: ModelRef,
        /// The layer to repair.
        layer: usize,
        /// The pointwise specification to enforce.
        spec: PointSpec,
        /// Repair configuration (thread count is server-controlled).
        config: RepairConfig,
    },
    /// Poll a repair job.
    JobStatus {
        /// The id returned by [`Response::JobQueued`].
        job: u64,
    },
    /// Fetch a model version's full serialised form (both DDNN channels
    /// plus provenance) — the durability e2e uses this to check recovered
    /// weights bit-for-bit against what was acknowledged.
    GetNetwork {
        /// Which model version.
        model: ModelRef,
    },
    /// List stored models and their latest versions.
    ListModels,
    /// List every version of one model with provenance.
    ListVersions {
        /// The model name.
        name: String,
    },
    /// Read the server's request/batch counters.
    Stats,
    /// Read every counter as Prometheus text exposition format (the same
    /// numbers as [`Request::Stats`], rendered for scrapers).
    Metrics,
    /// Read the retained slow-request span chains (see the `telemetry`
    /// module): requests whose server residence crossed `--slow-ms`.
    Trace,
    /// Begin graceful shutdown: stop accepting, drain queues, exit.
    Shutdown,
}

impl Request {
    /// The request's wire tag, used as its telemetry kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::LoadGenerator { .. } => "load_generator",
            Request::LoadNetwork { .. } => "load_network",
            Request::Eval { .. } => "eval",
            Request::LinRegions { .. } => "lin_regions",
            Request::Repair { .. } => "repair",
            Request::JobStatus { .. } => "job_status",
            Request::GetNetwork { .. } => "get_network",
            Request::ListModels => "list_models",
            Request::ListVersions { .. } => "list_versions",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Trace => "trace",
            Request::Shutdown => "shutdown",
        }
    }
}

/// One linear region on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionWire {
    /// The region's vertices in input space.
    pub vertices: Vec<Vec<f64>>,
    /// A point in the region's relative interior.
    pub interior: Vec<f64>,
}

/// One model version's provenance on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionInfo {
    /// The version number (1 = originally loaded model).
    pub version: u32,
    /// Where the version came from (generator spec, file, or parent repair).
    pub source: String,
    /// Content hash of the repair spec, as `0x`-prefixed hex (repairs only).
    pub spec_hash: Option<String>,
    /// ℓ1 norm of the repair delta (repairs only).
    pub delta_l1: Option<f64>,
    /// ℓ∞ norm of the repair delta (repairs only).
    pub delta_linf: Option<f64>,
    /// The repaired layer (repairs only).
    pub layer: Option<usize>,
}

/// A repair job's state on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Waiting in the FIFO.
    Queued,
    /// A worker is running the repair.
    Running,
    /// The repair succeeded and published `version`.
    Done {
        /// The model the new version belongs to.
        model: String,
        /// The published version number.
        version: u32,
        /// ℓ1 norm of the applied delta.
        delta_l1: f64,
        /// ℓ∞ norm of the applied delta.
        delta_linf: f64,
        /// Simplex pivots the repair's LP solve performed.
        lp_pivots: u64,
        /// Basis refactorisations the repair's LP solve performed.
        lp_refactorizations: u64,
    },
    /// The repair failed (infeasible spec, iteration limit, bad layer, ...).
    Failed {
        /// Human-readable failure reason.
        message: String,
    },
}

/// Server request/batch counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// `eval` requests answered through the batcher.
    pub eval_requests: u64,
    /// Batched forward calls actually executed.
    pub eval_batches: u64,
    /// Input points pushed through those calls.
    pub eval_points: u64,
    /// `lin_regions` requests answered through the batcher.
    pub lin_requests: u64,
    /// Batched `lin_regions` calls actually executed.
    pub lin_batches: u64,
    /// Polytopes pushed through those calls.
    pub lin_polytopes: u64,
    /// Non-empty queue drains ("gulps") the batch worker performed.
    pub gulps: u64,
    /// Items drained across all gulps; `gulp_items / gulps` is the mean
    /// coalescing factor the server actually achieved.
    pub gulp_items: u64,
    /// Largest single gulp observed.
    pub max_gulp: u64,
    /// Repair jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Repair jobs finished successfully.
    pub jobs_completed: u64,
    /// Repair jobs that failed.
    pub jobs_failed: u64,
    /// Repair jobs currently waiting in the queue (a gauge).
    pub repair_queue_depth: u64,
    /// Repair jobs currently being executed by workers (a gauge).
    pub repair_in_flight: u64,
    /// Version-log records appended (and fsynced) to the WAL; zero under
    /// the in-memory backend.
    pub wal_appends: u64,
    /// Bytes appended to the WAL, frame headers included.
    pub wal_bytes: u64,
    /// Snapshot/compaction cycles completed.
    pub snapshots: u64,
    /// Versions reconstructed at cold start (snapshot + WAL tail).
    pub recovered_versions: u64,
    /// WAL-tail records replayed at cold start (subset of the above).
    pub recovered_wal_records: u64,
    /// Bytes dropped from the WAL tail during recovery (torn/corrupt
    /// final records).
    pub torn_tail_bytes: u64,
    /// WAL appends that failed and were rolled back (the publish surfaced
    /// a typed `unavailable` error); zero under the in-memory backend.
    pub wal_failed_appends: u64,
    /// Connections accepted into a handler.
    pub conns_opened: u64,
    /// Connections rejected at the cap with a typed `overloaded` frame.
    pub conns_rejected: u64,
    /// Connections currently open (a gauge, not a counter).
    pub open_connections: u64,
    /// Connections closed because a socket read/write timed out (stalled
    /// peer / slowloris).
    pub io_timeouts: u64,
    /// Batch requests shed with `overloaded` because the batch queue was
    /// full.
    pub batch_shed: u64,
    /// Repair jobs shed with `overloaded` because the job queue was full.
    pub jobs_shed: u64,
    /// Result-cache probes answered from the cache.
    pub cache_hits: u64,
    /// Result-cache probes that missed (the request ran on the pool).
    pub cache_misses: u64,
    /// Payloads inserted into the result cache.
    pub cache_inserts: u64,
    /// Entries evicted to stay inside the cache's byte budget.
    pub cache_evictions: u64,
    /// Cache fills skipped because the request's deadline had already
    /// expired when its batch finished.
    pub cache_fill_skips: u64,
    /// Bytes of payload currently held by the result cache (a gauge).
    pub cache_bytes: u64,
    /// Entries currently resident in the result cache (a gauge).
    pub cache_entries: u64,
    /// Requests that expired before their batch (or group) executed.
    pub deadline_expired: u64,
    /// Per-polytope `lin_regions` re-runs after a batched call failed
    /// (isolation rescue).
    pub lin_rescue_calls: u64,
    /// Simplex pivots across all completed repairs' LP solves.
    pub lp_pivots: u64,
    /// Basis refactorisations across all completed repairs' LP solves.
    pub lp_refactorizations: u64,
}

impl ServerStats {
    /// Every metric as `(name, help, is_gauge, value)` — the single table
    /// behind both [`Self::to_prometheus`] and the exhaustiveness test, so
    /// a counter added to the struct cannot silently miss the endpoint.
    fn metric_table(&self) -> Vec<(&'static str, &'static str, bool, u64)> {
        vec![
            (
                "eval_requests",
                "eval requests answered",
                false,
                self.eval_requests,
            ),
            (
                "eval_batches",
                "batched forward calls executed",
                false,
                self.eval_batches,
            ),
            (
                "eval_points",
                "input points evaluated",
                false,
                self.eval_points,
            ),
            (
                "lin_requests",
                "lin_regions requests answered",
                false,
                self.lin_requests,
            ),
            (
                "lin_batches",
                "batched lin_regions calls executed",
                false,
                self.lin_batches,
            ),
            (
                "lin_polytopes",
                "polytopes decomposed",
                false,
                self.lin_polytopes,
            ),
            ("gulps", "non-empty batch queue drains", false, self.gulps),
            (
                "gulp_items",
                "items drained across all gulps",
                false,
                self.gulp_items,
            ),
            (
                "max_gulp",
                "largest single gulp observed",
                false,
                self.max_gulp,
            ),
            (
                "jobs_submitted",
                "repair jobs accepted",
                false,
                self.jobs_submitted,
            ),
            (
                "jobs_completed",
                "repair jobs completed",
                false,
                self.jobs_completed,
            ),
            ("jobs_failed", "repair jobs failed", false, self.jobs_failed),
            (
                "repair_queue_depth",
                "repair jobs currently queued",
                true,
                self.repair_queue_depth,
            ),
            (
                "repair_in_flight",
                "repair jobs currently executing",
                true,
                self.repair_in_flight,
            ),
            (
                "wal_appends",
                "WAL records appended and fsynced",
                false,
                self.wal_appends,
            ),
            (
                "wal_bytes",
                "bytes appended to the WAL",
                false,
                self.wal_bytes,
            ),
            (
                "snapshots",
                "snapshot/compaction cycles",
                false,
                self.snapshots,
            ),
            (
                "recovered_versions",
                "versions recovered at cold start",
                false,
                self.recovered_versions,
            ),
            (
                "recovered_wal_records",
                "WAL tail records replayed at cold start",
                false,
                self.recovered_wal_records,
            ),
            (
                "torn_tail_bytes",
                "WAL tail bytes dropped during recovery",
                false,
                self.torn_tail_bytes,
            ),
            (
                "wal_failed_appends",
                "WAL appends that failed and rolled back",
                false,
                self.wal_failed_appends,
            ),
            (
                "conns_opened",
                "connections accepted",
                false,
                self.conns_opened,
            ),
            (
                "conns_rejected",
                "connections rejected at the cap",
                false,
                self.conns_rejected,
            ),
            (
                "open_connections",
                "connections currently open",
                true,
                self.open_connections,
            ),
            (
                "io_timeouts",
                "connections closed on socket timeout",
                false,
                self.io_timeouts,
            ),
            (
                "batch_shed",
                "batch requests shed as overloaded",
                false,
                self.batch_shed,
            ),
            (
                "jobs_shed",
                "repair jobs shed as overloaded",
                false,
                self.jobs_shed,
            ),
            ("cache_hits", "result cache hits", false, self.cache_hits),
            (
                "cache_misses",
                "result cache misses",
                false,
                self.cache_misses,
            ),
            (
                "cache_inserts",
                "result cache inserts",
                false,
                self.cache_inserts,
            ),
            (
                "cache_evictions",
                "result cache evictions",
                false,
                self.cache_evictions,
            ),
            (
                "cache_fill_skips",
                "cache fills skipped for expired deadlines",
                false,
                self.cache_fill_skips,
            ),
            (
                "cache_bytes",
                "payload bytes held by the result cache",
                true,
                self.cache_bytes,
            ),
            (
                "cache_entries",
                "entries resident in the result cache",
                true,
                self.cache_entries,
            ),
            (
                "deadline_expired",
                "requests expired before execution",
                false,
                self.deadline_expired,
            ),
            (
                "lin_rescue_calls",
                "per-polytope lin_regions rescue re-runs",
                false,
                self.lin_rescue_calls,
            ),
            (
                "lp_pivots",
                "simplex pivots across completed repairs",
                false,
                self.lp_pivots,
            ),
            (
                "lp_refactorizations",
                "LP basis refactorisations across completed repairs",
                false,
                self.lp_refactorizations,
            ),
        ]
    }

    /// Renders every counter in Prometheus text exposition format:
    /// `# HELP` / `# TYPE` / sample, one triple per metric, all names
    /// prefixed `prdnn_`.  Counters are cumulative since server start and
    /// carry the conventional `_total` suffix; point-in-time values
    /// (`open_connections`, `cache_bytes`, `cache_entries`,
    /// `repair_queue_depth`, `repair_in_flight`) are gauges and keep
    /// their bare names.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, help, gauge, value) in self.metric_table() {
            let (kind, suffix) = if gauge {
                ("gauge", "")
            } else {
                ("counter", "_total")
            };
            let _ = writeln!(out, "# HELP prdnn_{name}{suffix} {help}");
            let _ = writeln!(out, "# TYPE prdnn_{name}{suffix} {kind}");
            let _ = writeln!(out, "prdnn_{name}{suffix} {value}");
        }
        out
    }
}

/// Machine-readable error categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The named model is not in the store.
    UnknownModel,
    /// The model exists but the pinned version does not.
    UnknownVersion,
    /// The named job id was never issued.
    UnknownJob,
    /// The request was malformed or semantically invalid.
    BadRequest,
    /// A bounded queue was full; retry later.
    Overloaded,
    /// The per-request deadline expired before the batch ran.
    DeadlineExceeded,
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// The durable backend refused the operation (failed fsync, disk
    /// full); nothing was published — safe to retry once storage heals.
    Unavailable,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    fn as_str(self) -> &'static str {
        match self {
            ErrorKind::UnknownModel => "unknown_model",
            ErrorKind::UnknownVersion => "unknown_version",
            ErrorKind::UnknownJob => "unknown_job",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::Internal => "internal",
        }
    }

    fn from_str(s: &str) -> Result<Self, String> {
        Ok(match s {
            "unknown_model" => ErrorKind::UnknownModel,
            "unknown_version" => ErrorKind::UnknownVersion,
            "unknown_job" => ErrorKind::UnknownJob,
            "bad_request" => ErrorKind::BadRequest,
            "overloaded" => ErrorKind::Overloaded,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "shutting_down" => ErrorKind::ShuttingDown,
            "unavailable" => ErrorKind::Unavailable,
            "internal" => ErrorKind::Internal,
            other => return Err(format!("unknown error kind {other:?}")),
        })
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// A model was loaded and published.
    Loaded {
        /// The store name.
        name: String,
        /// The published version (always 1 for loads).
        version: u32,
    },
    /// Batched evaluation results, in request order.
    Outputs(Vec<Vec<f64>>),
    /// Linear regions, one list per requested polytope.
    Regions(Vec<Vec<RegionWire>>),
    /// A repair job was accepted.
    JobQueued {
        /// Id to poll with [`Request::JobStatus`].
        job: u64,
    },
    /// Reply to [`Request::JobStatus`].
    Job(JobState),
    /// Reply to [`Request::GetNetwork`].
    Network {
        /// The model name.
        name: String,
        /// The resolved version number.
        version: u32,
        /// Where the version came from.
        source: String,
        /// The activation channel (`prdnn_nn::io` document).
        activation: Value,
        /// The value channel (`prdnn_nn::io` document).
        value: Value,
        /// The repair provenance document (`None` for loaded versions).
        provenance: Option<Value>,
    },
    /// Reply to [`Request::ListModels`]: `(name, latest_version)` pairs.
    Models(Vec<(String, u32)>),
    /// Reply to [`Request::ListVersions`].
    Versions(Vec<VersionInfo>),
    /// Reply to [`Request::Stats`].
    Stats(ServerStats),
    /// Reply to [`Request::Metrics`]: Prometheus text exposition.
    Metrics {
        /// The rendered metrics document (see [`ServerStats::to_prometheus`]).
        text: String,
    },
    /// Reply to [`Request::Trace`]: recent slow-request span chains.
    Trace {
        /// An array of slow-request traces, oldest first.  Each entry is
        /// an object `{request_id, kind, total_ms, spans}` where `spans`
        /// is an array of `{stage, start_ms, duration_ms, outcome}`
        /// objects ordered by start time (`start_ms` is measured from
        /// server start).
        slow: Value,
    },
    /// Reply to [`Request::Shutdown`].
    ShuttingDown,
    /// The request failed.
    Error {
        /// Machine-readable category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
        /// For shed requests (`overloaded`): how long the server suggests
        /// waiting before a retry.  Advisory, not a promise.
        retry_after_ms: Option<u64>,
    },
}

impl Response {
    /// An error response with no retry hint.
    pub fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
        Response::Error {
            kind,
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// An error response carrying a retry-after hint (shed requests).
    pub fn error_retry_after(
        kind: ErrorKind,
        message: impl Into<String>,
        retry_after_ms: u64,
    ) -> Response {
        Response::Error {
            kind,
            message: message.into(),
            retry_after_ms: Some(retry_after_ms),
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn tagged(tag: &'static str, mut fields: Vec<(&'static str, Value)>) -> Value {
    let mut pairs = vec![("type", Value::Str(tag.to_owned()))];
    pairs.append(&mut fields);
    Value::obj(pairs)
}

fn points_to_value(points: &[Vec<f64>]) -> Value {
    Value::Arr(points.iter().map(|p| Value::num_array(p)).collect())
}

fn points_from_value(v: &Value, what: &str) -> Result<Vec<Vec<f64>>, String> {
    v.as_arr()
        .ok_or_else(|| format!("{what}: expected an array"))?
        .iter()
        .map(|p| {
            p.as_f64_vec()
                .ok_or_else(|| format!("{what}: expected arrays of numbers"))
        })
        .collect()
}

fn spec_to_value(spec: &PointSpec) -> Value {
    Value::obj([
        ("points", points_to_value(&spec.points)),
        (
            "constraints",
            Value::Arr(
                spec.constraints
                    .iter()
                    .map(|c| {
                        Value::obj([
                            ("rows", Value::Num(c.a.rows() as f64)),
                            ("cols", Value::Num(c.a.cols() as f64)),
                            ("a", Value::num_array(c.a.as_slice())),
                            ("b", Value::num_array(&c.b)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn spec_from_value(v: &Value) -> Result<PointSpec, String> {
    let points = points_from_value(v.get("points").ok_or("spec: missing \"points\"")?, "points")?;
    let constraints = v
        .get("constraints")
        .and_then(Value::as_arr)
        .ok_or("spec: missing \"constraints\" array")?
        .iter()
        .map(|c| {
            let rows = c
                .get("rows")
                .and_then(Value::as_usize)
                .ok_or("constraint: missing \"rows\"")?;
            let cols = c
                .get("cols")
                .and_then(Value::as_usize)
                .ok_or("constraint: missing \"cols\"")?;
            let a = c
                .get("a")
                .and_then(Value::as_f64_vec)
                .ok_or("constraint: missing \"a\"")?;
            let b = c
                .get("b")
                .and_then(Value::as_f64_vec)
                .ok_or("constraint: missing \"b\"")?;
            // Checked: crafted documents with huge dims must be rejected,
            // not wrapped past the size check in release builds.
            if Some(a.len()) != rows.checked_mul(cols) {
                return Err(format!(
                    "constraint: {} entries in \"a\" do not match rows {rows} × cols {cols}",
                    a.len()
                ));
            }
            if b.len() != rows {
                return Err(format!(
                    "constraint: {} entries in \"b\" but rows = {rows}",
                    b.len()
                ));
            }
            Ok(OutputPolytope::new(Matrix::from_flat(rows, cols, a), b))
        })
        .collect::<Result<Vec<_>, String>>()?;
    if points.len() != constraints.len() {
        return Err(format!(
            "spec: {} points but {} constraints",
            points.len(),
            constraints.len()
        ));
    }
    Ok(PointSpec {
        points,
        constraints,
    })
}

// The repair-config document format is owned by `prdnn_core` (it is shared
// with the durable version log's on-disk records); the wire simply embeds
// it.
fn config_to_value(config: &RepairConfig) -> Value {
    config.to_json()
}

fn config_from_value(v: &Value) -> Result<RepairConfig, String> {
    RepairConfig::from_json(v)
}

fn deadline_to_value(deadline_ms: Option<u64>) -> Value {
    deadline_ms.map_or(Value::Null, |ms| Value::Num(ms as f64))
}

fn deadline_from_value(v: &Value) -> Result<Option<u64>, String> {
    match v.get("deadline_ms") {
        None | Some(Value::Null) => Ok(None),
        Some(ms) => ms
            .as_usize()
            .map(|ms| Some(ms as u64))
            .ok_or_else(|| "deadline_ms must be a non-negative integer".to_owned()),
    }
}

impl Request {
    /// Encodes the request as a JSON document.
    pub fn to_value(&self) -> Value {
        match self {
            Request::Ping => tagged("ping", vec![]),
            Request::LoadGenerator { name, generator } => tagged(
                "load_generator",
                vec![
                    ("name", Value::Str(name.clone())),
                    ("generator", Value::Str(generator.clone())),
                ],
            ),
            Request::LoadNetwork { name, network } => tagged(
                "load_network",
                vec![
                    ("name", Value::Str(name.clone())),
                    ("network", network.clone()),
                ],
            ),
            Request::Eval {
                model,
                inputs,
                deadline_ms,
            } => tagged(
                "eval",
                vec![
                    ("model", Value::Str(model.to_string())),
                    ("inputs", points_to_value(inputs)),
                    ("deadline_ms", deadline_to_value(*deadline_ms)),
                ],
            ),
            Request::LinRegions {
                model,
                polytopes,
                deadline_ms,
            } => tagged(
                "lin_regions",
                vec![
                    ("model", Value::Str(model.to_string())),
                    (
                        "polytopes",
                        Value::Arr(polytopes.iter().map(|p| points_to_value(p)).collect()),
                    ),
                    ("deadline_ms", deadline_to_value(*deadline_ms)),
                ],
            ),
            Request::Repair {
                model,
                layer,
                spec,
                config,
            } => tagged(
                "repair",
                vec![
                    ("model", Value::Str(model.to_string())),
                    ("layer", Value::Num(*layer as f64)),
                    ("spec", spec_to_value(spec)),
                    ("config", config_to_value(config)),
                ],
            ),
            Request::JobStatus { job } => {
                tagged("job_status", vec![("job", Value::Num(*job as f64))])
            }
            Request::GetNetwork { model } => tagged(
                "get_network",
                vec![("model", Value::Str(model.to_string()))],
            ),
            Request::ListModels => tagged("list_models", vec![]),
            Request::ListVersions { name } => {
                tagged("list_versions", vec![("name", Value::Str(name.clone()))])
            }
            Request::Stats => tagged("stats", vec![]),
            Request::Metrics => tagged("metrics", vec![]),
            Request::Trace => tagged("trace", vec![]),
            Request::Shutdown => tagged("shutdown", vec![]),
        }
    }

    /// Decodes a request from a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field.
    pub fn from_value(v: &Value) -> Result<Request, String> {
        let tag = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or("request: missing \"type\"")?;
        let model_ref = || -> Result<ModelRef, String> {
            ModelRef::parse(
                v.get("model")
                    .and_then(Value::as_str)
                    .ok_or("request: missing \"model\"")?,
            )
        };
        let name = || -> Result<String, String> {
            Ok(v.get("name")
                .and_then(Value::as_str)
                .ok_or("request: missing \"name\"")?
                .to_owned())
        };
        match tag {
            "ping" => Ok(Request::Ping),
            "load_generator" => Ok(Request::LoadGenerator {
                name: name()?,
                generator: v
                    .get("generator")
                    .and_then(Value::as_str)
                    .ok_or("load_generator: missing \"generator\"")?
                    .to_owned(),
            }),
            "load_network" => Ok(Request::LoadNetwork {
                name: name()?,
                network: v
                    .get("network")
                    .ok_or("load_network: missing \"network\"")?
                    .clone(),
            }),
            "eval" => Ok(Request::Eval {
                model: model_ref()?,
                inputs: points_from_value(
                    v.get("inputs").ok_or("eval: missing \"inputs\"")?,
                    "inputs",
                )?,
                deadline_ms: deadline_from_value(v)?,
            }),
            "lin_regions" => Ok(Request::LinRegions {
                model: model_ref()?,
                polytopes: v
                    .get("polytopes")
                    .and_then(Value::as_arr)
                    .ok_or("lin_regions: missing \"polytopes\"")?
                    .iter()
                    .map(|p| points_from_value(p, "polytope"))
                    .collect::<Result<_, _>>()?,
                deadline_ms: deadline_from_value(v)?,
            }),
            "repair" => Ok(Request::Repair {
                model: model_ref()?,
                layer: v
                    .get("layer")
                    .and_then(Value::as_usize)
                    .ok_or("repair: missing \"layer\"")?,
                spec: spec_from_value(v.get("spec").ok_or("repair: missing \"spec\"")?)?,
                config: config_from_value(v.get("config").ok_or("repair: missing \"config\"")?)?,
            }),
            "job_status" => Ok(Request::JobStatus {
                job: v
                    .get("job")
                    .and_then(Value::as_usize)
                    .ok_or("job_status: missing \"job\"")? as u64,
            }),
            "get_network" => Ok(Request::GetNetwork {
                model: model_ref()?,
            }),
            "list_models" => Ok(Request::ListModels),
            "list_versions" => Ok(Request::ListVersions { name: name()? }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "trace" => Ok(Request::Trace),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type {other:?}")),
        }
    }
}

fn opt_num(v: Option<f64>) -> Value {
    v.map_or(Value::Null, Value::Num)
}

impl Response {
    /// Encodes the response as a JSON document.
    pub fn to_value(&self) -> Value {
        match self {
            Response::Pong => tagged("pong", vec![]),
            Response::Loaded { name, version } => tagged(
                "loaded",
                vec![
                    ("name", Value::Str(name.clone())),
                    ("version", Value::Num(*version as f64)),
                ],
            ),
            Response::Outputs(outputs) => {
                tagged("outputs", vec![("outputs", points_to_value(outputs))])
            }
            Response::Regions(per_polytope) => tagged(
                "regions",
                vec![(
                    "regions",
                    Value::Arr(
                        per_polytope
                            .iter()
                            .map(|regions| {
                                Value::Arr(
                                    regions
                                        .iter()
                                        .map(|r| {
                                            Value::obj([
                                                ("vertices", points_to_value(&r.vertices)),
                                                ("interior", Value::num_array(&r.interior)),
                                            ])
                                        })
                                        .collect(),
                                )
                            })
                            .collect(),
                    ),
                )],
            ),
            Response::JobQueued { job } => {
                tagged("job_queued", vec![("job", Value::Num(*job as f64))])
            }
            Response::Job(state) => {
                let (state_tag, mut fields) = match state {
                    JobState::Queued => ("queued", vec![]),
                    JobState::Running => ("running", vec![]),
                    JobState::Done {
                        model,
                        version,
                        delta_l1,
                        delta_linf,
                        lp_pivots,
                        lp_refactorizations,
                    } => (
                        "done",
                        vec![
                            ("model", Value::Str(model.clone())),
                            ("version", Value::Num(*version as f64)),
                            ("delta_l1", Value::Num(*delta_l1)),
                            ("delta_linf", Value::Num(*delta_linf)),
                            ("lp_pivots", Value::Num(*lp_pivots as f64)),
                            (
                                "lp_refactorizations",
                                Value::Num(*lp_refactorizations as f64),
                            ),
                        ],
                    ),
                    JobState::Failed { message } => {
                        ("failed", vec![("message", Value::Str(message.clone()))])
                    }
                };
                let mut all = vec![("state", Value::Str(state_tag.to_owned()))];
                all.append(&mut fields);
                tagged("job", all)
            }
            Response::Network {
                name,
                version,
                source,
                activation,
                value,
                provenance,
            } => tagged(
                "network",
                vec![
                    ("name", Value::Str(name.clone())),
                    ("version", Value::Num(*version as f64)),
                    ("source", Value::Str(source.clone())),
                    ("activation", activation.clone()),
                    ("value", value.clone()),
                    ("provenance", provenance.clone().unwrap_or(Value::Null)),
                ],
            ),
            Response::Models(models) => tagged(
                "models",
                vec![(
                    "models",
                    Value::Arr(
                        models
                            .iter()
                            .map(|(name, latest)| {
                                Value::obj([
                                    ("name", Value::Str(name.clone())),
                                    ("latest", Value::Num(*latest as f64)),
                                ])
                            })
                            .collect(),
                    ),
                )],
            ),
            Response::Versions(versions) => tagged(
                "versions",
                vec![(
                    "versions",
                    Value::Arr(
                        versions
                            .iter()
                            .map(|info| {
                                Value::obj([
                                    ("version", Value::Num(info.version as f64)),
                                    ("source", Value::Str(info.source.clone())),
                                    (
                                        "spec_hash",
                                        info.spec_hash.clone().map_or(Value::Null, Value::Str),
                                    ),
                                    ("delta_l1", opt_num(info.delta_l1)),
                                    ("delta_linf", opt_num(info.delta_linf)),
                                    (
                                        "layer",
                                        info.layer.map_or(Value::Null, |l| Value::Num(l as f64)),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                )],
            ),
            Response::Stats(stats) => tagged(
                "stats",
                vec![
                    ("eval_requests", Value::Num(stats.eval_requests as f64)),
                    ("eval_batches", Value::Num(stats.eval_batches as f64)),
                    ("eval_points", Value::Num(stats.eval_points as f64)),
                    ("lin_requests", Value::Num(stats.lin_requests as f64)),
                    ("lin_batches", Value::Num(stats.lin_batches as f64)),
                    ("lin_polytopes", Value::Num(stats.lin_polytopes as f64)),
                    ("gulps", Value::Num(stats.gulps as f64)),
                    ("gulp_items", Value::Num(stats.gulp_items as f64)),
                    ("max_gulp", Value::Num(stats.max_gulp as f64)),
                    ("jobs_submitted", Value::Num(stats.jobs_submitted as f64)),
                    ("jobs_completed", Value::Num(stats.jobs_completed as f64)),
                    ("jobs_failed", Value::Num(stats.jobs_failed as f64)),
                    (
                        "repair_queue_depth",
                        Value::Num(stats.repair_queue_depth as f64),
                    ),
                    (
                        "repair_in_flight",
                        Value::Num(stats.repair_in_flight as f64),
                    ),
                    ("wal_appends", Value::Num(stats.wal_appends as f64)),
                    ("wal_bytes", Value::Num(stats.wal_bytes as f64)),
                    ("snapshots", Value::Num(stats.snapshots as f64)),
                    (
                        "recovered_versions",
                        Value::Num(stats.recovered_versions as f64),
                    ),
                    (
                        "recovered_wal_records",
                        Value::Num(stats.recovered_wal_records as f64),
                    ),
                    ("torn_tail_bytes", Value::Num(stats.torn_tail_bytes as f64)),
                    (
                        "wal_failed_appends",
                        Value::Num(stats.wal_failed_appends as f64),
                    ),
                    ("conns_opened", Value::Num(stats.conns_opened as f64)),
                    ("conns_rejected", Value::Num(stats.conns_rejected as f64)),
                    (
                        "open_connections",
                        Value::Num(stats.open_connections as f64),
                    ),
                    ("io_timeouts", Value::Num(stats.io_timeouts as f64)),
                    ("batch_shed", Value::Num(stats.batch_shed as f64)),
                    ("jobs_shed", Value::Num(stats.jobs_shed as f64)),
                    ("cache_hits", Value::Num(stats.cache_hits as f64)),
                    ("cache_misses", Value::Num(stats.cache_misses as f64)),
                    ("cache_inserts", Value::Num(stats.cache_inserts as f64)),
                    ("cache_evictions", Value::Num(stats.cache_evictions as f64)),
                    (
                        "cache_fill_skips",
                        Value::Num(stats.cache_fill_skips as f64),
                    ),
                    ("cache_bytes", Value::Num(stats.cache_bytes as f64)),
                    ("cache_entries", Value::Num(stats.cache_entries as f64)),
                    (
                        "deadline_expired",
                        Value::Num(stats.deadline_expired as f64),
                    ),
                    (
                        "lin_rescue_calls",
                        Value::Num(stats.lin_rescue_calls as f64),
                    ),
                    ("lp_pivots", Value::Num(stats.lp_pivots as f64)),
                    (
                        "lp_refactorizations",
                        Value::Num(stats.lp_refactorizations as f64),
                    ),
                ],
            ),
            Response::Metrics { text } => {
                tagged("metrics", vec![("text", Value::Str(text.clone()))])
            }
            Response::Trace { slow } => tagged("trace", vec![("slow", slow.clone())]),
            Response::ShuttingDown => tagged("shutting_down", vec![]),
            Response::Error {
                kind,
                message,
                retry_after_ms,
            } => tagged(
                "error",
                vec![
                    ("kind", Value::Str(kind.as_str().to_owned())),
                    ("message", Value::Str(message.clone())),
                    (
                        "retry_after_ms",
                        retry_after_ms.map_or(Value::Null, |ms| Value::Num(ms as f64)),
                    ),
                ],
            ),
        }
    }

    /// Decodes a response from a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field.
    pub fn from_value(v: &Value) -> Result<Response, String> {
        let tag = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or("response: missing \"type\"")?;
        match tag {
            "pong" => Ok(Response::Pong),
            "loaded" => Ok(Response::Loaded {
                name: v
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("loaded: missing \"name\"")?
                    .to_owned(),
                version: v
                    .get("version")
                    .and_then(Value::as_usize)
                    .ok_or("loaded: missing \"version\"")? as u32,
            }),
            "outputs" => Ok(Response::Outputs(points_from_value(
                v.get("outputs").ok_or("outputs: missing \"outputs\"")?,
                "outputs",
            )?)),
            "regions" => Ok(Response::Regions(
                v.get("regions")
                    .and_then(Value::as_arr)
                    .ok_or("regions: missing \"regions\"")?
                    .iter()
                    .map(|regions| {
                        regions
                            .as_arr()
                            .ok_or("regions: expected arrays of regions")?
                            .iter()
                            .map(|r| {
                                Ok(RegionWire {
                                    vertices: points_from_value(
                                        r.get("vertices").ok_or("region: missing \"vertices\"")?,
                                        "vertices",
                                    )?,
                                    interior: r
                                        .get("interior")
                                        .and_then(Value::as_f64_vec)
                                        .ok_or("region: missing \"interior\"")?,
                                })
                            })
                            .collect::<Result<Vec<_>, String>>()
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            )),
            "job_queued" => Ok(Response::JobQueued {
                job: v
                    .get("job")
                    .and_then(Value::as_usize)
                    .ok_or("job_queued: missing \"job\"")? as u64,
            }),
            "job" => {
                let state = v
                    .get("state")
                    .and_then(Value::as_str)
                    .ok_or("job: missing \"state\"")?;
                Ok(Response::Job(match state {
                    "queued" => JobState::Queued,
                    "running" => JobState::Running,
                    "done" => JobState::Done {
                        model: v
                            .get("model")
                            .and_then(Value::as_str)
                            .ok_or("job: missing \"model\"")?
                            .to_owned(),
                        version: v
                            .get("version")
                            .and_then(Value::as_usize)
                            .ok_or("job: missing \"version\"")?
                            as u32,
                        delta_l1: v
                            .get("delta_l1")
                            .and_then(Value::as_f64)
                            .ok_or("job: missing \"delta_l1\"")?,
                        delta_linf: v
                            .get("delta_linf")
                            .and_then(Value::as_f64)
                            .ok_or("job: missing \"delta_linf\"")?,
                        lp_pivots: v
                            .get("lp_pivots")
                            .and_then(Value::as_usize)
                            .ok_or("job: missing \"lp_pivots\"")?
                            as u64,
                        lp_refactorizations: v
                            .get("lp_refactorizations")
                            .and_then(Value::as_usize)
                            .ok_or("job: missing \"lp_refactorizations\"")?
                            as u64,
                    },
                    "failed" => JobState::Failed {
                        message: v
                            .get("message")
                            .and_then(Value::as_str)
                            .ok_or("job: missing \"message\"")?
                            .to_owned(),
                    },
                    other => return Err(format!("job: unknown state {other:?}")),
                }))
            }
            "network" => Ok(Response::Network {
                name: v
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("network: missing \"name\"")?
                    .to_owned(),
                version: v
                    .get("version")
                    .and_then(Value::as_usize)
                    .ok_or("network: missing \"version\"")? as u32,
                source: v
                    .get("source")
                    .and_then(Value::as_str)
                    .ok_or("network: missing \"source\"")?
                    .to_owned(),
                activation: v
                    .get("activation")
                    .ok_or("network: missing \"activation\"")?
                    .clone(),
                value: v.get("value").ok_or("network: missing \"value\"")?.clone(),
                provenance: match v.get("provenance") {
                    None | Some(Value::Null) => None,
                    Some(p) => Some(p.clone()),
                },
            }),
            "models" => Ok(Response::Models(
                v.get("models")
                    .and_then(Value::as_arr)
                    .ok_or("models: missing \"models\"")?
                    .iter()
                    .map(|m| {
                        Ok((
                            m.get("name")
                                .and_then(Value::as_str)
                                .ok_or("models: missing \"name\"")?
                                .to_owned(),
                            m.get("latest")
                                .and_then(Value::as_usize)
                                .ok_or("models: missing \"latest\"")?
                                as u32,
                        ))
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            )),
            "versions" => Ok(Response::Versions(
                v.get("versions")
                    .and_then(Value::as_arr)
                    .ok_or("versions: missing \"versions\"")?
                    .iter()
                    .map(|info| {
                        Ok(VersionInfo {
                            version: info
                                .get("version")
                                .and_then(Value::as_usize)
                                .ok_or("versions: missing \"version\"")?
                                as u32,
                            source: info
                                .get("source")
                                .and_then(Value::as_str)
                                .ok_or("versions: missing \"source\"")?
                                .to_owned(),
                            spec_hash: match info.get("spec_hash") {
                                None | Some(Value::Null) => None,
                                Some(h) => Some(
                                    h.as_str()
                                        .ok_or("versions: spec_hash must be a string")?
                                        .to_owned(),
                                ),
                            },
                            delta_l1: info.get("delta_l1").and_then(Value::as_f64),
                            delta_linf: info.get("delta_linf").and_then(Value::as_f64),
                            layer: info.get("layer").and_then(Value::as_usize),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            )),
            "stats" => {
                let counter = |key: &str| -> Result<u64, String> {
                    Ok(v.get(key)
                        .and_then(Value::as_usize)
                        .ok_or_else(|| format!("stats: missing \"{key}\""))?
                        as u64)
                };
                Ok(Response::Stats(ServerStats {
                    eval_requests: counter("eval_requests")?,
                    eval_batches: counter("eval_batches")?,
                    eval_points: counter("eval_points")?,
                    lin_requests: counter("lin_requests")?,
                    lin_batches: counter("lin_batches")?,
                    lin_polytopes: counter("lin_polytopes")?,
                    gulps: counter("gulps")?,
                    gulp_items: counter("gulp_items")?,
                    max_gulp: counter("max_gulp")?,
                    jobs_submitted: counter("jobs_submitted")?,
                    jobs_completed: counter("jobs_completed")?,
                    jobs_failed: counter("jobs_failed")?,
                    repair_queue_depth: counter("repair_queue_depth")?,
                    repair_in_flight: counter("repair_in_flight")?,
                    wal_appends: counter("wal_appends")?,
                    wal_bytes: counter("wal_bytes")?,
                    snapshots: counter("snapshots")?,
                    recovered_versions: counter("recovered_versions")?,
                    recovered_wal_records: counter("recovered_wal_records")?,
                    torn_tail_bytes: counter("torn_tail_bytes")?,
                    wal_failed_appends: counter("wal_failed_appends")?,
                    conns_opened: counter("conns_opened")?,
                    conns_rejected: counter("conns_rejected")?,
                    open_connections: counter("open_connections")?,
                    io_timeouts: counter("io_timeouts")?,
                    batch_shed: counter("batch_shed")?,
                    jobs_shed: counter("jobs_shed")?,
                    cache_hits: counter("cache_hits")?,
                    cache_misses: counter("cache_misses")?,
                    cache_inserts: counter("cache_inserts")?,
                    cache_evictions: counter("cache_evictions")?,
                    cache_fill_skips: counter("cache_fill_skips")?,
                    cache_bytes: counter("cache_bytes")?,
                    cache_entries: counter("cache_entries")?,
                    deadline_expired: counter("deadline_expired")?,
                    lin_rescue_calls: counter("lin_rescue_calls")?,
                    lp_pivots: counter("lp_pivots")?,
                    lp_refactorizations: counter("lp_refactorizations")?,
                }))
            }
            "metrics" => Ok(Response::Metrics {
                text: v
                    .get("text")
                    .and_then(Value::as_str)
                    .ok_or("metrics: missing \"text\"")?
                    .to_owned(),
            }),
            "trace" => Ok(Response::Trace {
                slow: v.get("slow").ok_or("trace: missing \"slow\"")?.clone(),
            }),
            "shutting_down" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error {
                kind: ErrorKind::from_str(
                    v.get("kind")
                        .and_then(Value::as_str)
                        .ok_or("error: missing \"kind\"")?,
                )?,
                message: v
                    .get("message")
                    .and_then(Value::as_str)
                    .ok_or("error: missing \"message\"")?
                    .to_owned(),
                retry_after_ms: match v.get("retry_after_ms") {
                    None | Some(Value::Null) => None,
                    Some(ms) => Some(
                        ms.as_usize()
                            .ok_or("error: retry_after_ms must be a non-negative integer")?
                            as u64,
                    ),
                },
            }),
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn model_refs_parse_and_print() {
        assert_eq!(ModelRef::parse("m").unwrap(), ModelRef::latest("m"));
        assert_eq!(ModelRef::parse("m@latest").unwrap(), ModelRef::latest("m"));
        assert_eq!(ModelRef::parse("m@v3").unwrap(), ModelRef::version("m", 3));
        assert_eq!(ModelRef::version("m", 3).to_string(), "m@v3");
        assert_eq!(ModelRef::latest("m").to_string(), "m@latest");
        for bad in ["", "@v1", "m@", "m@v0", "m@3", "m@vx"] {
            assert!(ModelRef::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn frames_round_trip() {
        let value = Request::Eval {
            model: ModelRef::latest("n1"),
            inputs: vec![vec![0.5], vec![1.5]],
            deadline_ms: Some(250),
        }
        .to_value();
        let mut buf = Vec::new();
        write_frame(&mut buf, &value).unwrap();
        let back = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back, value);
        // A second read on the exhausted stream reports a clean close.
        let mut cursor = Cursor::new(&buf);
        read_frame(&mut cursor).unwrap();
        assert!(matches!(read_frame(&mut cursor), Err(FrameError::Closed)));
    }

    #[test]
    fn metrics_request_response_and_done_state_round_trip() {
        let req = Request::Metrics;
        assert_eq!(Request::from_value(&req.to_value()).unwrap(), req);

        let resp = Response::Metrics {
            text: "# HELP prdnn_x y\n# TYPE prdnn_x counter\nprdnn_x 1\n".to_owned(),
        };
        assert_eq!(Response::from_value(&resp.to_value()).unwrap(), resp);

        let done = Response::Job(JobState::Done {
            model: "m".to_owned(),
            version: 3,
            delta_l1: 1.5,
            delta_linf: 0.5,
            lp_pivots: 42,
            lp_refactorizations: 2,
        });
        assert_eq!(Response::from_value(&done.to_value()).unwrap(), done);
    }

    #[test]
    fn prometheus_rendering_covers_every_stats_field() {
        // Give every field a distinct value so a transposed entry in the
        // metric table cannot cancel out.
        let mut stats = ServerStats::default();
        let doc = Response::Stats(stats).to_value();
        let Value::Obj(fields) = &doc else {
            panic!("stats must encode as an object")
        };
        let keys: Vec<String> = fields
            .iter()
            .map(|(k, _)| k.clone())
            .filter(|k| k != "type")
            .collect();
        // Assign 1, 2, 3, ... in encoder order, then decode it back.
        let mut numbered = vec![("type".to_owned(), Value::Str("stats".to_owned()))];
        for (i, k) in keys.iter().enumerate() {
            numbered.push((k.clone(), Value::Num((i + 1) as f64)));
        }
        let Response::Stats(filled) = Response::from_value(&Value::Obj(numbered)).unwrap() else {
            panic!("expected stats")
        };
        stats = filled;

        // Point-in-time metrics render as bare-named gauges; everything
        // else is a counter and carries the conventional `_total` suffix.
        let gauges = [
            "open_connections",
            "cache_bytes",
            "cache_entries",
            "repair_queue_depth",
            "repair_in_flight",
        ];
        let text = stats.to_prometheus();
        for (i, key) in keys.iter().enumerate() {
            let rendered = if gauges.contains(&key.as_str()) {
                format!("prdnn_{key}")
            } else {
                format!("prdnn_{key}_total")
            };
            assert!(
                text.contains(&format!("# HELP {rendered} ")),
                "metric {key} missing HELP"
            );
            assert!(
                text.contains(&format!("# TYPE {rendered} ")),
                "metric {key} missing TYPE"
            );
            assert!(
                text.lines().any(|l| l == format!("{rendered} {}", i + 1)),
                "metric {key} missing sample with value {}",
                i + 1
            );
        }
        for gauge in gauges {
            assert!(
                text.contains(&format!("# TYPE prdnn_{gauge} gauge")),
                "{gauge} not typed as a gauge"
            );
        }
        let counters = text.lines().filter(|l| l.ends_with(" counter")).count();
        assert_eq!(counters, keys.len() - gauges.len());
    }

    #[test]
    fn trace_request_and_response_round_trip() {
        let req = Request::Trace;
        assert_eq!(Request::from_value(&req.to_value()).unwrap(), req);
        assert_eq!(req.kind(), "trace");

        let resp = Response::Trace {
            slow: Value::Arr(vec![Value::obj([
                ("request_id", Value::Num(7.0)),
                ("kind", Value::Str("eval".to_owned())),
                ("total_ms", Value::Num(120.5)),
                ("spans", Value::Arr(vec![])),
            ])]),
        };
        assert_eq!(Response::from_value(&resp.to_value()).unwrap(), resp);
    }

    #[test]
    fn request_ids_embed_echo_and_survive_the_codec() {
        let mut doc = Request::Ping.to_value();
        assert_eq!(request_id_of(&doc), None);
        embed_request_id(&mut doc, 42);
        assert_eq!(request_id_of(&doc), Some(42));
        // Embedding twice replaces rather than duplicates.
        embed_request_id(&mut doc, 43);
        assert_eq!(request_id_of(&doc), Some(43));
        // The typed codec ignores the correlation field entirely.
        assert_eq!(Request::from_value(&doc).unwrap(), Request::Ping);
        // Junk ids are ignored, not misread.
        let junk = Value::obj([("request_id", Value::Num(-1.0))]);
        assert_eq!(request_id_of(&junk), None);
        let frac = Value::obj([("request_id", Value::Num(1.5))]);
        assert_eq!(request_id_of(&frac), None);
    }

    #[test]
    fn oversized_and_empty_headers_are_rejected() {
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        oversized.extend_from_slice(b"xxxx");
        assert!(matches!(
            read_frame(&mut Cursor::new(&oversized)),
            Err(FrameError::Oversized(_))
        ));
        let empty = 0u32.to_be_bytes().to_vec();
        assert!(matches!(
            read_frame(&mut Cursor::new(&empty)),
            Err(FrameError::Empty)
        ));
    }
}
