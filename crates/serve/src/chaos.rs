//! A fault-injecting TCP proxy for wire-level resilience tests.
//!
//! [`ChaosProxy`] sits between a client and a `prdnn-serve` listener and
//! mistreats the byte stream the way a bad network would: chunks are
//! delayed, dropped, bit-corrupted, truncated-then-severed, or the
//! connection is cut outright mid-stream.  The server never sees a special
//! "test" code path — it must survive whatever arrives on the socket —
//! and the proxy never parses frames, so faults land at arbitrary byte
//! boundaries (half a length prefix, mid-float in a JSON body).
//!
//! Faults are **deterministic**: each decision is a pure function of
//! `(seed, connection index, direction, chunk index)` via
//! [`splitmix64`](crate::faults::splitmix64), so a failing chaos run
//! replays exactly from its seed.
//!
//! The proxy is std-only (two pump threads per connection) and counts
//! every action in [`ChaosCounters`] so tests can assert that the
//! configured fault classes actually fired.

use crate::faults::splitmix64;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Per-chunk fault probabilities, in per-mille.  The classes are checked
/// in the order severed → truncated → corrupted → dropped → delayed, so
/// their per-milles partition a single roll and must sum to at most 1000.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosConfig {
    /// Seed for the deterministic decision stream.
    pub seed: u64,
    /// Cut the connection before forwarding the chunk.
    pub sever_per_mille: u32,
    /// Forward a strict prefix of the chunk, then cut the connection.
    pub truncate_per_mille: u32,
    /// Flip one byte of the chunk, then forward it.
    pub corrupt_per_mille: u32,
    /// Swallow the chunk entirely (the connection stays up and stalls).
    pub drop_per_mille: u32,
    /// Sleep before forwarding the chunk.
    pub delay_per_mille: u32,
    /// Ceiling for injected delays, in milliseconds.
    pub max_delay_ms: u64,
}

impl ChaosConfig {
    /// A pass-through configuration (no faults) — the control regime.
    pub fn fault_free(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            ..ChaosConfig::default()
        }
    }
}

/// How many of each fault the proxy actually injected.
#[derive(Debug, Default)]
pub struct ChaosCounters {
    /// Proxied connections accepted.
    pub connections: AtomicU64,
    /// Chunks forwarded unmodified (possibly after a delay).
    pub forwarded: AtomicU64,
    /// Chunks delayed.
    pub delayed: AtomicU64,
    /// Chunks with a byte flipped.
    pub corrupted: AtomicU64,
    /// Chunks swallowed.
    pub dropped: AtomicU64,
    /// Chunks cut to a prefix (each also severs its connection).
    pub truncated: AtomicU64,
    /// Connections cut mid-stream (sever + truncate).
    pub severed: AtomicU64,
}

impl ChaosCounters {
    /// Total faults injected across all classes.
    pub fn total_faults(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
            + self.corrupted.load(Ordering::Relaxed)
            + self.dropped.load(Ordering::Relaxed)
            + self.truncated.load(Ordering::Relaxed)
            + self.severed.load(Ordering::Relaxed)
    }
}

enum Action {
    Sever,
    Truncate,
    Corrupt,
    Drop,
    Delay,
    Forward,
}

fn decide(config: &ChaosConfig, conn: u64, direction: u64, chunk: u64) -> (Action, u64) {
    let bits = splitmix64(config.seed ^ (conn << 24) ^ (direction << 23) ^ chunk);
    let roll = (bits % 1000) as u32;
    let mut band = config.sever_per_mille;
    if roll < band {
        return (Action::Sever, bits);
    }
    band += config.truncate_per_mille;
    if roll < band {
        return (Action::Truncate, bits);
    }
    band += config.corrupt_per_mille;
    if roll < band {
        return (Action::Corrupt, bits);
    }
    band += config.drop_per_mille;
    if roll < band {
        return (Action::Drop, bits);
    }
    band += config.delay_per_mille;
    if roll < band {
        return (Action::Delay, bits);
    }
    (Action::Forward, bits)
}

/// One direction of one proxied connection: read chunks from `from`,
/// mistreat them per the decision stream, write the survivors to `to`.
fn pump(
    config: &ChaosConfig,
    counters: &ChaosCounters,
    conn: u64,
    direction: u64,
    mut from: TcpStream,
    mut to: TcpStream,
) {
    let mut buf = [0u8; 4096];
    let mut chunk_index = 0u64;
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let (action, bits) = decide(config, conn, direction, chunk_index);
        chunk_index += 1;
        match action {
            Action::Sever => {
                counters.severed.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Action::Truncate => {
                // A strict prefix (possibly empty): the peer sees a frame
                // that stops mid-header or mid-body.
                let keep = (bits >> 10) as usize % n;
                counters.truncated.fetch_add(1, Ordering::Relaxed);
                counters.severed.fetch_add(1, Ordering::Relaxed);
                let _ = to.write_all(&buf[..keep]);
                break;
            }
            Action::Corrupt => {
                let at = (bits >> 10) as usize % n;
                buf[at] ^= 0x40 | ((bits >> 32) as u8 & 0x3f);
                counters.corrupted.fetch_add(1, Ordering::Relaxed);
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Action::Drop => {
                counters.dropped.fetch_add(1, Ordering::Relaxed);
            }
            Action::Delay => {
                let ms = (bits >> 10) % config.max_delay_ms.max(1) + 1;
                thread::sleep(Duration::from_millis(ms));
                counters.delayed.fetch_add(1, Ordering::Relaxed);
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Action::Forward => {
                counters.forwarded.fetch_add(1, Ordering::Relaxed);
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    // Cut both directions so the peers observe the fault promptly instead
    // of waiting out their socket timeouts.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// The proxy: accepts on its own ephemeral port and forwards to
/// `upstream` through the fault machinery.  Drop order matters in tests:
/// call [`ChaosProxy::shutdown`] (or just drop it) after the server side
/// has been told to stop.
pub struct ChaosProxy {
    addr: SocketAddr,
    counters: Arc<ChaosCounters>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts the proxy on an ephemeral local port.
    ///
    /// # Errors
    ///
    /// Propagates listener-creation failures.
    pub fn start(upstream: SocketAddr, config: ChaosConfig) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let counters = Arc::new(ChaosCounters::default());
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let counters = Arc::clone(&counters);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut conn_index = 0u64;
                for inbound in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let Ok(inbound) = inbound else { continue };
                    let Ok(outbound) = TcpStream::connect(upstream) else {
                        // Upstream refused: the client sees its connection
                        // close, which is just another fault to survive.
                        continue;
                    };
                    inbound.set_nodelay(true).ok();
                    outbound.set_nodelay(true).ok();
                    counters.connections.fetch_add(1, Ordering::Relaxed);
                    let conn = conn_index;
                    conn_index += 1;
                    for direction in 0..2u64 {
                        let (from, to) = if direction == 0 {
                            (inbound.try_clone(), outbound.try_clone())
                        } else {
                            (outbound.try_clone(), inbound.try_clone())
                        };
                        let (Ok(from), Ok(to)) = (from, to) else {
                            continue;
                        };
                        let counters = Arc::clone(&counters);
                        thread::spawn(move || {
                            pump(&config, &counters, conn, direction, from, to);
                        });
                    }
                }
            })
        };
        Ok(ChaosProxy {
            addr,
            counters,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The proxy's fault counters.
    pub fn counters(&self) -> &ChaosCounters {
        &self.counters
    }

    /// Stops accepting and joins the accept thread.  Pump threads for
    /// connections already in flight exit when either endpoint closes.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway dial.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heavy() -> ChaosConfig {
        ChaosConfig {
            seed: 1,
            sever_per_mille: 100,
            truncate_per_mille: 100,
            corrupt_per_mille: 200,
            drop_per_mille: 100,
            delay_per_mille: 300,
            max_delay_ms: 5,
        }
    }

    #[test]
    fn decisions_are_deterministic_in_all_coordinates() {
        let config = heavy();
        for conn in 0..4 {
            for direction in 0..2 {
                for chunk in 0..64 {
                    let (a, bits_a) = decide(&config, conn, direction, chunk);
                    let (b, bits_b) = decide(&config, conn, direction, chunk);
                    assert_eq!(bits_a, bits_b);
                    assert_eq!(std::mem::discriminant(&a), std::mem::discriminant(&b));
                }
            }
        }
        // Coordinates matter: two directions of one connection must not
        // share a decision stream.
        let stream = |direction| {
            (0..256)
                .map(|chunk| decide(&heavy(), 0, direction, chunk).1)
                .collect::<Vec<_>>()
        };
        assert_ne!(stream(0), stream(1));
    }

    #[test]
    fn fault_free_config_forwards_everything() {
        let config = ChaosConfig::fault_free(9);
        for chunk in 0..512 {
            let (action, _) = decide(&config, 0, 0, chunk);
            assert!(matches!(action, Action::Forward));
        }
    }

    #[test]
    fn bands_partition_the_roll() {
        // With heavy faults, every class fires somewhere in a long stream.
        let config = heavy();
        let mut seen = [false; 6];
        for chunk in 0..4096 {
            let (action, _) = decide(&config, 3, 1, chunk);
            seen[match action {
                Action::Sever => 0,
                Action::Truncate => 1,
                Action::Corrupt => 2,
                Action::Drop => 3,
                Action::Delay => 4,
                Action::Forward => 5,
            }] = true;
        }
        assert_eq!(seen, [true; 6]);
    }
}
