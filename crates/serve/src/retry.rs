//! Client-side resilience: retry with exponential backoff.
//!
//! [`RetryPolicy`] is the schedule — exponential backoff with
//! deterministic jitter, every delay clamped to the caller's remaining
//! deadline budget so retrying never extends a request past its deadline.
//! [`RetryingClient`] applies it over [`Client`] with the crate's error
//! contract (see the crate docs):
//!
//! * **Idempotent reads** (`eval`, `lin_regions`, `job_status`, `stats`,
//!   `list_models`) retry on transport errors (reconnecting first) and on
//!   typed `overloaded` / `unavailable` responses, honouring any
//!   `retry_after_ms` hint the server attached.
//! * **Repairs are never resent.**  A transport error after the request
//!   frame left the socket is ambiguous — the server may have enqueued the
//!   job — and a blind resend could repair twice.  Connection establishment
//!   retries; the send happens once.
//!
//! Jitter is deterministic (seeded [`splitmix64`](crate::faults::splitmix64)
//! keyed by attempt number), so a given policy produces one reproducible
//! schedule — load tests and proptests can pin it exactly.

use crate::client::{Client, ClientError};
use crate::faults::splitmix64;
use crate::protocol::{ErrorKind, JobState, ModelRef, RegionWire, ServerStats};
use prdnn_core::{PointSpec, RepairConfig};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// An exponential-backoff schedule with deterministic jitter.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries including the first (1 = never retry).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: Duration,
    /// Ceiling on any single backoff, pre-jitter.
    pub max_delay: Duration,
    /// Jitter half-width in per-mille: each delay is scaled by a factor
    /// drawn uniformly from `[1 - j/1000, 1 + j/1000]`.  Must be < 1000.
    pub jitter_per_mille: u32,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter_per_mille: 200,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The jittered backoff before retry number `attempt` (1-based): the
    /// exponential `base_delay << (attempt-1)` capped at `max_delay`, then
    /// scaled by the deterministic jitter factor for this attempt.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(
                1u32.checked_shl(attempt.saturating_sub(1))
                    .unwrap_or(u32::MAX),
            )
            .min(self.max_delay);
        let j = self.jitter_per_mille.min(999) as u64;
        // Uniform in [1000 - j, 1000 + j] per-mille.
        let factor = 1000 - j + splitmix64(self.seed ^ u64::from(attempt)) % (2 * j + 1);
        exp.saturating_mul(factor as u32) / 1000
    }

    /// The sleep before retry number `attempt` (1-based count of attempts
    /// already made), clamped to the `remaining` deadline budget.  `None`
    /// means give up: attempts exhausted or no budget left to sleep in.
    pub fn next_delay(&self, attempt: u32, remaining: Duration) -> Option<Duration> {
        if attempt >= self.max_attempts || remaining.is_zero() {
            return None;
        }
        Some(self.backoff(attempt).min(remaining))
    }
}

/// Counters describing what a [`RetryingClient`] actually did.
#[derive(Debug, Default, Clone, Copy)]
pub struct RetryStats {
    /// Request attempts sent (first tries + retries).
    pub attempts: u64,
    /// Retries after a retryable failure.
    pub retries: u64,
    /// Reconnects after a transport error.
    pub reconnects: u64,
    /// Requests abandoned with attempts or deadline budget exhausted.
    pub giveups: u64,
}

/// A [`Client`] wrapper that reconnects and retries per [`RetryPolicy`].
///
/// Connections are lazy: the first request dials, and any transport error
/// drops the connection so the next attempt redials.  All methods take a
/// total `budget` that bounds the whole retry loop (connect + request +
/// backoff sleeps), independent of the per-request `deadline_ms` the
/// server enforces.
pub struct RetryingClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    io_timeout: Duration,
    conn: Option<Client>,
    /// What the retry loop did so far; read it after a run for reporting.
    pub stats: RetryStats,
}

impl RetryingClient {
    /// Creates a client for `addr`; no I/O happens until the first call.
    ///
    /// `io_timeout` bounds the connect handshake and every socket
    /// read/write, so a severed or black-holed connection surfaces as a
    /// retryable transport error instead of a hang.
    pub fn new(addr: SocketAddr, policy: RetryPolicy, io_timeout: Duration) -> RetryingClient {
        RetryingClient {
            addr,
            policy,
            io_timeout,
            conn: None,
            stats: RetryStats::default(),
        }
    }

    /// Drops the current connection; the next request redials.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn client(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            let mut client = Client::connect_timeout(&self.addr, self.io_timeout)
                .map_err(|e| ClientError::Transport(format!("connect: {e}")))?;
            client
                .set_io_timeout(Some(self.io_timeout))
                .map_err(|e| ClientError::Transport(format!("set timeout: {e}")))?;
            self.conn = Some(client);
        }
        Ok(self.conn.as_mut().expect("connection was just established"))
    }

    /// Whether the error contract allows resending an idempotent read.
    fn retryable(error: &ClientError) -> bool {
        match error {
            ClientError::Transport(_) => true,
            ClientError::Server { kind, .. } => {
                matches!(kind, ErrorKind::Overloaded | ErrorKind::Unavailable)
            }
            ClientError::UnexpectedResponse(_) => false,
        }
    }

    /// The retry loop for idempotent requests.
    fn retry_read<T>(
        &mut self,
        budget: Duration,
        mut call: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let deadline = Instant::now() + budget;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            self.stats.attempts += 1;
            let result = self.client().and_then(&mut call);
            let error = match result {
                Ok(value) => return Ok(value),
                Err(e) => e,
            };
            if matches!(error, ClientError::Transport(_)) {
                // The stream may hold half a frame; never reuse it.
                self.conn = None;
                self.stats.reconnects += 1;
            }
            if !Self::retryable(&error) {
                return Err(error);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            let Some(delay) = self.policy.next_delay(attempt, remaining) else {
                self.stats.giveups += 1;
                return Err(error);
            };
            // An explicit server hint overrides a shorter backoff — the
            // server knows its queue — but never the deadline budget.
            let delay = match error {
                ClientError::Server {
                    retry_after_ms: Some(ms),
                    ..
                } => delay.max(Duration::from_millis(ms)).min(remaining),
                _ => delay,
            };
            std::thread::sleep(delay);
            self.stats.retries += 1;
        }
    }

    /// [`Client::eval`] with retries.
    ///
    /// # Errors
    ///
    /// The last attempt's error once the policy or `budget` is exhausted,
    /// or immediately for non-retryable kinds.
    pub fn eval(
        &mut self,
        model: &ModelRef,
        inputs: &[Vec<f64>],
        deadline_ms: Option<u64>,
        budget: Duration,
    ) -> Result<Vec<Vec<f64>>, ClientError> {
        self.retry_read(budget, |c| c.eval(model, inputs.to_vec(), deadline_ms))
    }

    /// [`Client::lin_regions`] with retries.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::eval`].
    pub fn lin_regions(
        &mut self,
        model: &ModelRef,
        polytopes: &[Vec<Vec<f64>>],
        deadline_ms: Option<u64>,
        budget: Duration,
    ) -> Result<Vec<Vec<RegionWire>>, ClientError> {
        self.retry_read(budget, |c| {
            c.lin_regions(model, polytopes.to_vec(), deadline_ms)
        })
    }

    /// [`Client::job_status`] with retries.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::eval`].
    pub fn job_status(&mut self, job: u64, budget: Duration) -> Result<JobState, ClientError> {
        self.retry_read(budget, |c| c.job_status(job))
    }

    /// [`Client::stats`] with retries.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::eval`].
    pub fn server_stats(&mut self, budget: Duration) -> Result<ServerStats, ClientError> {
        self.retry_read(budget, |c| c.stats())
    }

    /// [`Client::list_models`] with retries.
    ///
    /// # Errors
    ///
    /// See [`RetryingClient::eval`].
    pub fn list_models(&mut self, budget: Duration) -> Result<Vec<(String, u32)>, ClientError> {
        self.retry_read(budget, |c| c.list_models())
    }

    /// Submits a repair **once**.  Establishing the connection may retry
    /// (nothing has been sent yet); after the request frame is written the
    /// outcome is returned as-is — resending could enqueue the repair
    /// twice, and repairs are not idempotent.
    ///
    /// # Errors
    ///
    /// See [`Client::repair`]; transport errors here leave the job's fate
    /// unknown.
    pub fn repair(
        &mut self,
        model: &ModelRef,
        layer: usize,
        spec: PointSpec,
        config: RepairConfig,
        budget: Duration,
    ) -> Result<u64, ClientError> {
        let deadline = Instant::now() + budget;
        let mut attempt = 0u32;
        // Retry only the dial; first usable connection gets the one send.
        loop {
            attempt += 1;
            self.stats.attempts += 1;
            match self.client() {
                Ok(_) => break,
                Err(e) => {
                    self.conn = None;
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    let Some(delay) = self.policy.next_delay(attempt, remaining) else {
                        self.stats.giveups += 1;
                        return Err(e);
                    };
                    std::thread::sleep(delay);
                    self.stats.retries += 1;
                }
            }
        }
        let result = self
            .conn
            .as_mut()
            .expect("connection was just established")
            .repair(model, layer, spec, config);
        if matches!(result, Err(ClientError::Transport(_))) {
            self.conn = None;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(jitter: u32, seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(400),
            jitter_per_mille: jitter,
            seed,
        }
    }

    #[test]
    fn backoff_doubles_and_caps_without_jitter() {
        let p = policy(0, 7);
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(6), Duration::from_millis(320));
        // Capped at max_delay from attempt 7 on — including absurd counts.
        assert_eq!(p.backoff(7), Duration::from_millis(400));
        assert_eq!(p.backoff(100), Duration::from_millis(400));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = policy(200, 42);
        for attempt in 1..=12 {
            let d = p.backoff(attempt);
            assert_eq!(d, p.backoff(attempt), "same seed, same schedule");
            let exp = Duration::from_millis(10)
                .saturating_mul(1 << (attempt - 1).min(31))
                .min(Duration::from_millis(400));
            assert!(
                d >= exp.mul_f64(0.8) && d <= exp.mul_f64(1.2),
                "{d:?} vs {exp:?}"
            );
        }
        // A different seed moves at least one delay (jitter is real).
        let q = policy(200, 43);
        assert!((1..=12).any(|a| p.backoff(a) != q.backoff(a)));
    }

    #[test]
    fn next_delay_respects_attempts_and_budget() {
        let p = policy(0, 0);
        assert_eq!(
            p.next_delay(1, Duration::from_secs(10)),
            Some(Duration::from_millis(10))
        );
        // Clamped to the remaining budget.
        assert_eq!(
            p.next_delay(3, Duration::from_millis(5)),
            Some(Duration::from_millis(5))
        );
        // Exhausted attempts or budget: give up.
        assert_eq!(p.next_delay(8, Duration::from_secs(10)), None);
        assert_eq!(p.next_delay(1, Duration::ZERO), None);
    }

    #[test]
    fn server_errors_classify_per_the_contract() {
        let retryable = |kind| {
            RetryingClient::retryable(&ClientError::Server {
                kind,
                message: String::new(),
                retry_after_ms: None,
            })
        };
        assert!(retryable(ErrorKind::Overloaded));
        assert!(retryable(ErrorKind::Unavailable));
        assert!(!retryable(ErrorKind::BadRequest));
        assert!(!retryable(ErrorKind::DeadlineExceeded));
        assert!(!retryable(ErrorKind::Internal));
        assert!(RetryingClient::retryable(&ClientError::Transport(
            "broken pipe".into()
        )));
        assert!(!RetryingClient::retryable(
            &ClientError::UnexpectedResponse("?".into())
        ));
    }
}
