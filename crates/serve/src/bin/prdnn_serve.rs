//! The `prdnn-serve` binary: a long-lived repair-and-analysis server.
//!
//! ```text
//! prdnn-serve [--addr HOST:PORT] [--threads N] [--max-connections N]
//!             [--batch-queue N] [--job-queue N] [--repair-workers N]
//!             [--deadline-ms MS] [--io-timeout-ms MS] [--store-dir DIR]
//!             [--snapshot-every N] [--cache-bytes N] [--slow-ms MS]
//!             [--fault-wal SPEC] [--preload NAME=GENERATOR]...
//! ```
//!
//! `--preload` loads a model at startup (repeatable), e.g.
//! `--preload n1=n1 --preload digits=digits:7:160:40`.  Send a `shutdown`
//! request to stop; the server drains its queues before exiting.
//!
//! `--store-dir DIR` makes the version store durable: every published
//! version is fsynced to a write-ahead log in `DIR` before it is
//! acknowledged, and a restart pointing at the same `DIR` recovers every
//! model and version (with provenance) before accepting connections.
//! `--snapshot-every N` compacts the WAL into `snapshot.json` every `N`
//! publishes (default 64; `0` disables compaction).
//!
//! `--cache-bytes N` budgets the per-version result cache that memoizes
//! eval / `lin_regions` replies (default 32 MiB; `0` disables caching —
//! every request runs on the pool).
//!
//! `--slow-ms MS` sets the slow-request threshold: a request whose
//! server-side residence crosses it has its full span chain retained and
//! served by the `trace` request (default 400; `0` disables span tracing —
//! the latency histograms on the `metrics` endpoint stay on).
//!
//! `--io-timeout-ms MS` bounds how long a connection may sit idle
//! mid-request before it is reaped and its slot freed (slowloris
//! defense; default 30000, `0` disables).  `--fault-wal SPEC` injects
//! deterministic storage faults into the WAL for resilience testing,
//! e.g. `--fault-wal seed=7,fsync=50,enospc@3` (see
//! [`prdnn_serve::faults::FaultInjector`]); never use it in production.

use prdnn_serve::server::{serve, ServerConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".to_owned(),
        ..ServerConfig::default()
    };
    let mut preloads: Vec<(String, String)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or_else(|| format!("{what} needs a value"));
        let result: Result<(), String> = match arg.as_str() {
            "--addr" => take("--addr").map(|v| config.addr = v),
            "--threads" => parse(take("--threads")).map(|n| config.threads = Some(n)),
            "--max-connections" => {
                parse(take("--max-connections")).map(|n| config.max_connections = n)
            }
            "--batch-queue" => parse(take("--batch-queue")).map(|n| config.batch_queue_cap = n),
            "--job-queue" => parse(take("--job-queue")).map(|n| config.job_queue_cap = n),
            "--repair-workers" => {
                parse(take("--repair-workers")).map(|n| config.repair_workers = n)
            }
            "--deadline-ms" => {
                parse(take("--deadline-ms")).map(|n| config.default_deadline_ms = n as u64)
            }
            "--io-timeout-ms" => {
                // 0 is meaningful here: never time a connection out.
                take("--io-timeout-ms").and_then(|v| {
                    v.parse::<u64>()
                        .map(|n| config.io_timeout_ms = n)
                        .map_err(|_| format!("expected a non-negative integer, got {v:?}"))
                })
            }
            "--store-dir" => {
                take("--store-dir").map(|v| config.store_dir = Some(std::path::PathBuf::from(v)))
            }
            "--snapshot-every" => {
                // 0 is meaningful here: never snapshot.
                take("--snapshot-every").and_then(|v| {
                    v.parse::<u64>()
                        .map(|n| config.snapshot_every = n)
                        .map_err(|_| format!("expected a non-negative integer, got {v:?}"))
                })
            }
            "--cache-bytes" => {
                // 0 is meaningful here: disable the result cache.
                take("--cache-bytes").and_then(|v| {
                    v.parse::<usize>()
                        .map(|n| config.cache_bytes = n)
                        .map_err(|_| format!("expected a non-negative integer, got {v:?}"))
                })
            }
            "--slow-ms" => {
                // 0 is meaningful here: disable span tracing.
                take("--slow-ms").and_then(|v| {
                    v.parse::<u64>()
                        .map(|n| config.slow_ms = n)
                        .map_err(|_| format!("expected a non-negative integer, got {v:?}"))
                })
            }
            "--fault-wal" => take("--fault-wal").and_then(|v| {
                // Validate the spec up front so a typo fails the launch,
                // not the first publish.
                prdnn_serve::faults::FaultInjector::parse(&v)
                    .map(|_| config.wal_fault_spec = Some(v))
                    .map_err(|e| format!("--fault-wal: {e}"))
            }),
            "--preload" => take("--preload").and_then(|v| {
                v.split_once('=')
                    .map(|(name, generator)| preloads.push((name.to_owned(), generator.to_owned())))
                    .ok_or_else(|| "--preload expects NAME=GENERATOR".to_owned())
            }),
            "--help" | "-h" => {
                println!(
                    "prdnn-serve [--addr HOST:PORT] [--threads N] [--max-connections N]\n\
                     \x20           [--batch-queue N] [--job-queue N] [--repair-workers N]\n\
                     \x20           [--deadline-ms MS] [--io-timeout-ms MS] [--store-dir DIR]\n\
                     \x20           [--snapshot-every N] [--cache-bytes N] [--slow-ms MS]\n\
                     \x20           [--fault-wal SPEC] [--preload NAME=GENERATOR]..."
                );
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag {other:?} (try --help)")),
        };
        if let Err(e) = result {
            eprintln!("prdnn-serve: {e}");
            return ExitCode::FAILURE;
        }
    }

    let handle = match serve(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("prdnn-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("prdnn-serve: listening on {}", handle.addr());

    for (name, generator) in preloads {
        let store = handle.store();
        match prdnn_datasets::registry::build_model(&generator) {
            Ok(net) => {
                let ddnn = prdnn_core::DecoupledNetwork::from_network(&net);
                match store.load(&name, ddnn, generator.clone()) {
                    Ok(v) => {
                        eprintln!("prdnn-serve: preloaded {name}@v{} ({generator})", v.version)
                    }
                    // A durable restart recovers the model before the
                    // preload runs; the same command line must keep
                    // working, so "already there" is satisfied, not fatal.
                    Err(prdnn_serve::store::StoreError::AlreadyExists(_)) => {
                        eprintln!("prdnn-serve: {name} already in the store (recovered); skipping preload")
                    }
                    Err(e) => {
                        eprintln!("prdnn-serve: preload {name} failed: {e}");
                        handle.shutdown();
                        let _ = handle.join();
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                eprintln!("prdnn-serve: preload {name} failed: {e}");
                handle.shutdown();
                let _ = handle.join();
                return ExitCode::FAILURE;
            }
        }
    }

    match handle.join() {
        Ok(()) => {
            eprintln!("prdnn-serve: drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("prdnn-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse(v: Result<String, String>) -> Result<usize, String> {
    let v = v?;
    v.parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("expected a positive integer, got {v:?}"))
}
