//! The per-version result cache: a bounded, content-hash-keyed LRU that
//! memoizes `eval` and `lin_regions` reply payloads in front of the
//! batcher's pool calls.
//!
//! # Why this is sound
//!
//! Model versions are **immutable**: a repair never mutates a published
//! network, it publishes a new version.  Both served read operations are
//! therefore pure functions of `(network content, input)`, and a cached
//! payload can never go stale — invalidation is by construction, not by
//! protocol.  A repair publishing `m@v2` changes the value channel's
//! content hash, so `m@v2`'s eval keys differ from `m@v1`'s and the new
//! version can never be answered from the old version's entries.
//!
//! `lin_regions` gets a sharper key: the paper's Theorem 4.6 says value
//! edits preserve linear regions, so the result depends on the
//! **activation channel alone**.  A value-only repair keeps its parent's
//! activation hash, and `m@v2` legitimately *shares* `m@v1`'s
//! `lin_regions` entries — same key, bit-identical payload, extra hit
//! surface for free.
//!
//! # Key derivation
//!
//! A [`CacheKey`] is `(kind, network hash, input hash)`:
//!
//! * the network hash is FNV-1a over the relevant channel content hashes
//!   ([`crate::store::ModelVersion::channel_hashes`] — both channels for
//!   eval, activation only for `lin_regions`);
//! * the input hash is FNV-1a over the request payload's `f64` bit
//!   patterns with length framing (point/vertex counts and dimensions are
//!   mixed in, so `[[a, b]]` and `[[a], [b]]` never collide).
//!
//! Keys are 128-bit content hashes, not the payloads themselves: a probe
//! does not re-compare inputs, exactly like the WAL's content-hash
//! verification trusts FNV-1a to identify a network.  `-0.0` and `+0.0`
//! hash differently (distinct bit patterns); that only costs a duplicate
//! entry, never a wrong answer.
//!
//! # Bounds and eviction
//!
//! Capacity is a **byte budget** over approximate payload sizes, not an
//! entry count — one `lin_regions` reply can outweigh a thousand eval
//! replies.  Eviction is strict LRU (probes refresh recency); a payload
//! larger than the whole budget is simply not inserted.  A budget of 0
//! disables the cache entirely: probes and fills return without touching
//! the lock or the counters.

use crate::batcher::ReplyData;
use crate::store::ModelVersion;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Default byte budget used by the server when `--cache-bytes` is not
/// given: 32 MiB, a few thousand typical eval replies.
pub const DEFAULT_CACHE_BYTES: usize = 32 * 1024 * 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Mixes one `u64` into an FNV-1a state, byte-wise little-endian — the
/// same mixing discipline as `prdnn_nn::network_content_hash`.
fn fnv_u64(mut h: u64, x: u64) -> u64 {
    for b in x.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_f64(h: u64, x: f64) -> u64 {
    fnv_u64(h, x.to_bits())
}

/// Content-hash key of one cacheable request; see the module docs for the
/// derivation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// `false` = eval, `true` = lin_regions (kept out of the hashes so the
    /// two namespaces can never alias).
    lin: bool,
    /// FNV-1a over the relevant channel content hashes.
    net_hash: u64,
    /// FNV-1a over the request payload with length framing.
    input_hash: u64,
}

impl CacheKey {
    /// Key for an `eval` request: both channels identify the answering
    /// network (the forward pass reads activation *and* value weights).
    pub fn eval(version: &ModelVersion, inputs: &[Vec<f64>]) -> CacheKey {
        let (act, val) = version.channel_hashes();
        let mut input_hash = fnv_u64(FNV_OFFSET, inputs.len() as u64);
        for point in inputs {
            input_hash = fnv_u64(input_hash, point.len() as u64);
            for &x in point {
                input_hash = fnv_f64(input_hash, x);
            }
        }
        CacheKey {
            lin: false,
            net_hash: fnv_u64(fnv_u64(FNV_OFFSET, act), val),
            input_hash,
        }
    }

    /// Key for a `lin_regions` request: the activation channel alone
    /// (Theorem 4.6 — value edits preserve linear regions), so value-only
    /// repairs share their parent's entries.
    pub fn lin_regions(version: &ModelVersion, polytopes: &[Vec<Vec<f64>>]) -> CacheKey {
        let (act, _) = version.channel_hashes();
        let mut input_hash = fnv_u64(FNV_OFFSET, polytopes.len() as u64);
        for polytope in polytopes {
            input_hash = fnv_u64(input_hash, polytope.len() as u64);
            for vertex in polytope {
                input_hash = fnv_u64(input_hash, vertex.len() as u64);
                for &x in vertex {
                    input_hash = fnv_f64(input_hash, x);
                }
            }
        }
        CacheKey {
            lin: true,
            net_hash: fnv_u64(FNV_OFFSET, act),
            input_hash,
        }
    }
}

/// Fixed per-entry overhead charged against the budget on top of the
/// payload floats: the key, the LRU bookkeeping, and the containers'
/// headers, rounded generously.
const ENTRY_OVERHEAD: usize = 128;
/// Approximate header cost of one `Vec` inside a payload.
const VEC_OVERHEAD: usize = 24;

/// Approximate heap size of a reply payload, for budget accounting.
fn payload_bytes(data: &ReplyData) -> usize {
    match data {
        ReplyData::Outputs(rows) => rows
            .iter()
            .map(|r| r.len() * 8 + VEC_OVERHEAD)
            .sum::<usize>(),
        ReplyData::Regions(lists) => lists
            .iter()
            .map(|regions| {
                regions
                    .iter()
                    .map(|region| {
                        region
                            .vertices
                            .iter()
                            .map(|v| v.len() * 8 + VEC_OVERHEAD)
                            .sum::<usize>()
                            + region.interior.len() * 8
                            + 3 * VEC_OVERHEAD
                    })
                    .sum::<usize>()
                    + VEC_OVERHEAD
            })
            .sum::<usize>(),
    }
}

/// Cache counters, exposed through `stats` and the metrics endpoint.
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Probes answered from the cache (the pool never ran).
    pub hits: AtomicU64,
    /// Probes that missed and fell through to the batched call.
    pub misses: AtomicU64,
    /// Payloads inserted.
    pub inserts: AtomicU64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: AtomicU64,
    /// Fills skipped because the request's deadline had already expired by
    /// the time its result existed (the reply channel is likely dead; do
    /// not pay eviction churn for it).
    pub fill_skips: AtomicU64,
}

struct Entry {
    data: ReplyData,
    bytes: usize,
    /// This entry's slot in the recency order (key into `order`).
    tick: u64,
}

struct Inner {
    map: HashMap<CacheKey, Entry>,
    /// Recency order: tick → key, oldest first.  Ticks are unique (a
    /// monotone counter), so a `BTreeMap` gives O(log n) refresh and O(log
    /// n) oldest-first eviction.
    order: BTreeMap<u64, CacheKey>,
    bytes: usize,
    next_tick: u64,
}

/// The bounded LRU result cache; see the module docs.
pub struct ResultCache {
    budget: usize,
    inner: Mutex<Inner>,
    /// Hit/miss/insert/eviction/fill-skip counters.
    pub counters: CacheCounters,
}

impl ResultCache {
    /// Creates a cache with the given byte budget.  A budget of 0 disables
    /// caching: every operation is a no-op and every counter stays 0.
    pub fn new(budget_bytes: usize) -> Self {
        ResultCache {
            budget: budget_bytes,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: BTreeMap::new(),
                bytes: 0,
                next_tick: 0,
            }),
            counters: CacheCounters::default(),
        }
    }

    /// A disabled cache (budget 0).
    pub fn disabled() -> Self {
        ResultCache::new(0)
    }

    /// Whether the cache can ever hold anything.
    pub fn is_enabled(&self) -> bool {
        self.budget > 0
    }

    /// Bytes currently held (the `prdnn_cache_bytes` gauge on the
    /// `metrics` endpoint).
    pub fn bytes(&self) -> u64 {
        self.lock().bytes as u64
    }

    /// Entries currently held (the `prdnn_cache_entries` gauge).
    ///
    /// Service-time telemetry — how long a request took when it hit the
    /// cache vs when it ran on the pool — is recorded by the batcher at the
    /// probe/fill sites (`prdnn_cache_service_seconds{result=...}`), not
    /// here: the cache has no notion of when the request arrived.
    pub fn entries(&self) -> u64 {
        self.lock().map.len() as u64
    }

    // Per the crate-wide policy (lib.rs), the cache recovers from lock
    // poisoning: its state is consistent at every await-free step, and a
    // worst-case inconsistency is a wrong *byte estimate*, never a wrong
    // payload.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a reply payload, refreshing its recency on a hit.
    pub fn probe(&self, key: &CacheKey) -> Option<ReplyData> {
        if !self.is_enabled() {
            return None;
        }
        let mut inner = self.lock();
        let inner = &mut *inner;
        match inner.map.get_mut(key) {
            Some(entry) => {
                inner.order.remove(&entry.tick);
                entry.tick = inner.next_tick;
                inner.order.insert(entry.tick, *key);
                inner.next_tick += 1;
                let data = entry.data.clone();
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(data)
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a reply payload, evicting least-recently-used entries until
    /// the budget holds.  Payloads larger than the whole budget are not
    /// inserted (they would evict everything and then thrash); a key that
    /// is already present keeps its existing entry (payloads for a key are
    /// bit-identical by construction, so there is nothing to update).
    pub fn fill(&self, key: CacheKey, data: &ReplyData) {
        if !self.is_enabled() {
            return;
        }
        let bytes = payload_bytes(data) + ENTRY_OVERHEAD;
        if bytes > self.budget {
            return;
        }
        let mut evicted = 0u64;
        let inserted = {
            let mut inner = self.lock();
            if inner.map.contains_key(&key) {
                false
            } else {
                let tick = inner.next_tick;
                inner.next_tick += 1;
                inner.map.insert(
                    key,
                    Entry {
                        data: data.clone(),
                        bytes,
                        tick,
                    },
                );
                inner.order.insert(tick, key);
                inner.bytes += bytes;
                while inner.bytes > self.budget {
                    let (&oldest_tick, &oldest_key) = inner
                        .order
                        .iter()
                        .next()
                        .expect("bytes > 0 implies entries");
                    inner.order.remove(&oldest_tick);
                    let entry = inner.map.remove(&oldest_key).expect("order/map in sync");
                    inner.bytes -= entry.bytes;
                    evicted += 1;
                }
                true
            }
        };
        if inserted {
            self.counters.inserts.fetch_add(1, Ordering::Relaxed);
        }
        if evicted > 0 {
            self.counters
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Records a fill that was skipped because the request's deadline had
    /// expired by the time its result was computed.
    pub fn skip_fill(&self) {
        if self.is_enabled() {
            self.counters.fill_skips.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdnn_core::DecoupledNetwork;
    use prdnn_datasets::registry;

    fn version(name: &str, v: u32, ddnn: DecoupledNetwork) -> ModelVersion {
        ModelVersion::new(name.to_owned(), v, ddnn, "test".to_owned(), None)
    }

    fn outputs(n: usize, dim: usize) -> ReplyData {
        ReplyData::Outputs(vec![vec![0.5; dim]; n])
    }

    #[test]
    fn lru_evicts_oldest_first_within_the_byte_budget() {
        // Each payload: 1 row × 8 floats = 64 + 24 vec overhead = 88, plus
        // 128 entry overhead = 216 bytes.  Budget fits exactly three.
        let per_entry = 8 * 8 + VEC_OVERHEAD + ENTRY_OVERHEAD;
        let cache = ResultCache::new(3 * per_entry);
        let net = version("m", 1, ddnn("n1"));
        let keys: Vec<CacheKey> = (0..4)
            .map(|i| CacheKey::eval(&net, &[vec![i as f64]]))
            .collect();

        for key in &keys[..3] {
            cache.fill(*key, &outputs(1, 8));
        }
        assert_eq!(cache.entries(), 3);
        assert_eq!(cache.bytes(), 3 * per_entry as u64);

        // Refresh key 0 so key 1 is now the oldest, then overflow.
        assert!(cache.probe(&keys[0]).is_some());
        cache.fill(keys[3], &outputs(1, 8));
        assert_eq!(cache.entries(), 3);
        assert!(cache.probe(&keys[1]).is_none(), "LRU entry must be evicted");
        assert!(cache.probe(&keys[0]).is_some(), "refreshed entry survives");
        assert!(cache.probe(&keys[2]).is_some());
        assert!(cache.probe(&keys[3]).is_some());

        let c = &cache.counters;
        assert_eq!(c.inserts.load(Ordering::Relaxed), 4);
        assert_eq!(c.evictions.load(Ordering::Relaxed), 1);
        assert_eq!(c.hits.load(Ordering::Relaxed), 4);
        assert_eq!(c.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn oversized_payloads_and_duplicate_keys_are_not_inserted() {
        let cache = ResultCache::new(300);
        let net = version("m", 1, ddnn("n1"));
        let key = CacheKey::eval(&net, &[vec![1.0]]);

        // Larger than the whole budget: rejected outright.
        cache.fill(key, &outputs(10, 8));
        assert_eq!(cache.entries(), 0);

        cache.fill(key, &outputs(1, 1));
        cache.fill(key, &outputs(1, 1));
        assert_eq!(cache.entries(), 1);
        assert_eq!(cache.counters.inserts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let cache = ResultCache::disabled();
        assert!(!cache.is_enabled());
        let net = version("m", 1, ddnn("n1"));
        let key = CacheKey::eval(&net, &[vec![1.0]]);
        cache.fill(key, &outputs(1, 1));
        assert!(cache.probe(&key).is_none());
        assert_eq!(cache.bytes(), 0);
        let c = &cache.counters;
        assert_eq!(c.hits.load(Ordering::Relaxed), 0);
        assert_eq!(c.misses.load(Ordering::Relaxed), 0);
        assert_eq!(c.inserts.load(Ordering::Relaxed), 0);
    }

    fn ddnn(spec: &str) -> DecoupledNetwork {
        DecoupledNetwork::from_network(&registry::build_model(spec).unwrap())
    }

    #[test]
    fn value_edits_change_eval_keys_but_share_lin_regions_keys() {
        let parent = version("m", 1, ddnn("n1"));
        // A value-only repair: same activation channel, different value
        // channel — exactly what `publish_repair` produces.
        let mut repaired_ddnn = ddnn("n1");
        let params = repaired_ddnn.value_network().layer(0).num_params();
        repaired_ddnn.apply_value_delta(0, &vec![0.25; params]);
        let child = version("m", 2, repaired_ddnn);

        let input = vec![vec![0.5]];
        assert_ne!(
            CacheKey::eval(&parent, &input),
            CacheKey::eval(&child, &input),
            "a repair must never be answered from the parent's eval entries"
        );

        let polytope = vec![vec![vec![-1.0], vec![2.0]]];
        assert_eq!(
            CacheKey::lin_regions(&parent, &polytope),
            CacheKey::lin_regions(&child, &polytope),
            "value edits preserve linear regions (Theorem 4.6): \
             the child shares the parent's lin_regions entries"
        );

        // Length framing: same flat floats, different shapes, distinct keys.
        assert_ne!(
            CacheKey::eval(&parent, &[vec![1.0, 2.0]]),
            CacheKey::eval(&parent, &[vec![1.0], vec![2.0]]),
        );
    }
}
