//! The client library: a blocking, single-connection `prdnn-serve` client
//! used by `servebench`, the end-to-end tests, and any embedding that
//! wants typed calls instead of raw frames.

use crate::protocol::{
    embed_request_id, read_frame, request_id_of, write_frame, ErrorKind, JobState, ModelRef,
    RegionWire, Request, Response, ServerStats, VersionInfo,
};
use prdnn_core::{PointSpec, RepairConfig};
use serde::json::Value;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Transport(String),
    /// The server answered with an error response.
    Server {
        /// Machine-readable category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
        /// Server's backoff hint for retryable errors, when it sent one.
        retry_after_ms: Option<u64>,
    },
    /// The server answered with a response of the wrong type.
    UnexpectedResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(m) => write!(f, "transport error: {m}"),
            ClientError::Server { kind, message, .. } => {
                write!(f, "server error ({kind:?}): {message}")
            }
            ClientError::UnexpectedResponse(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// The server-side error kind, if this is a server error.
    pub fn kind(&self) -> Option<ErrorKind> {
        match self {
            ClientError::Server { kind, .. } => Some(*kind),
            _ => None,
        }
    }
}

/// A blocking client over one TCP connection.
pub struct Client {
    stream: TcpStream,
    /// A correlation id to stamp on the next request sent (one-shot).
    next_request_id: Option<u64>,
    /// The `request_id` the server echoed in the last response.
    last_request_id: Option<u64>,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            next_request_id: None,
            last_request_id: None,
        })
    }

    /// Connects with a bound on how long the TCP handshake may take —
    /// under fault injection a proxy may accept slowly or not at all, and
    /// a resilient caller must not block forever on `connect`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures, including the timeout.
    pub fn connect_timeout(addr: &std::net::SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            next_request_id: None,
            last_request_id: None,
        })
    }

    /// Bounds every socket read and write (`None` removes the bound).  A
    /// request whose response never arrives then fails as
    /// [`ClientError::Transport`] instead of hanging the caller.
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` failures.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] on connection/framing failures; error
    /// *responses* are returned as `Ok(Response::Error { .. })` here (the
    /// typed helpers below turn them into [`ClientError::Server`]).
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut value = request.to_value();
        if let Some(id) = self.next_request_id.take() {
            embed_request_id(&mut value, id);
        }
        write_frame(&mut self.stream, &value).map_err(|e| ClientError::Transport(e.to_string()))?;
        let value =
            read_frame(&mut self.stream).map_err(|e| ClientError::Transport(e.to_string()))?;
        self.last_request_id = request_id_of(&value);
        Response::from_value(&value).map_err(ClientError::UnexpectedResponse)
    }

    /// Stamps `id` as the correlation `request_id` of the **next** request
    /// only; the server echoes it in the response and tags the request's
    /// telemetry spans with it (useful for finding a specific request in
    /// `trace` output).  Without this, the server assigns one.
    pub fn set_next_request_id(&mut self, id: u64) {
        self.next_request_id = Some(id);
    }

    /// The `request_id` the server echoed in the most recent response.
    pub fn last_request_id(&self) -> Option<u64> {
        self.last_request_id
    }

    fn expect(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.request(request)? {
            Response::Error {
                kind,
                message,
                retry_after_ms,
            } => Err(ClientError::Server {
                kind,
                message,
                retry_after_ms,
            }),
            response => Ok(response),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.expect(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Loads a generator-spec model; returns the published version (1).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn load_generator(&mut self, name: &str, generator: &str) -> Result<u32, ClientError> {
        let request = Request::LoadGenerator {
            name: name.to_owned(),
            generator: generator.to_owned(),
        };
        match self.expect(&request)? {
            Response::Loaded { version, .. } => Ok(version),
            other => Err(unexpected("loaded", &other)),
        }
    }

    /// Loads a serialised network (see `prdnn_nn::network_to_json`).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn load_network(
        &mut self,
        name: &str,
        network: &prdnn_nn::Network,
    ) -> Result<u32, ClientError> {
        let request = Request::LoadNetwork {
            name: name.to_owned(),
            network: prdnn_nn::network_to_json(network),
        };
        match self.expect(&request)? {
            Response::Loaded { version, .. } => Ok(version),
            other => Err(unexpected("loaded", &other)),
        }
    }

    /// Evaluates a model version on a batch of inputs.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn eval(
        &mut self,
        model: &ModelRef,
        inputs: Vec<Vec<f64>>,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<Vec<f64>>, ClientError> {
        let request = Request::Eval {
            model: model.clone(),
            inputs,
            deadline_ms,
        };
        match self.expect(&request)? {
            Response::Outputs(outputs) => Ok(outputs),
            other => Err(unexpected("outputs", &other)),
        }
    }

    /// Computes linear regions of a model version over input polytopes.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn lin_regions(
        &mut self,
        model: &ModelRef,
        polytopes: Vec<Vec<Vec<f64>>>,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<Vec<RegionWire>>, ClientError> {
        let request = Request::LinRegions {
            model: model.clone(),
            polytopes,
            deadline_ms,
        };
        match self.expect(&request)? {
            Response::Regions(regions) => Ok(regions),
            other => Err(unexpected("regions", &other)),
        }
    }

    /// Enqueues a repair; returns the job id.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn repair(
        &mut self,
        model: &ModelRef,
        layer: usize,
        spec: PointSpec,
        config: RepairConfig,
    ) -> Result<u64, ClientError> {
        let request = Request::Repair {
            model: model.clone(),
            layer,
            spec,
            config,
        };
        match self.expect(&request)? {
            Response::JobQueued { job } => Ok(job),
            other => Err(unexpected("job_queued", &other)),
        }
    }

    /// Polls a job once.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn job_status(&mut self, job: u64) -> Result<JobState, ClientError> {
        match self.expect(&Request::JobStatus { job })? {
            Response::Job(state) => Ok(state),
            other => Err(unexpected("job", &other)),
        }
    }

    /// Polls a job until it settles (done or failed) or `timeout` passes.
    ///
    /// Poll spacing backs off exponentially (1 ms doubling to a 64 ms
    /// ceiling) so a minutes-long repair costs dozens of status requests,
    /// not tens of thousands, while a fast job is still observed settling
    /// within a couple of milliseconds.  Each sleep is clamped to the time
    /// remaining so the deadline overshoots by at most one poll.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] with a timeout message when the job does
    /// not settle in time; otherwise see [`Client::request`].
    pub fn wait_for_job(&mut self, job: u64, timeout: Duration) -> Result<JobState, ClientError> {
        let deadline = Instant::now() + timeout;
        let mut attempt = 0u32;
        loop {
            match self.job_status(job)? {
                state @ (JobState::Done { .. } | JobState::Failed { .. }) => return Ok(state),
                _ => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    match poll_delay(attempt, remaining) {
                        Some(delay) => std::thread::sleep(delay),
                        None => {
                            return Err(ClientError::Transport(format!(
                                "job {job} did not settle within {timeout:?}"
                            )))
                        }
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// Fetches a model version's full serialised form.  The returned
    /// response is always [`Response::Network`]; its `activation`/`value`
    /// documents round-trip weights bit-for-bit, so two fetches of the
    /// same acknowledged version compare equal even across a server
    /// restart.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn get_network(&mut self, model: &ModelRef) -> Result<Response, ClientError> {
        let request = Request::GetNetwork {
            model: model.clone(),
        };
        match self.expect(&request)? {
            network @ Response::Network { .. } => Ok(network),
            other => Err(unexpected("network", &other)),
        }
    }

    /// Lists stored models as `(name, latest_version)`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn list_models(&mut self) -> Result<Vec<(String, u32)>, ClientError> {
        match self.expect(&Request::ListModels)? {
            Response::Models(models) => Ok(models),
            other => Err(unexpected("models", &other)),
        }
    }

    /// Lists one model's versions with provenance.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn list_versions(&mut self, name: &str) -> Result<Vec<VersionInfo>, ClientError> {
        let request = Request::ListVersions {
            name: name.to_owned(),
        };
        match self.expect(&request)? {
            Response::Versions(versions) => Ok(versions),
            other => Err(unexpected("versions", &other)),
        }
    }

    /// Reads the server's counters.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.expect(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Reads the server's counters rendered as Prometheus text exposition
    /// format (the same numbers as [`Client::stats`], for scrapers).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.expect(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Fetches the server's retained slow-request traces as structured
    /// JSON: an array of `{request_id, kind, total_ms, spans}` objects,
    /// oldest first (see the `telemetry` module docs for the span
    /// taxonomy).  Empty when nothing crossed `--slow-ms`, or when tracing
    /// is disabled (`--slow-ms 0`).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn trace(&mut self) -> Result<Value, ClientError> {
        match self.expect(&Request::Trace)? {
            Response::Trace { slow } => Ok(slow),
            other => Err(unexpected("trace", &other)),
        }
    }

    /// Asks the server to begin graceful shutdown.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.expect(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutting_down", &other)),
        }
    }
}

/// The sleep before poll `attempt + 1` of [`Client::wait_for_job`]:
/// `min(1ms << attempt, 64ms)`, clamped to the `remaining` budget.
/// `None` once the budget is exhausted — time to report the timeout.
fn poll_delay(attempt: u32, remaining: Duration) -> Option<Duration> {
    if remaining.is_zero() {
        return None;
    }
    let backoff = Duration::from_millis(1u64 << attempt.min(6));
    Some(backoff.min(remaining))
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::UnexpectedResponse(format!("expected {wanted}, got {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_schedule_doubles_caps_and_respects_the_deadline() {
        let budget = Duration::from_secs(60);
        // Doubling run: 1, 2, 4, 8, 16, 32 ms...
        for attempt in 0..6 {
            assert_eq!(
                poll_delay(attempt, budget),
                Some(Duration::from_millis(1 << attempt))
            );
        }
        // ...then pinned to the 64 ms ceiling forever.
        for attempt in [6, 7, 20, 63, u32::MAX] {
            assert_eq!(poll_delay(attempt, budget), Some(Duration::from_millis(64)));
        }
        // Total sleep over the first n polls stays bounded by the budget:
        // each delay is clamped to what is left.
        assert_eq!(
            poll_delay(10, Duration::from_millis(3)),
            Some(Duration::from_millis(3))
        );
        assert_eq!(
            poll_delay(0, Duration::from_micros(200)),
            Some(Duration::from_micros(200))
        );
        // An exhausted budget stops the loop instead of sleeping zero and
        // spinning.
        assert_eq!(poll_delay(4, Duration::ZERO), None);
    }
}
