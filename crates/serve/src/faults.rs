//! Deterministic storage fault injection for the WAL backend.
//!
//! A [`FaultInjector`] sits between [`crate::wal::WalLog`] and the
//! filesystem and decides, per write / fsync operation, whether to inject
//! a failure.  Three fault kinds model the storage failures a durable log
//! must survive:
//!
//! * **fsync failure** — the data may or may not be on disk; the only safe
//!   remediation is to truncate the log back to its last known-good prefix
//!   and fail the publish.
//! * **short write** — a real partial prefix of the frame lands in the
//!   file (exactly what a crash mid-`write` leaves behind), then the write
//!   reports failure.
//! * **ENOSPC** — the write fails before any byte lands.
//!
//! Every decision is **deterministic**: a seed plus per-kind operation
//! counters drive a splitmix64 stream, so a failing schedule reproduces
//! exactly from its spec string.  Three trigger forms compose per kind:
//!
//! * `kind=P` — fail with probability `P`/1000 per operation (seeded);
//! * `kind@N` — fail exactly the `N`th operation of that kind, once;
//! * `kind%N` — fail every `N`th operation of that kind.
//!
//! Kinds are `fsync`, `short`, and `enospc` (`short`/`enospc` consume the
//! same write-operation counter; `enospc` wins when both fire).  Specs are
//! comma-separated, e.g. `seed=42,fsync=150,short@3,enospc%7`, and are
//! accepted by the `prdnn-serve` binary's `--fault-wal` flag so the crash
//! e2e can run the real server under injected faults.

use std::sync::atomic::{AtomicU64, Ordering};

/// Deterministic 64-bit mixer; the repo-wide convention for seeded,
/// reproducible pseudo-randomness without a PRNG state to thread around.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One fault kind's trigger: any combination of the three forms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Trigger {
    /// Fail with this probability per mille (seeded, per operation).
    per_mille: u32,
    /// Fail exactly this (1-based) operation index, once.
    nth: Option<u64>,
    /// Fail every `N`th operation.
    every: Option<u64>,
}

impl Trigger {
    fn is_active(&self) -> bool {
        self.per_mille > 0 || self.nth.is_some() || self.every.is_some()
    }

    /// Whether operation `op` (1-based) of this kind fails.  `roll` is a
    /// uniform value in `[0, 1000)` derived from the injector seed.
    fn fires(&self, op: u64, roll: u64) -> bool {
        if self.nth == Some(op) {
            return true;
        }
        if let Some(every) = self.every {
            if every > 0 && op.is_multiple_of(every) {
                return true;
            }
        }
        roll < u64::from(self.per_mille)
    }
}

/// What an injected write fault does to the frame being appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Fail without writing anything (disk full).
    Enospc,
    /// Write only `keep_per_mille`/1000 of the frame for real, then fail —
    /// the file now holds a genuine torn prefix.
    Short {
        /// Fraction of the frame that lands, per mille (0..1000).
        keep_per_mille: u32,
    },
}

/// The deterministic fault decision stream; see the module docs.
#[derive(Debug, Default)]
pub struct FaultInjector {
    seed: u64,
    fsync: Trigger,
    short: Trigger,
    enospc: Trigger,
    write_ops: AtomicU64,
    fsync_ops: AtomicU64,
    injected: AtomicU64,
}

impl FaultInjector {
    /// An injector that never fires (the production default).
    pub fn none() -> FaultInjector {
        FaultInjector::default()
    }

    /// Whether any trigger is configured.
    pub fn is_active(&self) -> bool {
        self.fsync.is_active() || self.short.is_active() || self.enospc.is_active()
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Parses a spec string (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed token.
    pub fn parse(spec: &str) -> Result<FaultInjector, String> {
        let mut injector = FaultInjector::none();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind, form, value) = if let Some((k, v)) = token.split_once('=') {
                (k, '=', v)
            } else if let Some((k, v)) = token.split_once('@') {
                (k, '@', v)
            } else if let Some((k, v)) = token.split_once('%') {
                (k, '%', v)
            } else {
                return Err(format!(
                    "fault spec token {token:?}: expected kind=P, kind@N, or kind%N"
                ));
            };
            let n: u64 = value
                .parse()
                .map_err(|_| format!("fault spec token {token:?}: bad number {value:?}"))?;
            if kind == "seed" {
                if form != '=' {
                    return Err(format!("fault spec token {token:?}: seed takes '='"));
                }
                injector.seed = n;
                continue;
            }
            let trigger = match kind {
                "fsync" => &mut injector.fsync,
                "short" => &mut injector.short,
                "enospc" => &mut injector.enospc,
                other => {
                    return Err(format!(
                        "fault spec token {token:?}: unknown kind {other:?} \
                         (expected seed, fsync, short, or enospc)"
                    ))
                }
            };
            match form {
                '=' => {
                    if n > 1000 {
                        return Err(format!(
                            "fault spec token {token:?}: probability is per mille (0..=1000)"
                        ));
                    }
                    trigger.per_mille = n as u32;
                }
                '@' => trigger.nth = Some(n.max(1)),
                '%' => trigger.every = Some(n.max(1)),
                _ => unreachable!("split_once chose the form"),
            }
        }
        Ok(injector)
    }

    /// Consumes one write operation and decides its fate.  `None` = the
    /// write proceeds untouched.
    pub fn next_write_fault(&self) -> Option<WriteFault> {
        if !(self.short.is_active() || self.enospc.is_active()) {
            return None;
        }
        let op = self.write_ops.fetch_add(1, Ordering::Relaxed) + 1;
        let roll = |tag: u64| splitmix64(self.seed ^ (tag << 48) ^ op) % 1000;
        if self.enospc.fires(op, roll(1)) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Some(WriteFault::Enospc);
        }
        if self.short.fires(op, roll(2)) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            // Keep a deterministic 5%..95% of the frame.
            let keep_per_mille = 50 + (splitmix64(self.seed ^ (3 << 48) ^ op) % 900) as u32;
            return Some(WriteFault::Short { keep_per_mille });
        }
        None
    }

    /// Consumes one fsync operation; `Some` = the fsync must report this
    /// error without being attempted.
    pub fn next_fsync_fault(&self) -> Option<std::io::Error> {
        if !self.fsync.is_active() {
            return None;
        }
        let op = self.fsync_ops.fetch_add(1, Ordering::Relaxed) + 1;
        let roll = splitmix64(self.seed ^ (4 << 48) ^ op) % 1000;
        if self.fsync.fires(op, roll) {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Some(std::io::Error::other(format!(
                "injected fsync failure (fsync op {op})"
            )));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_injector_never_fires_and_consumes_no_ops() {
        let inj = FaultInjector::none();
        for _ in 0..100 {
            assert_eq!(inj.next_write_fault(), None);
            assert!(inj.next_fsync_fault().is_none());
        }
        assert_eq!(inj.injected(), 0);
        assert!(!inj.is_active());
    }

    #[test]
    fn nth_trigger_fires_exactly_once_at_the_named_op() {
        let inj = FaultInjector::parse("fsync@3").unwrap();
        let fired: Vec<bool> = (0..6).map(|_| inj.next_fsync_fault().is_some()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn every_trigger_fires_periodically() {
        let inj = FaultInjector::parse("enospc%2").unwrap();
        let fired: Vec<bool> = (0..6).map(|_| inj.next_write_fault().is_some()).collect();
        assert_eq!(fired, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn probability_stream_is_deterministic_for_a_seed() {
        let a = FaultInjector::parse("seed=7,short=300").unwrap();
        let b = FaultInjector::parse("seed=7,short=300").unwrap();
        let fa: Vec<Option<WriteFault>> = (0..64).map(|_| a.next_write_fault()).collect();
        let fb: Vec<Option<WriteFault>> = (0..64).map(|_| b.next_write_fault()).collect();
        assert_eq!(fa, fb);
        assert!(fa.iter().any(Option::is_some), "300‰ over 64 ops must fire");
        assert!(fa.iter().any(Option::is_none), "300‰ must not always fire");
        for fault in fa.into_iter().flatten() {
            let WriteFault::Short { keep_per_mille } = fault else {
                panic!("short trigger produced {fault:?}")
            };
            assert!((50..950).contains(&keep_per_mille), "{keep_per_mille}");
        }
    }

    #[test]
    fn enospc_wins_over_short_on_the_same_op() {
        let inj = FaultInjector::parse("enospc@1,short@1").unwrap();
        assert_eq!(inj.next_write_fault(), Some(WriteFault::Enospc));
    }

    #[test]
    fn malformed_specs_are_rejected_with_a_message() {
        for bad in [
            "bogus=1",
            "fsync",
            "fsync=abc",
            "fsync=1001",
            "seed@3",
            "short^2",
        ] {
            let err = FaultInjector::parse(bad).unwrap_err();
            assert!(err.contains("fault spec token"), "{bad:?} -> {err}");
        }
        // The empty spec is a no-op injector, not an error.
        assert!(!FaultInjector::parse("").unwrap().is_active());
    }
}
