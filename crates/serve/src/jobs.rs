//! The repair job queue.
//!
//! Repairs solve an LP — milliseconds on toy models, minutes at paper
//! scale — so they must never run on a connection thread or block the
//! accept loop.  A `repair` request enqueues a job into a bounded FIFO and
//! immediately returns a job id; dedicated workers pop jobs and run
//! [`prdnn_core::repair_points_ddnn_in`] on the shared pool, publishing
//! the repaired network as the model's next version with full provenance.
//! Clients poll `job_status` until `done` (which names the published
//! version) or `failed`.
//!
//! # Single writer per model
//!
//! Repairs of one model are **serialised**: a worker never pops a job
//! whose model has a repair in flight (jobs of other models may overtake
//! it; jobs of the same model keep FIFO order).  Without this, two
//! workers could run repairs of the same model against the same parent
//! and the later publish would silently discard the earlier repair's
//! deltas — a lost update.  With it, each job re-resolves the model's
//! *current* head at execution time (stable while the job runs, thanks to
//! the in-flight guard) so concurrent repairs stack: every published
//! version is the child of the head it actually repaired, and its
//! `source` names that true parent.  The paper's repair is one global LP
//! per model, so per-model serialisation costs no parallelism that was
//! semantically available.
//!
//! Shutdown is a drain, not an abort: queued jobs still run and publish
//! before the workers exit, so an accepted repair is never silently lost.
//!
//! Publishing goes through the store's [`crate::version_log::VersionLog`]:
//! under a durable backend ([`crate::wal::WalLog`]) the WAL record is
//! fsynced *before* `publish_repair` returns, so a job only reports `done`
//! once its version would survive a crash — and a durability failure
//! surfaces as the job's `failed` state, never as a phantom version.

use crate::protocol::{ErrorKind, JobState, ModelRef};
use crate::store::{ModelStore, ModelVersion};
use crate::telemetry::{self, Outcome, Stage, Telemetry};
use prdnn_core::{repair_points_ddnn_in, PointSpec, RepairConfig};
use prdnn_par::PoolRef;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

struct RepairJob {
    id: u64,
    /// The version the client saw at submission.  Execution re-resolves
    /// the model's head (see the module docs): this field names the model
    /// and serves as a fallback if the model vanished from the store.
    parent: Arc<ModelVersion>,
    layer: usize,
    spec: PointSpec,
    config: RepairConfig,
    /// The submitting request's correlation id (0 = untracked); the job's
    /// spans (queue wait, LP solve, WAL append) record under it.
    request_id: u64,
    /// When the job entered the FIFO; queue-wait telemetry measures from
    /// here.
    submitted: Instant,
}

/// The outcome of a [`JobQueue::lookup`].
#[derive(Debug, Clone, PartialEq)]
pub enum StatusLookup {
    /// The job's current state.
    Found(JobState),
    /// The job settled long ago and its record was evicted
    /// ([`MAX_SETTLED_RETAINED`]).
    Evicted,
    /// No job with this id was ever issued.
    NeverIssued,
}

/// How many settled (done/failed) job records are retained for polling.
/// Older ones are evicted FIFO; polling an evicted id reports unknown-job.
/// Bounds the status map on a long-lived server — queued/running jobs are
/// never evicted (they are bounded by the queue cap + worker count).
const MAX_SETTLED_RETAINED: usize = 1024;

struct JobsInner {
    queue: VecDeque<RepairJob>,
    statuses: HashMap<u64, JobState>,
    /// Settled job ids in completion order, for FIFO eviction.
    settled: VecDeque<u64>,
    /// Models with a repair currently running on some worker.  The pop
    /// path skips queued jobs whose model is in flight, so at most one
    /// repair per model runs at a time (single writer per model).
    in_flight: HashSet<String>,
    next_id: u64,
    shutdown: bool,
}

/// Counters exposed through the `stats` request.
#[derive(Debug, Default)]
pub struct JobCounters {
    /// Jobs accepted into the queue.
    pub submitted: AtomicU64,
    /// Jobs that finished and published a version.
    pub completed: AtomicU64,
    /// Jobs that failed.
    pub failed: AtomicU64,
    /// Jobs rejected at submission because the FIFO was full (load
    /// shedding — each one surfaced a typed `overloaded` to its client).
    pub shed: AtomicU64,
    /// Total simplex pivots across all completed repairs' LP solves.
    pub lp_pivots: AtomicU64,
    /// Total basis refactorisations across all completed repairs.
    pub lp_refactorizations: AtomicU64,
}

/// The bounded FIFO repair queue; see the module docs.
pub struct JobQueue {
    inner: Mutex<JobsInner>,
    cv: Condvar,
    cap: usize,
    store: Arc<ModelStore>,
    pool: Arc<PoolRef>,
    telemetry: Arc<Telemetry>,
    /// Job counters.
    pub counters: JobCounters,
}

impl JobQueue {
    /// Recovers the job-state lock from poisoning.  Every critical section
    /// in this module leaves `JobsInner` consistent at each step (pushes,
    /// map inserts), so a panic under the lock — which can only come from
    /// allocation failure — must not take status polling and the worker
    /// drain down with it.  `submit` is the exception: it fails typed
    /// instead (see there).
    fn lock_inner(&self) -> MutexGuard<'_, JobsInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Creates a queue holding at most `cap` waiting jobs, recording
    /// queue-wait / LP-solve telemetry into `telemetry`.
    pub fn new(
        store: Arc<ModelStore>,
        pool: Arc<PoolRef>,
        cap: usize,
        telemetry: Arc<Telemetry>,
    ) -> Self {
        JobQueue {
            inner: Mutex::new(JobsInner {
                queue: VecDeque::new(),
                statuses: HashMap::new(),
                settled: VecDeque::new(),
                in_flight: HashSet::new(),
                next_id: 1,
                shutdown: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
            store,
            pool,
            telemetry,
            counters: JobCounters::default(),
        }
    }

    /// Enqueues a repair of `parent`, returning the job id to poll.
    ///
    /// # Errors
    ///
    /// `(Overloaded, ..)` when the FIFO is full, `(ShuttingDown, ..)` once
    /// shutdown has begun.
    pub fn submit(
        &self,
        parent: Arc<ModelVersion>,
        layer: usize,
        spec: PointSpec,
        config: RepairConfig,
        request_id: u64,
    ) -> Result<u64, (ErrorKind, String)> {
        let id = {
            // Unlike the read paths, accepting a job into a queue that a
            // panic may have left suspect would promise work the server
            // cannot guarantee, so fail typed and let the client retry.
            let mut inner = self
                .inner
                .lock()
                .map_err(|_| (ErrorKind::Internal, "job queue lock poisoned".to_owned()))?;
            if inner.shutdown {
                return Err((
                    ErrorKind::ShuttingDown,
                    "server is draining; no new repairs accepted".to_owned(),
                ));
            }
            if inner.queue.len() >= self.cap {
                self.counters.shed.fetch_add(1, Ordering::Relaxed);
                return Err((
                    ErrorKind::Overloaded,
                    format!("repair queue full ({} pending jobs)", self.cap),
                ));
            }
            let id = inner.next_id;
            inner.next_id += 1;
            inner.statuses.insert(id, JobState::Queued);
            inner.queue.push_back(RepairJob {
                id,
                parent,
                layer,
                spec,
                config,
                request_id,
                submitted: Instant::now(),
            });
            id
        };
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_one();
        Ok(id)
    }

    /// The current state of a job, if the id was ever issued.
    pub fn status(&self, id: u64) -> Option<JobState> {
        self.lock_inner().statuses.get(&id).cloned()
    }

    /// Jobs currently waiting in the FIFO (point-in-time gauge).
    pub fn queue_depth(&self) -> u64 {
        self.lock_inner().queue.len() as u64
    }

    /// Repairs currently running on a worker (point-in-time gauge).
    pub fn in_flight(&self) -> u64 {
        self.lock_inner().in_flight.len() as u64
    }

    /// [`Self::status`], distinguishing a settled-and-evicted record from
    /// an id that was never issued — the two deserve different error
    /// messages.
    pub fn lookup(&self, id: u64) -> StatusLookup {
        let inner = self.lock_inner();
        match inner.statuses.get(&id) {
            Some(state) => StatusLookup::Found(state.clone()),
            // Ids are issued sequentially from 1, so anything below
            // `next_id` existed once and must have been evicted.
            None if id >= 1 && id < inner.next_id => StatusLookup::Evicted,
            None => StatusLookup::NeverIssued,
        }
    }

    /// The worker loop: pop jobs (per-model FIFO, skipping models with a
    /// repair already in flight — see the module docs), run them, publish
    /// results; after shutdown, keep going until the queue is empty
    /// (drain), then exit.  Run on one or more dedicated threads.
    pub fn worker_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut inner = self.lock_inner();
                loop {
                    // Front-to-back scan for the first job whose model has
                    // no repair in flight: jobs of distinct models may
                    // overtake each other, jobs of one model stay FIFO.
                    let ready = inner
                        .queue
                        .iter()
                        .position(|j| !inner.in_flight.contains(&j.parent.name));
                    if let Some(idx) = ready {
                        let job = inner
                            .queue
                            .remove(idx)
                            .expect("position() gave a live index");
                        inner.in_flight.insert(job.parent.name.clone());
                        inner.statuses.insert(job.id, JobState::Running);
                        break Some(job);
                    }
                    // During shutdown, blocked jobs must still drain: only
                    // exit once the queue is truly empty.
                    if inner.shutdown && inner.queue.is_empty() {
                        break None;
                    }
                    inner = self.cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
                }
            };
            let Some(job) = job else { return };
            let wait = job.submitted.elapsed();
            self.telemetry.job_queue_wait.record_duration(wait);
            self.telemetry.span_at(
                job.request_id,
                Stage::JobQueue,
                job.submitted,
                wait,
                Outcome::Ok,
            );
            // A panicking repair (LP assertion on a pathological spec)
            // must fail that job, not kill the worker for all later jobs.
            let state =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_job(&job)))
                    .unwrap_or_else(|_| JobState::Failed {
                        message: "repair panicked (internal error)".to_owned(),
                    });
            match &state {
                JobState::Done { .. } => self.counters.completed.fetch_add(1, Ordering::Relaxed),
                _ => self.counters.failed.fetch_add(1, Ordering::Relaxed),
            };
            {
                let mut inner = self.lock_inner();
                inner.in_flight.remove(&job.parent.name);
                inner.statuses.insert(job.id, state);
                inner.settled.push_back(job.id);
                while inner.settled.len() > MAX_SETTLED_RETAINED {
                    if let Some(evicted) = inner.settled.pop_front() {
                        inner.statuses.remove(&evicted);
                    }
                }
            }
            // A slow job promotes its full chain (queue wait, LP solve,
            // WAL append) to the slow-log under the submitting request's
            // id, measured over its whole queue-to-settled residence.
            self.telemetry
                .maybe_promote(job.request_id, "repair", job.submitted.elapsed());
            // Releasing the model may unblock a job that every waiting
            // worker previously skipped over.
            self.cv.notify_all();
        }
    }

    /// Begins shutdown: rejects new jobs and lets the workers drain.
    pub fn shutdown(&self) {
        self.lock_inner().shutdown = true;
        self.cv.notify_all();
    }

    fn run_job(&self, job: &RepairJob) -> JobState {
        // Repair the model's *current* head, not the submission-time
        // parent: earlier repairs may have stacked versions on top, and
        // running against a stale parent would discard their deltas when
        // this repair publishes (the lost update the in-flight guard
        // exists to prevent).  The head is stable for the whole run —
        // repair workers are the only publishers after load, and this
        // worker holds the model's in-flight slot.
        let head = self
            .store
            .resolve(&ModelRef::latest(&job.parent.name))
            .unwrap_or_else(|_| Arc::clone(&job.parent));
        // The publish path (store -> version log -> WAL) has no id
        // parameter; the thread-local scope attributes its spans.
        let _scope = telemetry::enter_request(job.request_id);
        let solve_start = Instant::now();
        let solved =
            repair_points_ddnn_in(&self.pool, &head.ddnn, job.layer, &job.spec, &job.config);
        let solve = solve_start.elapsed();
        self.telemetry.lp_solve.record_duration(solve);
        self.telemetry.span_at(
            job.request_id,
            Stage::LpSolve,
            solve_start,
            solve,
            if solved.is_ok() {
                Outcome::Ok
            } else {
                Outcome::Error
            },
        );
        match solved {
            Ok(outcome) => {
                let provenance = outcome.provenance(job.spec.content_hash(), &job.config);
                let (delta_l1, delta_linf) = (provenance.delta_l1, provenance.delta_linf);
                let (lp_pivots, lp_refactorizations) =
                    (provenance.lp_pivots, provenance.lp_refactorizations);
                match self.store.publish_repair(
                    &head.name,
                    outcome.repaired,
                    // The source names the version actually repaired — the
                    // true parent — which under concurrent submissions may
                    // be newer than what the client saw.
                    format!("repair of {}@v{}", head.name, head.version),
                    provenance,
                ) {
                    Ok(published) => {
                        self.counters
                            .lp_pivots
                            .fetch_add(lp_pivots, Ordering::Relaxed);
                        self.counters
                            .lp_refactorizations
                            .fetch_add(lp_refactorizations, Ordering::Relaxed);
                        JobState::Done {
                            model: published.name.clone(),
                            version: published.version,
                            delta_l1,
                            delta_linf,
                            lp_pivots,
                            lp_refactorizations,
                        }
                    }
                    Err(e) => JobState::Failed {
                        message: format!("repair succeeded but publishing failed: {e}"),
                    },
                }
            }
            Err(e) => JobState::Failed {
                message: e.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ModelRef;
    use prdnn_core::{DecoupledNetwork, OutputPolytope};
    use prdnn_datasets::registry;
    use std::thread;
    use std::time::Duration;

    fn equation_2_spec() -> PointSpec {
        let mut spec = PointSpec::new();
        spec.push(vec![0.5], OutputPolytope::scalar_interval(-1.0, -0.8));
        spec.push(vec![1.5], OutputPolytope::scalar_interval(-0.2, 0.0));
        spec
    }

    fn store_with_n1() -> (Arc<ModelStore>, Arc<ModelVersion>) {
        let store = Arc::new(ModelStore::new());
        let v1 = store
            .load(
                "n1",
                DecoupledNetwork::from_network(&registry::build_model("n1").unwrap()),
                "n1".into(),
            )
            .unwrap();
        (store, v1)
    }

    #[test]
    fn repair_job_publishes_version_2_with_provenance() {
        let (store, v1) = store_with_n1();
        let pool = Arc::new(prdnn_par::pool_for(Some(1)));
        let jobs = Arc::new(JobQueue::new(
            Arc::clone(&store),
            pool,
            4,
            Telemetry::new(0),
        ));
        let spec = equation_2_spec();
        let id = jobs
            .submit(v1, 0, spec.clone(), RepairConfig::default(), 0)
            .unwrap();
        assert_eq!(jobs.status(id), Some(JobState::Queued));
        assert_eq!(jobs.status(id + 7), None);

        let worker = {
            let jobs = Arc::clone(&jobs);
            thread::spawn(move || jobs.worker_loop())
        };
        // Poll until done (the repair is a tiny LP).
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let state = loop {
            match jobs.status(id).unwrap() {
                JobState::Done { .. } | JobState::Failed { .. } => break jobs.status(id).unwrap(),
                _ if std::time::Instant::now() > deadline => panic!("job stuck"),
                _ => thread::sleep(Duration::from_millis(2)),
            }
        };
        let JobState::Done {
            model,
            version,
            delta_l1,
            ..
        } = state
        else {
            panic!("repair failed: {state:?}")
        };
        assert_eq!((model.as_str(), version), ("n1", 2));
        assert!(delta_l1 > 0.0);

        // The published version satisfies the spec and carries provenance.
        let v2 = store.resolve(&ModelRef::version("n1", 2)).unwrap();
        assert!(spec.is_satisfied_by(|x| v2.ddnn.forward(x), 1e-6));
        let prov = v2.provenance.as_ref().unwrap();
        assert_eq!(prov.spec_hash, spec.content_hash());
        assert_eq!(prov.layer, 0);
        assert_eq!(v2.source, "repair of n1@v1");

        jobs.shutdown();
        worker.join().unwrap();
    }

    #[test]
    fn concurrent_repairs_of_one_model_stack_with_true_parentage() {
        // The lost-update pin: with 4 repair workers, N concurrent repairs
        // of one model must yield N stacked versions, each the child of
        // the previous head — never two siblings of the same parent where
        // the later publish silently discards the earlier one's deltas.
        let (store, v1) = store_with_n1();
        let pool = Arc::new(prdnn_par::pool_for(Some(1)));
        let jobs = Arc::new(JobQueue::new(
            Arc::clone(&store),
            pool,
            16,
            Telemetry::new(0),
        ));
        let repairs = 6u32;
        for _ in 0..repairs {
            // All submissions name v1 — what a client racing the repairs
            // would actually see.
            jobs.submit(
                Arc::clone(&v1),
                0,
                equation_2_spec(),
                RepairConfig::default(),
                0,
            )
            .unwrap();
        }
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let jobs = Arc::clone(&jobs);
                thread::spawn(move || jobs.worker_loop())
            })
            .collect();
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while jobs.counters.completed.load(Ordering::Relaxed)
            + jobs.counters.failed.load(Ordering::Relaxed)
            < repairs as u64
        {
            assert!(std::time::Instant::now() < deadline, "repairs stuck");
            thread::sleep(Duration::from_millis(2));
        }
        jobs.shutdown();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(
            jobs.counters.completed.load(Ordering::Relaxed),
            u64::from(repairs)
        );

        // N repairs → N stacked versions, each labelled with its true
        // parent: the head it actually repaired, not the stale v1 the
        // client submitted against.
        let versions = store.versions("n1").unwrap();
        assert_eq!(versions.len(), repairs as usize + 1);
        for v in &versions[1..] {
            assert_eq!(v.source, format!("repair of n1@v{}", v.version - 1));
        }
        // LP accounting: the queue's totals equal the sum over published
        // provenances (zero pivots is legitimate — tiny LPs route to the
        // uninstrumented dense backend — but the sums must agree).
        let expected: u64 = versions[1..]
            .iter()
            .map(|v| v.provenance.as_ref().unwrap().lp_pivots)
            .sum();
        assert_eq!(jobs.counters.lp_pivots.load(Ordering::Relaxed), expected);
    }

    #[test]
    fn infeasible_repairs_fail_and_queue_bounds_hold() {
        let (store, v1) = store_with_n1();
        let pool = Arc::new(prdnn_par::pool_for(Some(1)));
        let jobs = Arc::new(JobQueue::new(store, pool, 1, Telemetry::new(0)));
        let mut impossible = PointSpec::new();
        impossible.push(vec![0.5], OutputPolytope::scalar_interval(-1.0, -0.9));
        impossible.push(vec![0.5], OutputPolytope::scalar_interval(0.9, 1.0));
        let id = jobs
            .submit(
                Arc::clone(&v1),
                0,
                impossible.clone(),
                RepairConfig::default(),
                0,
            )
            .unwrap();
        // Queue cap reached.
        let err = jobs
            .submit(
                Arc::clone(&v1),
                0,
                impossible.clone(),
                RepairConfig::default(),
                0,
            )
            .unwrap_err();
        assert_eq!(err.0, ErrorKind::Overloaded);

        // Drain: shutdown first, then run the worker — the queued job must
        // still execute.
        jobs.shutdown();
        assert_eq!(
            jobs.submit(v1, 0, impossible, RepairConfig::default(), 0)
                .unwrap_err()
                .0,
            ErrorKind::ShuttingDown
        );
        jobs.worker_loop();
        let JobState::Failed { message } = jobs.status(id).unwrap() else {
            panic!("expected failure")
        };
        assert!(message.contains("no single-layer repair"), "{message}");
    }
}
