//! The version log: the append-only record of published model versions
//! that both the single-node store and (eventually) a replication stream
//! consume.
//!
//! This module extracts what used to live inside `ModelStore` into two
//! pieces:
//!
//! * [`VersionChains`] — the in-memory chain index (name → append-only
//!   version chain with an arc-swap-style atomic head).  Every backend
//!   keeps one: it *is* the serving read path, and its lock-freedom
//!   guarantees are unchanged from the original store (see the safety
//!   argument below).
//! * [`VersionLog`] — the durability contract.  [`MemoryLog`] is the
//!   original behaviour (versions live exactly as long as the process);
//!   [`crate::wal::WalLog`] appends an fsynced record per publish and
//!   recovers the chains on cold start.
//!
//! The load-bearing ordering is **write-ahead**: [`ModelEntry::publish_logged`]
//! appends the version to the log *before* storing the new chain head, so
//! no reader (and in particular no repair-job acknowledgement) can observe
//! a version that is not at least as durable as the backend promises.
//!
//! # Lock-freedom
//!
//! Readers resolve `latest` through an **arc-swap-style atomic head
//! pointer**: each entry keeps its versions in an intrusive linked list of
//! heap nodes whose head is an [`AtomicPtr`].  Publishing allocates a node
//! and stores the new head (writers are serialised by a small mutex);
//! resolving loads the head with `Acquire` and walks `prev` pointers.  The
//! safety argument is containment, not hazard pointers: **nodes are only
//! freed when the entry itself drops**, so any pointer loaded from the
//! head is valid for as long as the reader can hold it (readers access
//! entries through `Arc<ModelEntry>`).  This is the same immortal-snapshot
//! trade `arc-swap`'s cache layer makes, and it is exactly right here: all
//! versions must stay resolvable by `name@vN` anyway, so retaining them is
//! a feature, not a leak.

//!
//! # Lock poisoning
//!
//! Every lock in this module guards state that is consistent at all times
//! (chain heads swap atomically; the publish mutexes carry no data), so a
//! panic under one cannot leave torn state behind.  Per the crate-wide
//! error-handling policy (see `lib.rs`), these locks therefore **recover**
//! from poisoning with `PoisonError::into_inner` instead of propagating
//! the panic: one crashed worker must not take the read path down with it.

use prdnn_core::{DecoupledNetwork, RepairProvenance};
use prdnn_nn::network_content_hash;
use std::collections::HashMap;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};

/// One immutable published version of a model.
#[derive(Debug)]
pub struct ModelVersion {
    /// The model's store name.
    pub name: String,
    /// The version number (1 = the loaded model).
    pub version: u32,
    /// The network, in decoupled form (version 1 has identical activation
    /// and value channels; repaired versions differ in one value layer).
    pub ddnn: DecoupledNetwork,
    /// Where this version came from: a generator spec, `"network-json"`,
    /// or `"repair of <name>@v<N>"`.
    pub source: String,
    /// Repair provenance (`None` for loaded versions).
    pub provenance: Option<RepairProvenance>,
    /// Memoized `(activation, value)` channel content hashes — the result
    /// cache's key material.  Versions are immutable, so each channel is
    /// hashed at most once, on first use.
    channel_hashes: OnceLock<(u64, u64)>,
}

impl ModelVersion {
    /// Assembles a version.  The channel hashes are computed lazily on the
    /// first [`Self::channel_hashes`] call, never here: publishing must not
    /// pay for hashing that only the result cache needs.
    pub fn new(
        name: String,
        version: u32,
        ddnn: DecoupledNetwork,
        source: String,
        provenance: Option<RepairProvenance>,
    ) -> Self {
        ModelVersion {
            name,
            version,
            ddnn,
            source,
            provenance,
            channel_hashes: OnceLock::new(),
        }
    }

    /// The FNV-1a content hashes of the `(activation, value)` channels,
    /// memoized per version.
    ///
    /// These are the cache-key half that identifies *what network* answered:
    /// eval results depend on both channels, while `lin_regions` depends on
    /// the activation channel alone (the paper's Theorem 4.6 — value edits
    /// preserve linear regions), so a value-only repair legitimately shares
    /// its parent's `lin_regions` cache entries.
    pub fn channel_hashes(&self) -> (u64, u64) {
        *self.channel_hashes.get_or_init(|| {
            (
                network_content_hash(self.ddnn.activation_network()),
                network_content_hash(self.ddnn.value_network()),
            )
        })
    }
}

/// A node in an entry's append-only version chain.
struct VersionNode {
    version: Arc<ModelVersion>,
    /// The previously published version (null for version 1).
    prev: *mut VersionNode,
}

/// One named model: an atomic head pointer into its version chain.
pub struct ModelEntry {
    name: String,
    /// Arc-swap-style latest pointer; see the module docs for the safety
    /// argument.
    head: AtomicPtr<VersionNode>,
    /// Serialises publishers (readers never take it).
    publish_lock: Mutex<()>,
}

// SAFETY: the raw pointers only ever reference nodes owned by this entry's
// chain, which are allocated before being made reachable and freed only in
// `Drop`; all mutation of `head` is a single atomic store under
// `publish_lock`.
unsafe impl Send for ModelEntry {}
unsafe impl Sync for ModelEntry {}

impl ModelEntry {
    pub(crate) fn new(name: String) -> Self {
        ModelEntry {
            name,
            head: AtomicPtr::new(std::ptr::null_mut()),
            publish_lock: Mutex::new(()),
        }
    }

    /// The entry's model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The latest published version (lock-free).
    ///
    /// # Panics
    ///
    /// Panics if called before the first publish (the store never exposes
    /// an entry in that state).
    pub fn latest(&self) -> Arc<ModelVersion> {
        let head = self.head.load(Ordering::Acquire);
        assert!(!head.is_null(), "model entry exposed before first publish");
        // SAFETY: `head` points into this entry's chain; nodes live until
        // the entry drops, and `&self` keeps the entry alive.
        Arc::clone(unsafe { &(*head).version })
    }

    /// Every published version in one chain walk, oldest first
    /// (lock-free, O(versions)).
    pub fn all_versions(&self) -> Vec<Arc<ModelVersion>> {
        let mut out = Vec::new();
        let mut node = self.head.load(Ordering::Acquire);
        while !node.is_null() {
            // SAFETY: as in `latest`.
            let r = unsafe { &*node };
            out.push(Arc::clone(&r.version));
            node = r.prev;
        }
        out.reverse();
        out
    }

    /// Resolves a specific version by walking the chain from the head
    /// (lock-free; chains are as long as the number of repairs published).
    pub fn resolve_version(&self, version: u32) -> Option<Arc<ModelVersion>> {
        let mut node = self.head.load(Ordering::Acquire);
        while !node.is_null() {
            // SAFETY: as in `latest`.
            let r = unsafe { &*node };
            if r.version.version == version {
                return Some(Arc::clone(&r.version));
            }
            node = r.prev;
        }
        None
    }

    /// Publishes `build`'s version as the new head, assigning it the next
    /// version number, with **write-ahead ordering**: the version is
    /// appended to `log` (and is therefore as durable as the backend
    /// promises) *before* it becomes reachable through the chain head.  On
    /// a log failure nothing is published.
    ///
    /// # Errors
    ///
    /// Propagates the log append failure.
    pub(crate) fn publish_logged(
        &self,
        log: &dyn VersionLog,
        build: impl FnOnce(u32) -> ModelVersion,
    ) -> Result<Arc<ModelVersion>, LogError> {
        let _guard = self
            .publish_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let prev = self.head.load(Ordering::Relaxed);
        let next_version = if prev.is_null() {
            1
        } else {
            // SAFETY: as in `latest`.
            unsafe { &*prev }.version.version + 1
        };
        let version = Arc::new(build(next_version));
        log.append(&version)?;
        let published = Arc::clone(&version);
        let node = Box::into_raw(Box::new(VersionNode { version, prev }));
        self.head.store(node, Ordering::Release);
        Ok(published)
    }

    /// Installs an already-durable version during recovery (no log append).
    ///
    /// # Errors
    ///
    /// Rejects out-of-order version numbers — a gap means the record
    /// stream is corrupt and replay must stop.
    pub(crate) fn install_recovered(&self, version: Arc<ModelVersion>) -> Result<(), String> {
        let _guard = self
            .publish_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let prev = self.head.load(Ordering::Relaxed);
        let expected = if prev.is_null() {
            1
        } else {
            // SAFETY: as in `latest`.
            unsafe { &*prev }.version.version + 1
        };
        if version.version != expected {
            return Err(format!(
                "model {:?}: recovered version {} but expected {expected}",
                self.name, version.version
            ));
        }
        let node = Box::into_raw(Box::new(VersionNode { version, prev }));
        self.head.store(node, Ordering::Release);
        Ok(())
    }
}

impl Drop for ModelEntry {
    fn drop(&mut self) {
        let mut node = *self.head.get_mut();
        while !node.is_null() {
            // SAFETY: chain nodes are uniquely owned by the entry and only
            // freed here, exactly once.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.prev;
        }
    }
}

/// The in-memory chain index: name → [`ModelEntry`].  Read-mostly — lookups
/// take the read lock just long enough to clone an `Arc<ModelEntry>`, and
/// all version resolution inside an entry is lock-free.
#[derive(Default)]
pub struct VersionChains {
    entries: RwLock<HashMap<String, Arc<ModelEntry>>>,
}

impl VersionChains {
    /// Creates an empty index.
    pub fn new() -> Self {
        VersionChains::default()
    }

    /// The entry for `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<ModelEntry>> {
        self.read().get(name).cloned()
    }

    /// Whether `name` is taken.
    pub fn contains(&self, name: &str) -> bool {
        self.read().contains_key(name)
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<ModelEntry>>> {
        self.entries.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Makes a (non-empty) entry visible under its name.  The entry must
    /// already hold its first version: readers panic on empty entries.
    pub(crate) fn insert(&self, entry: Arc<ModelEntry>) {
        self.entries
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(entry.name.clone(), entry);
    }

    /// `(name, latest_version)` for every stored model, **sorted by name**
    /// so listings are deterministic across runs and across recovery.
    pub fn list(&self) -> Vec<(String, u32)> {
        let entries = self.read();
        let mut out: Vec<(String, u32)> = entries
            .values()
            .map(|e| (e.name.clone(), e.latest().version))
            .collect();
        out.sort();
        out
    }

    /// Every version of every model, ordered by `(name, version)` — the
    /// snapshot collection order, deterministic for a given store state.
    pub fn all_records(&self) -> Vec<Arc<ModelVersion>> {
        let entries = self.read();
        let mut names: Vec<&Arc<ModelEntry>> = entries.values().collect();
        names.sort_by(|a, b| a.name.cmp(&b.name));
        names.iter().flat_map(|e| e.all_versions()).collect()
    }

    /// Total number of versions across every model.
    pub fn total_versions(&self) -> u64 {
        let entries = self.read();
        entries
            .values()
            .map(|e| u64::from(e.latest().version))
            .sum()
    }
}

/// A version-log failure: the backend could not make a publish durable (or
/// could not compact).  Publishes fail rather than acknowledge data the
/// log did not accept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogError(pub String);

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "version log: {}", self.0)
    }
}

impl std::error::Error for LogError {}

/// Durability / recovery counters a backend exposes (all zero for
/// [`MemoryLog`]); surfaced through the `stats` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogStats {
    /// Records appended (and fsynced) to the WAL.
    pub wal_appends: u64,
    /// Bytes appended to the WAL (frame headers included).
    pub wal_bytes: u64,
    /// Snapshot/compaction cycles completed.
    pub snapshots: u64,
    /// Appends that failed (write/fsync error, real or injected) and were
    /// rolled back; the corresponding publishes surfaced typed errors.
    pub wal_failed_appends: u64,
    /// Versions reconstructed at cold start (snapshot + WAL tail).
    pub recovered_versions: u64,
    /// WAL-tail records replayed at cold start (subset of the above).
    pub recovered_wal_records: u64,
    /// Bytes dropped at the end of the WAL during recovery because the
    /// final record was torn or corrupt.
    pub torn_tail_bytes: u64,
}

/// The append-only, per-model, provenance-stamped log of published
/// versions.  The store funnels every publish through [`Self::append`]
/// *before* the version becomes visible; backends decide what durable
/// means.
pub trait VersionLog: Send + Sync {
    /// The in-memory chain index this backend maintains — the serving read
    /// path, shared by all backends.
    fn chains(&self) -> &VersionChains;

    /// Records a version durably.  Returns only once the record is as
    /// durable as the backend promises (the WAL backend fsyncs here).
    ///
    /// # Errors
    ///
    /// The publish is aborted on error; the version never becomes visible.
    fn append(&self, version: &Arc<ModelVersion>) -> Result<(), LogError>;

    /// Called by the store after each publish has landed in the chains,
    /// while publishes are externally serialised — the WAL backend runs its
    /// snapshot/compaction policy here, where the chains are guaranteed to
    /// contain every appended record.
    ///
    /// # Errors
    ///
    /// Compaction failures are reported but the publish itself stands (its
    /// WAL record is already durable).
    fn after_publish(&self) -> Result<(), LogError> {
        Ok(())
    }

    /// Flushes any buffered state (graceful drain calls this last).
    ///
    /// # Errors
    ///
    /// Propagates backend I/O failures.
    fn flush(&self) -> Result<(), LogError> {
        Ok(())
    }

    /// Durability counters.
    fn stats(&self) -> LogStats {
        LogStats::default()
    }
}

/// The in-memory backend: versions are exactly as durable as the process.
/// This is the original `ModelStore` behaviour, now expressed as the
/// trivial [`VersionLog`].
#[derive(Default)]
pub struct MemoryLog {
    chains: VersionChains,
}

impl MemoryLog {
    /// Creates an empty in-memory log.
    pub fn new() -> Self {
        MemoryLog::default()
    }
}

impl VersionLog for MemoryLog {
    fn chains(&self) -> &VersionChains {
        &self.chains
    }

    fn append(&self, _version: &Arc<ModelVersion>) -> Result<(), LogError> {
        Ok(())
    }
}
