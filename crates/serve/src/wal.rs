//! The write-ahead-log backend of the [`VersionLog`]: fsync-per-publish
//! durability, periodic snapshot/compaction, and cold-start recovery.
//!
//! # On-disk layout (`--store-dir`)
//!
//! ```text
//! store-dir/
//!   snapshot.json   # compacted chains: {"format":1,"last_seq":S,"records":[...]}
//!   wal.log         # frames appended since the snapshot
//! ```
//!
//! Each WAL frame is `[u32 BE body_len][u64 BE fnv1a(body)][body]` where
//! `body` is one JSON *version record* (see [`record_to_json`]): format tag,
//! global sequence number, model name + version, source, provenance
//! ([`RepairProvenance::to_json`]), both DDNN channels
//! ([`prdnn_nn::network_to_json`]), and an FNV-1a content hash per channel
//! ([`prdnn_nn::network_content_hash`], stamped as `0x…` hex so the JSON
//! number model cannot round it).
//!
//! # Durability discipline
//!
//! [`WalLog::append`] runs *before* the version becomes visible in the
//! chains (write-ahead, see [`crate::version_log`]) and returns only after
//! `write_all` + `sync_data` — an acknowledged publish is on disk.  Every
//! `--snapshot-every` appends, [`WalLog::after_publish`] rewrites
//! `snapshot.json` atomically (tmp file, fsync, rename, directory fsync)
//! with `last_seq` = the newest appended record, then truncates the WAL.
//! The store serialises publishes around both calls, so the chains the
//! snapshot reads are guaranteed to contain every appended record.
//!
//! # Recovery ordering
//!
//! [`WalLog::open`] replays `snapshot.json` first (corruption here is a
//! hard error — the snapshot is written atomically, so a bad one means the
//! store directory is damaged, not merely torn), then the WAL tail,
//! skipping records with `seq <= last_seq` (they were compacted into the
//! snapshot).  Content hashes are re-verified on every replayed record.  A
//! torn or corrupt **tail** — short header, short body, checksum or hash
//! mismatch, unparseable JSON, out-of-order version — ends replay
//! gracefully: the valid prefix is kept, the file is truncated back to it,
//! and the dropped byte count is reported in [`LogStats::torn_tail_bytes`].
//!
//! # Failed appends never poison the log
//!
//! A failed `write` or `fsync` (real or injected via
//! [`crate::faults::FaultInjector`], see [`WalLog::open_with_faults`])
//! leaves bytes of unknown state past the last known-good prefix.  They
//! cannot stay: garbage there would make every later append unreachable at
//! replay, and a *durable but unacknowledged* record would collide with
//! the reused version number of the retried publish and corrupt the tail.
//! So the append path tracks `valid_len` — the byte length of the durable,
//! acknowledged prefix — and on any failure truncates the file back to it
//! (durably).  If even the truncation fails, the tail is marked dirty and
//! every subsequent append first re-tries the heal, failing publishes with
//! a typed error until the log is clean again.  The store head is never
//! swapped for a failed append (write-ahead ordering), so the in-memory
//! chains and the on-disk log stay consistent no matter when the fault
//! hits.

use prdnn_core::{DecoupledNetwork, RepairProvenance};
use prdnn_nn::{network_content_hash, network_from_json, network_to_json};
use serde::json::Value;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::faults::{FaultInjector, WriteFault};
use crate::telemetry::{self, Outcome, Stage, Telemetry};
use crate::version_log::{LogError, LogStats, ModelEntry, ModelVersion, VersionChains, VersionLog};

/// On-disk record format version; bump on incompatible layout changes.
pub const RECORD_FORMAT: u64 = 1;

/// Cap on a single WAL frame body.  A record holds two serialised network
/// channels, so this is deliberately larger than the wire protocol's
/// 16 MiB request cap.
pub const MAX_RECORD_LEN: usize = 64 * 1024 * 1024;

const WAL_FILE: &str = "wal.log";
const SNAPSHOT_FILE: &str = "snapshot.json";
const SNAPSHOT_TMP: &str = "snapshot.json.tmp";

/// Frame header: 4-byte length + 8-byte FNV-1a checksum.
const FRAME_HEADER_LEN: usize = 12;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn hex_u64(x: u64) -> Value {
    Value::Str(format!("0x{x:016x}"))
}

fn parse_hex_u64(v: Option<&Value>, what: &str) -> Result<u64, String> {
    let s = v
        .and_then(Value::as_str)
        .ok_or_else(|| format!("record missing {what}"))?;
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("{what} is not 0x-prefixed hex: {s:?}"))?;
    u64::from_str_radix(digits, 16).map_err(|e| format!("bad {what} {s:?}: {e}"))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    let f = v
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("record missing numeric {key:?}"))?;
    if f < 0.0 || f.fract() != 0.0 || f > 2f64.powi(53) {
        return Err(format!("{key} = {f} is not a u64-representable integer"));
    }
    Ok(f as u64)
}

fn get_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("record missing string {key:?}"))
}

/// Serialises one published version as a self-verifying JSON record.
/// `seq` is the global WAL sequence number (`None` inside snapshots, whose
/// ordering is positional).
pub fn record_to_json(version: &ModelVersion, seq: Option<u64>) -> Value {
    let activation = network_to_json(version.ddnn.activation_network());
    let value = network_to_json(version.ddnn.value_network());
    let mut fields = vec![
        ("format", Value::Num(RECORD_FORMAT as f64)),
        ("name", Value::Str(version.name.clone())),
        ("version", Value::Num(f64::from(version.version))),
        ("source", Value::Str(version.source.clone())),
        (
            "provenance",
            match &version.provenance {
                Some(p) => p.to_json(),
                None => Value::Null,
            },
        ),
        (
            "act_hash",
            hex_u64(network_content_hash(version.ddnn.activation_network())),
        ),
        (
            "val_hash",
            hex_u64(network_content_hash(version.ddnn.value_network())),
        ),
        ("activation", activation),
        ("value", value),
    ];
    if let Some(seq) = seq {
        fields.insert(1, ("seq", Value::Num(seq as f64)));
    }
    Value::obj(fields)
}

/// Parses and verifies one version record: format tag, both network
/// channels, and their content hashes.  Returns the version plus its WAL
/// sequence number (if stamped).
///
/// # Errors
///
/// Any structural problem, parse failure, or hash mismatch — callers treat
/// these as a corrupt record.
pub fn record_from_json(v: &Value) -> Result<(ModelVersion, Option<u64>), String> {
    let format = get_u64(v, "format")?;
    if format != RECORD_FORMAT {
        return Err(format!(
            "record format {format} unsupported (expected {RECORD_FORMAT})"
        ));
    }
    let seq = match v.get("seq") {
        Some(_) => Some(get_u64(v, "seq")?),
        None => None,
    };
    let name = get_str(v, "name")?.to_owned();
    let version = get_u64(v, "version")?;
    let version = u32::try_from(version).map_err(|_| format!("version {version} out of range"))?;
    let source = get_str(v, "source")?.to_owned();
    let provenance = match v.get("provenance") {
        None | Some(Value::Null) => None,
        Some(p) => Some(RepairProvenance::from_json(p)?),
    };
    let activation = network_from_json(
        v.get("activation")
            .ok_or_else(|| "record missing activation network".to_owned())?,
    )
    .map_err(|e| format!("activation network: {e}"))?;
    let value = network_from_json(
        v.get("value")
            .ok_or_else(|| "record missing value network".to_owned())?,
    )
    .map_err(|e| format!("value network: {e}"))?;
    let act_hash = parse_hex_u64(v.get("act_hash"), "act_hash")?;
    let val_hash = parse_hex_u64(v.get("val_hash"), "val_hash")?;
    if network_content_hash(&activation) != act_hash {
        return Err(format!(
            "model {name:?} v{version}: activation channel content hash mismatch"
        ));
    }
    if network_content_hash(&value) != val_hash {
        return Err(format!(
            "model {name:?} v{version}: value channel content hash mismatch"
        ));
    }
    // The two channels were verified independently; `new` re-checks that
    // they share an architecture, which we pre-validate to fail softly on a
    // (hash-consistent but) mismatched pair instead of panicking.
    if activation.num_layers() != value.num_layers() {
        return Err(format!(
            "model {name:?} v{version}: channel layer counts differ"
        ));
    }
    for i in 0..activation.num_layers() {
        let (a, w) = (activation.layer(i), value.layer(i));
        if a.input_dim() != w.input_dim()
            || a.output_dim() != w.output_dim()
            || a.num_params() != w.num_params()
        {
            return Err(format!(
                "model {name:?} v{version}: channel architectures differ at layer {i}"
            ));
        }
    }
    Ok((
        ModelVersion::new(
            name,
            version,
            DecoupledNetwork::new(activation, value),
            source,
            provenance,
        ),
        seq,
    ))
}

/// What [`WalLog::open`] reconstructed, for startup logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Models reconstructed.
    pub models: u64,
    /// Versions reconstructed (snapshot + WAL tail).
    pub versions: u64,
    /// Versions replayed from the WAL tail (subset of `versions`).
    pub wal_records: u64,
    /// Bytes dropped from the end of the WAL (torn/corrupt tail).
    pub torn_tail_bytes: u64,
}

struct WalInner {
    file: File,
    /// Sequence number the next append will carry.
    next_seq: u64,
    /// Appends since the last snapshot (drives the compaction policy).
    appends_since_snapshot: u64,
    /// Byte length of the durable, fully-acknowledged prefix of the file.
    /// Everything past it is a failed append's leftovers.
    valid_len: u64,
    /// A failed append could not be truncated away; heal before appending.
    dirty_tail: bool,
}

/// The durable [`VersionLog`] backend.  See the module docs for the disk
/// layout, durability discipline, and recovery ordering.
pub struct WalLog {
    chains: VersionChains,
    dir: PathBuf,
    /// Snapshot/compact after this many WAL appends (`0` = never).
    snapshot_every: u64,
    inner: Mutex<WalInner>,
    report: RecoveryReport,
    faults: FaultInjector,
    wal_appends: AtomicU64,
    wal_bytes: AtomicU64,
    snapshots: AtomicU64,
    failed_appends: AtomicU64,
    /// Set once by the server after open; when present, every append's
    /// write+fsync latency records into the `wal_fsync` histogram and a
    /// `wal_append` span under the current request's id.
    telemetry: OnceLock<Arc<Telemetry>>,
}

impl WalLog {
    /// Opens (or initialises) a store directory, replaying the snapshot and
    /// the WAL tail into fresh chains.
    ///
    /// # Errors
    ///
    /// I/O failures, an unreadable/corrupt `snapshot.json`, or replayed
    /// records that contradict each other (version-number gaps *before* the
    /// tail).  A torn or corrupt WAL **tail** is not an error: the valid
    /// prefix is kept and the tail is reported in the [`RecoveryReport`].
    pub fn open(dir: &Path, snapshot_every: u64) -> Result<WalLog, LogError> {
        WalLog::open_with_faults(dir, snapshot_every, FaultInjector::none())
    }

    /// Wires the server's telemetry into the append path.  A second call
    /// is a no-op (the first handle wins).
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        let _ = self.telemetry.set(telemetry);
    }

    /// [`WalLog::open`] with a [`FaultInjector`] interposed on the append
    /// path's write and fsync operations (and the snapshot writer's).
    /// Recovery itself is never injected: faults model a hostile disk at
    /// publish time, and the recovery contract is pinned separately.
    ///
    /// # Errors
    ///
    /// Same as [`WalLog::open`].
    pub fn open_with_faults(
        dir: &Path,
        snapshot_every: u64,
        faults: FaultInjector,
    ) -> Result<WalLog, LogError> {
        fs::create_dir_all(dir)
            .map_err(|e| LogError(format!("create store dir {}: {e}", dir.display())))?;
        let chains = VersionChains::new();
        let mut report = RecoveryReport::default();

        // 1. Snapshot: the compacted prefix of the log.
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let mut last_seq = 0u64;
        if snapshot_path.exists() {
            let text = fs::read_to_string(&snapshot_path)
                .map_err(|e| LogError(format!("read snapshot: {e}")))?;
            let doc =
                Value::parse(&text).map_err(|e| LogError(format!("corrupt snapshot: {e}")))?;
            let format = get_u64(&doc, "format").map_err(LogError)?;
            if format != RECORD_FORMAT {
                return Err(LogError(format!("snapshot format {format} unsupported")));
            }
            last_seq = get_u64(&doc, "last_seq").map_err(LogError)?;
            let records = doc
                .get("records")
                .and_then(Value::as_arr)
                .ok_or_else(|| LogError("snapshot missing records array".into()))?;
            for rv in records {
                let (version, _) = record_from_json(rv)
                    .map_err(|e| LogError(format!("corrupt snapshot record: {e}")))?;
                install(&chains, version).map_err(|e| LogError(format!("snapshot replay: {e}")))?;
                report.versions += 1;
            }
        }

        // 2. WAL tail: frames appended since the snapshot.
        let wal_path = dir.join(WAL_FILE);
        let mut max_seq = last_seq;
        let mut valid_len = 0u64;
        if wal_path.exists() {
            let bytes = fs::read(&wal_path).map_err(|e| LogError(format!("read WAL: {e}")))?;
            let mut off = 0usize;
            loop {
                match decode_frame(&bytes[off..]) {
                    FrameOutcome::End => break,
                    FrameOutcome::Torn => {
                        report.torn_tail_bytes = (bytes.len() - off) as u64;
                        break;
                    }
                    FrameOutcome::Record { body, frame_len } => {
                        let replayed = Value::parse(body)
                            .map_err(|e| e.to_string())
                            .and_then(|doc| record_from_json(&doc))
                            .and_then(|(version, seq)| {
                                let seq = seq.ok_or_else(|| "WAL record missing seq".to_owned())?;
                                if seq > last_seq {
                                    install(&chains, version)?;
                                    report.versions += 1;
                                    report.wal_records += 1;
                                }
                                Ok(seq)
                            });
                        match replayed {
                            Ok(seq) => {
                                max_seq = max_seq.max(seq);
                                off += frame_len;
                                valid_len = off as u64;
                            }
                            Err(_) => {
                                // Checksum passed but the record is
                                // unusable (or out of order): treat as the
                                // corrupt tail and keep the prefix.
                                report.torn_tail_bytes = (bytes.len() - off) as u64;
                                break;
                            }
                        }
                    }
                }
            }
        }
        report.models = chains.list().len() as u64;

        // 3. Re-open the WAL for appending, truncated back to the valid
        //    prefix so new frames never follow garbage.
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&wal_path)
            .map_err(|e| LogError(format!("open WAL: {e}")))?;
        file.set_len(valid_len)
            .map_err(|e| LogError(format!("truncate WAL tail: {e}")))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| LogError(format!("seek WAL: {e}")))?;
        if report.torn_tail_bytes > 0 {
            file.sync_data()
                .map_err(|e| LogError(format!("sync truncated WAL: {e}")))?;
        }
        sync_dir(dir)?;

        Ok(WalLog {
            chains,
            dir: dir.to_owned(),
            snapshot_every,
            inner: Mutex::new(WalInner {
                file,
                next_seq: max_seq + 1,
                appends_since_snapshot: report.wal_records,
                valid_len,
                dirty_tail: false,
            }),
            report,
            faults,
            wal_appends: AtomicU64::new(0),
            wal_bytes: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            failed_appends: AtomicU64::new(0),
            telemetry: OnceLock::new(),
        })
    }

    /// What `open` reconstructed.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.report
    }

    /// Locks the inner state.  A poisoned lock means a panic interrupted an
    /// earlier operation at an unknown point, so the file past `valid_len`
    /// is suspect: recover the guard and mark the tail dirty so the next
    /// append truncates back to the acknowledged prefix before writing.
    fn lock_inner(&self) -> std::sync::MutexGuard<'_, WalInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.dirty_tail = true;
                guard
            }
        }
    }

    /// Truncates a dirty tail back to the durable prefix.  No-op when the
    /// tail is clean.
    fn heal_tail(&self, inner: &mut WalInner) -> Result<(), LogError> {
        if !inner.dirty_tail {
            return Ok(());
        }
        inner
            .file
            .set_len(inner.valid_len)
            .map_err(|e| LogError(format!("truncate failed-append tail: {e}")))?;
        inner
            .file
            .seek(SeekFrom::Start(inner.valid_len))
            .map_err(|e| LogError(format!("seek after tail truncation: {e}")))?;
        let synced = match self.faults.next_fsync_fault() {
            Some(e) => Err(e),
            None => inner.file.sync_data(),
        };
        synced.map_err(|e| LogError(format!("fsync truncated tail: {e}")))?;
        inner.dirty_tail = false;
        Ok(())
    }

    /// Converts a failed write/fsync into the returned [`LogError`],
    /// disposing of whatever the failure left past `valid_len` (see the
    /// module docs).  The heal is attempted immediately; if it also fails,
    /// the tail stays dirty and later appends retry it first.
    fn abandon_tail(&self, inner: &mut WalInner, why: String) -> LogError {
        inner.dirty_tail = true;
        match self.heal_tail(inner) {
            Ok(()) => LogError(why),
            Err(heal) => LogError(format!(
                "{why}; truncating the failed tail also failed ({heal}) — \
                 publishes fail until the tail heals"
            )),
        }
    }

    fn append_locked(
        &self,
        inner: &mut WalInner,
        version: &Arc<ModelVersion>,
    ) -> Result<(), LogError> {
        self.heal_tail(inner)?;
        let seq = inner.next_seq;
        let body = record_to_json(version, Some(seq)).to_json().into_bytes();
        if body.len() > MAX_RECORD_LEN {
            return Err(LogError(format!(
                "record of {} bytes exceeds the {MAX_RECORD_LEN} byte cap",
                body.len()
            )));
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
        frame.extend_from_slice(&fnv1a(&body).to_be_bytes());
        frame.extend_from_slice(&body);
        let wrote = match self.faults.next_write_fault() {
            Some(WriteFault::Enospc) => Err(std::io::Error::other(
                "injected write failure: no space left on device",
            )),
            Some(WriteFault::Short { keep_per_mille }) => {
                // A real partial prefix lands in the file — exactly the
                // garbage a crash mid-write leaves — then the write fails.
                let keep = frame.len() * keep_per_mille as usize / 1000;
                let _ = inner.file.write_all(&frame[..keep]);
                Err(std::io::Error::other(format!(
                    "injected short write ({keep} of {} bytes)",
                    frame.len()
                )))
            }
            None => inner.file.write_all(&frame),
        };
        if let Err(e) = wrote {
            return Err(self.abandon_tail(inner, format!("append WAL record: {e}")));
        }
        let synced = match self.faults.next_fsync_fault() {
            Some(e) => Err(e),
            None => inner.file.sync_data(),
        };
        if let Err(e) = synced {
            return Err(self.abandon_tail(inner, format!("fsync WAL record: {e}")));
        }
        inner.valid_len += frame.len() as u64;
        inner.next_seq += 1;
        inner.appends_since_snapshot += 1;
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        Ok(())
    }
}

/// One decoded frame attempt at the head of `bytes`.
enum FrameOutcome<'a> {
    /// `bytes` is empty: clean end of log.
    End,
    /// A frame starts here but is short or fails its checksum.
    Torn,
    /// A checksum-valid frame.
    Record { body: &'a str, frame_len: usize },
}

fn decode_frame(bytes: &[u8]) -> FrameOutcome<'_> {
    if bytes.is_empty() {
        return FrameOutcome::End;
    }
    if bytes.len() < FRAME_HEADER_LEN {
        return FrameOutcome::Torn;
    }
    let body_len = u32::from_be_bytes(bytes[0..4].try_into().unwrap()) as usize;
    if body_len > MAX_RECORD_LEN || bytes.len() < FRAME_HEADER_LEN + body_len {
        return FrameOutcome::Torn;
    }
    let checksum = u64::from_be_bytes(bytes[4..12].try_into().unwrap());
    let body = &bytes[FRAME_HEADER_LEN..FRAME_HEADER_LEN + body_len];
    if fnv1a(body) != checksum {
        return FrameOutcome::Torn;
    }
    match std::str::from_utf8(body) {
        Ok(text) => FrameOutcome::Record {
            body: text,
            frame_len: FRAME_HEADER_LEN + body_len,
        },
        Err(_) => FrameOutcome::Torn,
    }
}

/// Installs a recovered version, creating the model's entry on first sight.
fn install(chains: &VersionChains, version: ModelVersion) -> Result<(), String> {
    let entry = match chains.get(&version.name) {
        Some(e) => e,
        None => {
            if version.version != 1 {
                return Err(format!(
                    "model {:?}: first recovered record is v{}, not v1",
                    version.name, version.version
                ));
            }
            Arc::new(ModelEntry::new(version.name.clone()))
        }
    };
    let first = version.version == 1;
    entry.install_recovered(Arc::new(version))?;
    if first {
        chains.insert(entry);
    }
    Ok(())
}

fn sync_dir(dir: &Path) -> Result<(), LogError> {
    // Directory fsync makes renames/creates durable on POSIX; best-effort
    // elsewhere.
    match File::open(dir) {
        Ok(d) => d
            .sync_all()
            .map_err(|e| LogError(format!("sync store dir: {e}"))),
        Err(e) => Err(LogError(format!("open store dir for sync: {e}"))),
    }
}

impl VersionLog for WalLog {
    fn chains(&self) -> &VersionChains {
        &self.chains
    }

    fn append(&self, version: &Arc<ModelVersion>) -> Result<(), LogError> {
        let mut inner = self.lock_inner();
        let start = Instant::now();
        let result = self.append_locked(&mut inner, version);
        if result.is_err() {
            self.failed_appends.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(t) = self.telemetry.get() {
            let took = start.elapsed();
            t.wal_fsync.record_duration(took);
            t.span_at(
                telemetry::current_request(),
                Stage::WalAppend,
                start,
                took,
                if result.is_ok() {
                    Outcome::Ok
                } else {
                    Outcome::Error
                },
            );
        }
        result
    }

    fn after_publish(&self) -> Result<(), LogError> {
        let mut inner = self.lock_inner();
        if self.snapshot_every == 0 || inner.appends_since_snapshot < self.snapshot_every {
            return Ok(());
        }
        // The store serialises publishes around append + after_publish, so
        // the chains contain every record with seq < next_seq — the
        // snapshot below loses nothing by truncating the WAL.
        let records: Vec<Value> = self
            .chains
            .all_records()
            .iter()
            .map(|v| record_to_json(v, None))
            .collect();
        let doc = Value::obj([
            ("format", Value::Num(RECORD_FORMAT as f64)),
            ("last_seq", Value::Num((inner.next_seq - 1) as f64)),
            ("records", Value::Arr(records)),
        ]);
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let path = self.dir.join(SNAPSHOT_FILE);
        let mut f =
            File::create(&tmp).map_err(|e| LogError(format!("create snapshot tmp: {e}")))?;
        let text = doc.to_json();
        // Snapshot write/fsync faults are benign: the tmp file is renamed
        // into place only after a clean write + fsync, so a failure here
        // just delays compaction to the next publish.
        let wrote = match self.faults.next_write_fault() {
            Some(WriteFault::Enospc) => Err(std::io::Error::other(
                "injected write failure: no space left on device",
            )),
            Some(WriteFault::Short { keep_per_mille }) => {
                let keep = text.len() * keep_per_mille as usize / 1000;
                let _ = f.write_all(&text.as_bytes()[..keep]);
                Err(std::io::Error::other("injected short snapshot write"))
            }
            None => f.write_all(text.as_bytes()),
        };
        wrote.map_err(|e| LogError(format!("write snapshot: {e}")))?;
        let synced = match self.faults.next_fsync_fault() {
            Some(e) => Err(e),
            None => f.sync_all(),
        };
        synced.map_err(|e| LogError(format!("fsync snapshot: {e}")))?;
        drop(f);
        fs::rename(&tmp, &path).map_err(|e| LogError(format!("publish snapshot: {e}")))?;
        sync_dir(&self.dir)?;
        // The snapshot covers everything: drop the WAL prefix.
        inner
            .file
            .set_len(0)
            .map_err(|e| LogError(format!("truncate WAL after snapshot: {e}")))?;
        inner
            .file
            .seek(SeekFrom::Start(0))
            .map_err(|e| LogError(format!("rewind WAL: {e}")))?;
        // The snapshot is already durable and every truncated record has
        // seq <= last_seq (skipped on replay), so state is consistent from
        // here on even if the final fsync fails.
        inner.valid_len = 0;
        inner.dirty_tail = false;
        inner.appends_since_snapshot = 0;
        inner
            .file
            .sync_data()
            .map_err(|e| LogError(format!("fsync truncated WAL: {e}")))?;
        self.snapshots.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn flush(&self) -> Result<(), LogError> {
        let inner = self.lock_inner();
        inner
            .file
            .sync_all()
            .map_err(|e| LogError(format!("flush WAL: {e}")))
    }

    fn stats(&self) -> LogStats {
        LogStats {
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            wal_failed_appends: self.failed_appends.load(Ordering::Relaxed),
            recovered_versions: self.report.versions,
            recovered_wal_records: self.report.wal_records,
            torn_tail_bytes: self.report.torn_tail_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ModelRef;
    use crate::store::{ModelStore, StoreError};
    use prdnn_core::RepairConfig;
    use prdnn_datasets::registry;
    use std::sync::atomic::AtomicU32;

    /// A self-cleaning unique temp directory (no tempfile crate available).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            static COUNTER: AtomicU32 = AtomicU32::new(0);
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("prdnn-wal-{tag}-{}-{n}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            TempDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn ddnn(spec: &str) -> DecoupledNetwork {
        DecoupledNetwork::from_network(&registry::build_model(spec).unwrap())
    }

    fn provenance(layer: usize) -> RepairProvenance {
        RepairProvenance {
            spec_hash: 0xabcd_0000 + layer as u64,
            config: RepairConfig::default(),
            layer,
            num_key_points: 3,
            delta_l1: 0.25,
            delta_linf: 0.125,
            lp_pivots: 11,
            lp_refactorizations: 1,
        }
    }

    fn durable_store(dir: &Path, snapshot_every: u64) -> (ModelStore, Arc<WalLog>) {
        let log = Arc::new(WalLog::open(dir, snapshot_every).unwrap());
        (
            ModelStore::with_log(Arc::clone(&log) as Arc<dyn VersionLog>),
            log,
        )
    }

    /// Two versions are bit-identical if their records serialise to the
    /// same JSON document (weights are written with a bit-exact f64
    /// round-trip writer).
    fn record_doc(v: &ModelVersion) -> String {
        record_to_json(v, None).to_json()
    }

    #[test]
    fn publish_reopen_recovers_bit_identical_chains() {
        let tmp = TempDir::new("roundtrip");
        let expected: Vec<String>;
        {
            let (store, log) = durable_store(tmp.path(), 0);
            store.load("n1", ddnn("n1"), "n1".into()).unwrap();
            store
                .load("xor", ddnn("mlp:7:2x4x2"), "mlp:7:2x4x2".into())
                .unwrap();
            for layer in 0..3 {
                store
                    .publish_repair(
                        "n1",
                        ddnn("n1"),
                        format!("repair {layer}"),
                        provenance(layer),
                    )
                    .unwrap();
            }
            expected = store
                .list()
                .iter()
                .flat_map(|(name, _)| store.versions(name).unwrap())
                .map(|v| record_doc(&v))
                .collect();
            assert_eq!(log.stats().wal_appends, 5);
            assert_eq!(log.stats().snapshots, 0);
        }
        let (store, log) = durable_store(tmp.path(), 0);
        let report = log.recovery_report();
        assert_eq!(
            (report.models, report.versions, report.wal_records),
            (2, 5, 5)
        );
        assert_eq!(report.torn_tail_bytes, 0);
        assert_eq!(store.list(), vec![("n1".into(), 4), ("xor".into(), 1)]);
        let recovered: Vec<String> = store
            .list()
            .iter()
            .flat_map(|(name, _)| store.versions(name).unwrap())
            .map(|v| record_doc(&v))
            .collect();
        assert_eq!(recovered, expected);
        // Provenance survives exactly.
        let v3 = store.resolve(&ModelRef::version("n1", 3)).unwrap();
        let p = v3.provenance.as_ref().unwrap();
        assert_eq!((p.spec_hash, p.layer), (0xabcd_0001, 1));
    }

    #[test]
    fn snapshot_compacts_wal_and_recovery_replays_snapshot_plus_tail() {
        let tmp = TempDir::new("snapshot");
        {
            let (store, log) = durable_store(tmp.path(), 4);
            store.load("n1", ddnn("n1"), "n1".into()).unwrap();
            for layer in 0..6 {
                store
                    .publish_repair(
                        "n1",
                        ddnn("n1"),
                        format!("repair {layer}"),
                        provenance(layer),
                    )
                    .unwrap();
            }
            // 7 publishes with snapshot_every=4: one snapshot fired, the
            // WAL holds only the 3 appends since.
            assert_eq!(log.stats().snapshots, 1);
            assert!(tmp.path().join(SNAPSHOT_FILE).exists());
        }
        let (store, log) = durable_store(tmp.path(), 4);
        let report = log.recovery_report();
        assert_eq!(report.versions, 7);
        assert_eq!(report.wal_records, 3);
        assert_eq!(store.versions("n1").unwrap().len(), 7);
        // Sequence numbers continue after recovery: another snapshot cycle
        // still works.
        for layer in 0..4 {
            store
                .publish_repair("n1", ddnn("n1"), format!("post {layer}"), provenance(layer))
                .unwrap();
        }
        assert_eq!(log.stats().snapshots, 1);
        assert_eq!(store.versions("n1").unwrap().len(), 11);
    }

    #[test]
    fn torn_tail_at_every_byte_boundary_keeps_prefix_and_reports() {
        // Build a clean two-record WAL, then truncate at every byte
        // boundary of the final record's frame: recovery must always keep
        // the first record, never panic, and report the torn tail.
        let tmp = TempDir::new("torn");
        {
            let (store, _log) = durable_store(tmp.path(), 0);
            store.load("n1", ddnn("n1"), "n1".into()).unwrap();
            store
                .publish_repair("n1", ddnn("n1"), "repair 0".into(), provenance(0))
                .unwrap();
        }
        let wal_path = tmp.path().join(WAL_FILE);
        let full = fs::read(&wal_path).unwrap();
        let first_len =
            FRAME_HEADER_LEN + u32::from_be_bytes(full[0..4].try_into().unwrap()) as usize;
        assert!(first_len < full.len(), "need two frames");

        for cut in first_len..full.len() {
            fs::write(&wal_path, &full[..cut]).unwrap();
            let log = WalLog::open(tmp.path(), 0)
                .unwrap_or_else(|e| panic!("cut at {cut} bytes must not fail: {e}"));
            let report = log.recovery_report();
            if cut == first_len {
                // Clean truncation exactly between frames: no tail at all.
                assert_eq!(report.torn_tail_bytes, 0, "cut {cut}");
            } else {
                assert_eq!(
                    report.torn_tail_bytes,
                    (cut - first_len) as u64,
                    "cut {cut}"
                );
            }
            assert_eq!(report.versions, 1, "cut {cut}");
            let store = ModelStore::with_log(Arc::new(log) as Arc<dyn VersionLog>);
            assert_eq!(store.list(), vec![("n1".into(), 1)], "cut {cut}");
            // Recovery truncated the torn tail off the file.
            assert_eq!(fs::read(&wal_path).unwrap().len(), first_len, "cut {cut}");
        }
    }

    #[test]
    fn corrupt_tail_checksum_is_dropped_not_replayed() {
        let tmp = TempDir::new("corrupt");
        {
            let (store, _log) = durable_store(tmp.path(), 0);
            store.load("n1", ddnn("n1"), "n1".into()).unwrap();
            store
                .publish_repair("n1", ddnn("n1"), "repair 0".into(), provenance(0))
                .unwrap();
        }
        let wal_path = tmp.path().join(WAL_FILE);
        let mut bytes = fs::read(&wal_path).unwrap();
        // Flip one bit inside the final record's body.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&wal_path, &bytes).unwrap();
        let log = WalLog::open(tmp.path(), 0).unwrap();
        let report = log.recovery_report();
        assert_eq!(report.versions, 1);
        assert!(report.torn_tail_bytes > 0);
        // Appending after recovery writes over the truncated tail and is
        // replayable on the next open.
        let store = ModelStore::with_log(Arc::new(log) as Arc<dyn VersionLog>);
        store
            .publish_repair("n1", ddnn("n1"), "repair again".into(), provenance(1))
            .unwrap();
        let (store2, log2) = durable_store(tmp.path(), 0);
        assert_eq!(log2.recovery_report().versions, 2);
        assert_eq!(store2.versions("n1").unwrap().len(), 2);
        assert_eq!(log2.recovery_report().torn_tail_bytes, 0);
    }

    fn durable_store_with_faults(
        dir: &Path,
        snapshot_every: u64,
        spec: &str,
    ) -> (ModelStore, Arc<WalLog>) {
        let faults = FaultInjector::parse(spec).unwrap();
        let log = Arc::new(WalLog::open_with_faults(dir, snapshot_every, faults).unwrap());
        (
            ModelStore::with_log(Arc::clone(&log) as Arc<dyn VersionLog>),
            log,
        )
    }

    /// Every acked version's record document, deterministic order.
    fn acked_docs(store: &ModelStore) -> Vec<String> {
        store
            .list()
            .iter()
            .flat_map(|(name, _)| store.versions(name).unwrap())
            .map(|v| record_doc(&v))
            .collect()
    }

    #[test]
    fn enospc_fails_the_publish_and_leaves_the_store_live() {
        let tmp = TempDir::new("enospc");
        let expected: Vec<String>;
        {
            // Write op 2 (the first repair) hits disk-full.
            let (store, log) = durable_store_with_faults(tmp.path(), 0, "enospc@2");
            store.load("n1", ddnn("n1"), "n1".into()).unwrap();
            let err = store
                .publish_repair("n1", ddnn("n1"), "repair 0".into(), provenance(0))
                .unwrap_err();
            assert!(
                matches!(&err, StoreError::Durability(m) if m.contains("no space left")),
                "{err:?}"
            );
            // Nothing published: the head never swapped, reads still serve v1.
            assert_eq!(store.list(), vec![("n1".into(), 1)]);
            assert_eq!(log.stats().wal_failed_appends, 1);
            // The store stays live: the retried publish reuses version 2.
            let v2 = store
                .publish_repair("n1", ddnn("n1"), "repair 0".into(), provenance(0))
                .unwrap();
            assert_eq!(v2.version, 2);
            expected = acked_docs(&store);
        }
        // Recovery sees exactly the acked versions, bit-identical.
        let (store, log) = durable_store(tmp.path(), 0);
        assert_eq!(log.recovery_report().torn_tail_bytes, 0);
        assert_eq!(acked_docs(&store), expected);
    }

    #[test]
    fn short_write_tail_is_truncated_and_the_next_append_lands() {
        let tmp = TempDir::new("short");
        let expected: Vec<String>;
        {
            let (store, log) = durable_store_with_faults(tmp.path(), 0, "seed=5,short@2");
            store.load("n1", ddnn("n1"), "n1".into()).unwrap();
            let after_load = fs::read(tmp.path().join(WAL_FILE)).unwrap().len();
            let err = store
                .publish_repair("n1", ddnn("n1"), "repair 0".into(), provenance(0))
                .unwrap_err();
            assert!(
                matches!(&err, StoreError::Durability(m) if m.contains("short write")),
                "{err:?}"
            );
            // The torn prefix was healed away: the file ends at the last
            // acknowledged record, ready for the next append.
            assert_eq!(
                fs::read(tmp.path().join(WAL_FILE)).unwrap().len(),
                after_load
            );
            assert_eq!(log.stats().wal_failed_appends, 1);
            store
                .publish_repair("n1", ddnn("n1"), "repair 0".into(), provenance(0))
                .unwrap();
            expected = acked_docs(&store);
        }
        let (store, log) = durable_store(tmp.path(), 0);
        // No torn tail for recovery to even notice.
        assert_eq!(log.recovery_report().torn_tail_bytes, 0);
        assert_eq!(acked_docs(&store), expected);
    }

    #[test]
    fn fsync_failure_rolls_back_even_though_the_bytes_hit_disk() {
        let tmp = TempDir::new("fsync");
        let expected: Vec<String>;
        {
            // Fsync op 2 = the first repair's fsync (with only `fsync`
            // configured, write ops are not consumed).  The frame's bytes
            // are fully written when it fires — they must still not count.
            let (store, log) = durable_store_with_faults(tmp.path(), 0, "fsync@2");
            store.load("n1", ddnn("n1"), "n1".into()).unwrap();
            let err = store
                .publish_repair("n1", ddnn("n1"), "repair 0".into(), provenance(0))
                .unwrap_err();
            assert!(
                matches!(&err, StoreError::Durability(m) if m.contains("injected fsync failure")),
                "{err:?}"
            );
            assert_eq!(store.list(), vec![("n1".into(), 1)]);
            assert_eq!(log.stats().wal_failed_appends, 1);
            // Retry: heal already ran, the reused version number cannot
            // collide with the rolled-back record.
            let v2 = store
                .publish_repair("n1", ddnn("n1"), "repair 0".into(), provenance(0))
                .unwrap();
            assert_eq!(v2.version, 2);
            expected = acked_docs(&store);
        }
        let (store, log) = durable_store(tmp.path(), 0);
        assert_eq!(log.recovery_report().versions, 2);
        assert_eq!(log.recovery_report().torn_tail_bytes, 0);
        assert_eq!(acked_docs(&store), expected);
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_error() {
        let tmp = TempDir::new("badsnap");
        {
            let (store, _log) = durable_store(tmp.path(), 1);
            store.load("n1", ddnn("n1"), "n1".into()).unwrap();
        }
        fs::write(tmp.path().join(SNAPSHOT_FILE), b"{ not json").unwrap();
        let err = match WalLog::open(tmp.path(), 1) {
            Err(e) => e,
            Ok(_) => panic!("corrupt snapshot must fail startup"),
        };
        assert!(err.0.contains("corrupt snapshot"), "{err}");
    }

    #[test]
    fn record_round_trips_and_rejects_hash_mismatch() {
        let version = ModelVersion::new(
            "m".into(),
            2,
            ddnn("mlp:7:2x4x2"),
            "repair of m@v1".into(),
            Some(provenance(1)),
        );
        let doc = record_to_json(&version, Some(7));
        let (back, seq) = record_from_json(&doc).unwrap();
        assert_eq!(seq, Some(7));
        assert_eq!(record_doc(&back), record_doc(&version));

        // Tampering with a weight while keeping the JSON well-formed is
        // caught by the content hash.
        let tampered = doc
            .to_json()
            .replacen("\"val_hash\":\"0x", "\"val_hash\":\"0y", 1);
        assert!(record_from_json(&Value::parse(&tampered).unwrap()).is_err());
    }
}
