//! `prdnn-serve` — a batching repair-and-analysis service layer with a
//! versioned model store.
//!
//! Everything below this crate is single-shot: a benchmark binary builds a
//! network, runs one repair or one analysis, and exits.  This crate is the
//! serving top layer that turns those calls into *requests against
//! long-lived, versioned models*:
//!
//! * [`store`] — the **versioned model store**.  Models are loaded by name
//!   from `prdnn-datasets` generator specs or serialised JSON; every
//!   successful repair publishes a new immutable version carrying its
//!   [`prdnn_core::RepairProvenance`] (spec hash, config, delta norms).
//!   Readers resolve `name@latest` / `name@vN` lock-free through an
//!   arc-swap-style atomic head pointer — a repair publishing version `N+1`
//!   never blocks an eval reading version `N`.
//! * [`batcher`] — the **request planner**.  Concurrent `eval` /
//!   `lin_regions` requests against the same model version are coalesced
//!   into single batched calls (`forward_decoupled_batch_in`,
//!   `lin_regions_batch_in`) on the shared `prdnn-par` pool, so ten
//!   clients asking about the same version cost one layer-at-a-time sweep,
//!   not ten.
//! * [`cache`] — the **per-version result cache** in front of the pool:
//!   a bounded LRU keyed by `(version content hash, input content hash)`
//!   memoizing eval and `lin_regions` payloads.  Versions are immutable,
//!   so entries never go stale; a repair publishing `m@v2` changes the
//!   value-channel hash and can never hit `m@v1`'s eval entries, while
//!   value-only repairs deliberately *share* the parent's `lin_regions`
//!   entries (Theorem 4.6: value edits preserve the linear regions).
//! * [`version_log`] / [`wal`] — the **durable version log** under the
//!   store.  Every publish funnels through a [`version_log::VersionLog`]
//!   backend *before* it becomes visible: [`version_log::MemoryLog`] keeps
//!   the original process-lifetime behaviour, while [`wal::WalLog`]
//!   fsyncs a length-prefixed JSON record per publish, snapshots and
//!   compacts the chains every `--snapshot-every` publishes, and replays
//!   `snapshot.json` + the WAL tail (hash-verified, torn-tail tolerant) on
//!   `--store-dir` cold start.
//! * [`jobs`] — the **repair job queue**: a bounded FIFO whose workers run
//!   repairs off the connection threads and publish the repaired versions;
//!   clients poll job status instead of holding a connection hostage for
//!   the length of an LP solve.
//! * [`server`] / [`client`] / [`protocol`] — a std-only multi-threaded
//!   TCP server speaking length-prefixed JSON ([`serde::json`]), with
//!   admission control (bounded queues, per-request deadlines, connection
//!   cap) and graceful-shutdown drain, plus the client library used by the
//!   `servebench` load generator and the end-to-end tests.
//!
//! The serving path adds **no numeric degrees of freedom**: model JSON and
//! wire floats round-trip bit-for-bit, and the batched entry points are
//! bit-identical to their serial counterparts, so an `eval` answered by the
//! server equals the direct library call exactly.
//!
//! # Error policy
//!
//! Every failure a client can observe is **typed** (an
//! [`protocol::ErrorKind`]), and the kinds partition by what the client
//! should do next:
//!
//! * `overloaded` — shed by admission control; safe to retry after the
//!   attached `retry_after_ms` hint.
//! * `unavailable` — the durable log refused a publish (I/O fault);
//!   nothing was published, the store is intact, safe to retry.
//! * `deadline_exceeded` — the request (or its socket) ran out of time;
//!   idempotent reads are safe to retry with a fresh deadline.
//! * `bad_request` / `unknown_model` / `unknown_version` / `unknown_job`
//!   — retrying the same request cannot succeed.
//! * `shutting_down` — the server is draining; reconnect elsewhere.
//! * `internal` — a server-side invariant failed; not retried by default.
//!
//! The [`retry`] module implements that contract client-side
//! ([`retry::RetryingClient`]), [`faults`] injects storage faults under
//! test, and [`chaos`] is a fault-injecting TCP proxy for wire-level
//! end-to-end tests.
//!
//! # Observability
//!
//! [`telemetry`] is the hand-rolled observability layer: lock-free
//! log-linear latency histograms at every stage boundary (request
//! end-to-end per kind, batcher queue-wait vs execution, gulp size,
//! repair queue-wait vs LP solve, WAL fsync, cache hit vs miss service
//! time) exported through the `metrics` endpoint as Prometheus histogram
//! families, plus per-request span tracing: every request carries a
//! `request_id` (client-settable, echoed in each response), stages record
//! spans into a bounded ring, and requests slower than `--slow-ms` are
//! promoted to a retained slow-log served by the `trace` request
//! ([`client::Client::trace`]).
//!
//! # Quickstart
//!
//! ```
//! use prdnn_serve::{client::Client, protocol::ModelRef, server};
//!
//! let handle = server::serve(server::ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..server::ServerConfig::default()
//! })
//! .unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! client.load_generator("n1", "n1").unwrap();
//! let out = client
//!     .eval(&ModelRef::latest("n1"), vec![vec![0.5]], None)
//!     .unwrap();
//! assert_eq!(out, vec![vec![-0.5]]);
//! client.shutdown_server().unwrap();
//! handle.join().unwrap();
//! ```

pub mod batcher;
pub mod cache;
pub mod chaos;
pub mod client;
pub mod faults;
pub mod jobs;
pub mod protocol;
pub mod retry;
pub mod server;
pub mod store;
pub mod telemetry;
pub mod version_log;
pub mod wal;

pub use client::Client;
pub use protocol::{ModelRef, Request, Response};
pub use retry::{RetryPolicy, RetryingClient};
pub use server::{serve, ServerConfig, ServerHandle};
pub use store::{ModelStore, ModelVersion};
