//! Hand-rolled server telemetry: lock-free latency histograms and
//! per-request span tracing.
//!
//! # Histograms
//!
//! [`Histogram`] is a log-linear (HDR-style) fixed-bucket histogram over
//! `u64` values (microseconds for latencies, raw counts for sizes).
//! Values below 32 get exact one-wide buckets; above that, each power of
//! two splits into 32 linear sub-buckets, so the relative quantization
//! error is bounded by `1/32` (~3.1%) everywhere. The bucket count is
//! fixed at compile time (values are clamped to [`MAX_TRACKED`], ~38 h in
//! microseconds), which keeps recording allocation-free.
//!
//! Recording is lock-free: each histogram holds [`N_SHARDS`] independent
//! shards of relaxed `AtomicU64` buckets, and every thread sticks to the
//! shard it was dealt on first use. Readers merge all shards into a
//! [`HistogramSnapshot`]; bucket counts are plain sums, so a merged
//! snapshot is bit-identical no matter how the same observations were
//! spread across threads.
//!
//! # Spans
//!
//! When tracing is enabled (`slow_ms > 0`), each request carries a
//! `request_id` and every stage it crosses records a
//! `(request_id, stage, start, duration, outcome)` span into a bounded
//! lock-free ring ([`SpanRing`]). When a request's end-to-end time
//! crosses the slow threshold, its whole span chain is collected from the
//! ring and promoted to a small retained slow-log, which the `trace`
//! protocol request serves as structured JSON. Span slots use a seqlock
//! discipline (odd = write in progress) so a reader never observes a torn
//! span; a span overwritten mid-read is simply skipped.

use crate::protocol::ServerStats;
use serde::json::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Linear sub-buckets per power of two (2^5 = 32).
const SUB_BITS: u32 = 5;
/// Width of the leading exact range and of each octave's sub-bucket row.
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Number of power-of-two octaves above the exact range.
const OCTAVES: usize = 32;
/// Total bucket count: 32 exact + 32 octaves x 32 sub-buckets.
pub const N_BUCKETS: usize = SUB_COUNT + OCTAVES * SUB_COUNT;
/// Largest representable value; larger observations are clamped here.
/// In microseconds this is about 38 hours.
pub const MAX_TRACKED: u64 = (1u64 << (SUB_BITS + OCTAVES as u32)) - 1;
/// Independent recording shards per histogram.
pub const N_SHARDS: usize = 8;

/// One exported histogram family:
/// `(family name, help, unit is seconds, [(label or "", histogram)])`.
type Family<'a> = (
    &'static str,
    &'static str,
    bool,
    Vec<(String, &'a Histogram)>,
);

/// Retained slow-request traces (older entries are evicted FIFO).
const SLOW_LOG_CAP: usize = 64;
/// Span ring capacity; must comfortably exceed spans-in-flight so a slow
/// request's chain is still resident when it is promoted.
const SPAN_RING_CAP: usize = 4096;

/// Maps a value to its bucket index. Total order preserving.
pub fn bucket_index(value: u64) -> usize {
    let v = value.min(MAX_TRACKED);
    if v < SUB_COUNT as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let exp = (msb - SUB_BITS) as usize;
        let sub = ((v >> (msb - SUB_BITS)) & (SUB_COUNT as u64 - 1)) as usize;
        SUB_COUNT + exp * SUB_COUNT + sub
    }
}

/// Inclusive upper bound of bucket `i` (the value a quantile reports).
pub fn bucket_upper(i: usize) -> u64 {
    if i < SUB_COUNT {
        i as u64
    } else {
        let exp = (i - SUB_COUNT) / SUB_COUNT;
        let sub = ((i - SUB_COUNT) % SUB_COUNT) as u64;
        let width = 1u64 << exp;
        (SUB_COUNT as u64 + sub) * width + width - 1
    }
}

fn new_atomic_row(n: usize) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

struct Shard {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: new_atomic_row(N_BUCKETS),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Deals each recording thread a sticky shard index, round-robin.
fn shard_index() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static MY_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % N_SHARDS;
    }
    MY_SHARD.with(|i| *i)
}

/// A lock-free log-linear histogram with per-thread recording shards.
pub struct Histogram {
    shards: Vec<Shard>,
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            shards: (0..N_SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Records one observation, clamped to [`MAX_TRACKED`] (so `sum` and
    /// the buckets describe the same clamped distribution, and the sum
    /// cannot overflow at any realistic count). Lock- and allocation-free:
    /// three relaxed `fetch_add`s on the calling thread's shard.
    pub fn record(&self, value: u64) {
        let value = value.min(MAX_TRACKED);
        let shard = &self.shards[shard_index()];
        shard.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Merges every shard into one immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        for shard in &self.shards {
            for (i, b) in shard.buckets.iter().enumerate() {
                snap.buckets[i] += b.load(Ordering::Relaxed);
            }
            snap.count += shard.count.load(Ordering::Relaxed);
            snap.sum += shard.sum.load(Ordering::Relaxed);
        }
        snap
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A merged, immutable view of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; N_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Bucket-wise merge; associative and commutative.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Reports the quantile `q` in `[0, 1]` as the inclusive upper bound
    /// of the bucket holding the rank-`ceil(q * count)` observation, so
    /// the result over-reports the true order statistic by at most one
    /// bucket width (`value / 32 + 1`). Returns 0 on an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(N_BUCKETS - 1)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Span taxonomy: each stage a request can cross on the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Whole server residence: first header byte to response written.
    Request,
    /// Wait in the batcher queue from submit to gulp.
    BatchQueue,
    /// Pool execution of the request's (is_eval, version) group.
    BatchExec,
    /// Result-cache probe at gulp time (outcome hit or miss).
    Cache,
    /// Wait in the repair job queue from submit to worker pop.
    JobQueue,
    /// The LP repair solve (`repair_points` on the worker).
    LpSolve,
    /// WAL append + fsync for a publish triggered by this request.
    WalAppend,
}

impl Stage {
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::BatchQueue => "batch_queue",
            Stage::BatchExec => "batch_exec",
            Stage::Cache => "cache",
            Stage::JobQueue => "job_queue",
            Stage::LpSolve => "lp_solve",
            Stage::WalAppend => "wal_append",
        }
    }

    fn from_u8(v: u8) -> Option<Stage> {
        Some(match v {
            0 => Stage::Request,
            1 => Stage::BatchQueue,
            2 => Stage::BatchExec,
            3 => Stage::Cache,
            4 => Stage::JobQueue,
            5 => Stage::LpSolve,
            6 => Stage::WalAppend,
            _ => return None,
        })
    }

    fn as_u8(self) -> u8 {
        match self {
            Stage::Request => 0,
            Stage::BatchQueue => 1,
            Stage::BatchExec => 2,
            Stage::Cache => 3,
            Stage::JobQueue => 4,
            Stage::LpSolve => 5,
            Stage::WalAppend => 6,
        }
    }
}

/// How a span ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    Ok,
    Error,
    Deadline,
    Hit,
    Miss,
}

impl Outcome {
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Error => "error",
            Outcome::Deadline => "deadline",
            Outcome::Hit => "hit",
            Outcome::Miss => "miss",
        }
    }

    fn from_u8(v: u8) -> Option<Outcome> {
        Some(match v {
            0 => Outcome::Ok,
            1 => Outcome::Error,
            2 => Outcome::Deadline,
            3 => Outcome::Hit,
            4 => Outcome::Miss,
            _ => return None,
        })
    }

    fn as_u8(self) -> u8 {
        match self {
            Outcome::Ok => 0,
            Outcome::Error => 1,
            Outcome::Deadline => 2,
            Outcome::Hit => 3,
            Outcome::Miss => 4,
        }
    }
}

/// One recorded stage crossing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    pub request_id: u64,
    pub stage: Stage,
    /// Microseconds since server start when the stage began.
    pub start_us: u64,
    pub dur_us: u64,
    pub outcome: Outcome,
}

struct SpanSlot {
    /// Seqlock word: odd while a writer is mid-update.
    seq: AtomicU64,
    request_id: AtomicU64,
    /// Packed `stage | outcome << 8`.
    tags: AtomicU64,
    start_us: AtomicU64,
    dur_us: AtomicU64,
}

/// Bounded multi-writer span ring. Writers claim slots with one
/// `fetch_add`; readers skip torn slots via the per-slot seq word.
pub struct SpanRing {
    slots: Vec<SpanSlot>,
    head: AtomicU64,
}

impl SpanRing {
    fn new(cap: usize) -> Self {
        SpanRing {
            slots: (0..cap)
                .map(|_| SpanSlot {
                    seq: AtomicU64::new(0),
                    request_id: AtomicU64::new(0),
                    tags: AtomicU64::new(0),
                    start_us: AtomicU64::new(0),
                    dur_us: AtomicU64::new(0),
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    fn push(&self, span: &Span) {
        let n = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        // Generation counter per slot occupancy; odd = write in progress.
        let gen = (n / self.slots.len() as u64 + 1) * 2;
        slot.seq.store(gen - 1, Ordering::Release);
        slot.request_id.store(span.request_id, Ordering::Relaxed);
        slot.tags.store(
            u64::from(span.stage.as_u8()) | u64::from(span.outcome.as_u8()) << 8,
            Ordering::Relaxed,
        );
        slot.start_us.store(span.start_us, Ordering::Relaxed);
        slot.dur_us.store(span.dur_us, Ordering::Relaxed);
        slot.seq.store(gen, Ordering::Release);
    }

    /// Collects every resident span for one request, oldest first.
    fn collect(&self, request_id: u64) -> Vec<Span> {
        let mut out = Vec::new();
        for slot in &self.slots {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before % 2 == 1 {
                continue;
            }
            let id = slot.request_id.load(Ordering::Relaxed);
            if id != request_id {
                continue;
            }
            let tags = slot.tags.load(Ordering::Relaxed);
            let start_us = slot.start_us.load(Ordering::Relaxed);
            let dur_us = slot.dur_us.load(Ordering::Relaxed);
            if slot.seq.load(Ordering::Acquire) != before {
                continue; // overwritten mid-read: drop the torn span
            }
            let (stage, outcome) = match (
                Stage::from_u8((tags & 0xff) as u8),
                Outcome::from_u8((tags >> 8 & 0xff) as u8),
            ) {
                (Some(s), Some(o)) => (s, o),
                _ => continue,
            };
            out.push(Span {
                request_id: id,
                stage,
                start_us,
                dur_us,
                outcome,
            });
        }
        out.sort_by_key(|s| (s.start_us, s.stage.as_u8()));
        out
    }
}

/// A slow request's retained span chain.
#[derive(Clone, Debug)]
pub struct SlowTrace {
    pub request_id: u64,
    pub kind: &'static str,
    pub total_us: u64,
    pub spans: Vec<Span>,
}

/// Request kinds tracked by the end-to-end latency histogram family.
pub const REQUEST_KINDS: [&str; 4] = ["eval", "lin_regions", "repair", "other"];

/// Index into [`REQUEST_KINDS`] / `Telemetry::request_e2e`.
pub fn request_kind_index(kind: &str) -> usize {
    REQUEST_KINDS
        .iter()
        .position(|k| *k == kind)
        .unwrap_or(REQUEST_KINDS.len() - 1)
}

thread_local! {
    /// The request id the current thread is working on (0 = none).
    /// Lets deep layers (WAL appends under `ModelStore`) attribute spans
    /// without threading ids through every store API.
    static CURRENT_REQUEST: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// RAII guard restoring the previous thread-current request id.
pub struct RequestScope {
    prev: u64,
}

impl Drop for RequestScope {
    fn drop(&mut self) {
        CURRENT_REQUEST.with(|c| c.set(self.prev));
    }
}

/// Marks `request_id` as the one this thread is serving until the guard
/// drops.
pub fn enter_request(request_id: u64) -> RequestScope {
    let prev = CURRENT_REQUEST.with(|c| c.replace(request_id));
    RequestScope { prev }
}

/// The request id the current thread is serving, or 0.
pub fn current_request() -> u64 {
    CURRENT_REQUEST.with(|c| c.get())
}

/// All serve-stack telemetry: stage histograms, the span ring, and the
/// retained slow-log. One per server; shared via `Arc` by every layer.
pub struct Telemetry {
    epoch: Instant,
    slow_threshold_us: u64,
    /// End-to-end latency per request kind, indexed by [`REQUEST_KINDS`].
    pub request_e2e: [Histogram; 4],
    pub batch_queue_wait: Histogram,
    pub batch_exec: Histogram,
    pub gulp_size: Histogram,
    pub job_queue_wait: Histogram,
    pub lp_solve: Histogram,
    pub wal_fsync: Histogram,
    pub cache_hit_service: Histogram,
    pub cache_miss_service: Histogram,
    ring: SpanRing,
    slow: Mutex<VecDeque<SlowTrace>>,
}

impl Telemetry {
    /// `slow_ms == 0` disables span tracing and the slow-log entirely
    /// (histograms stay on; they are the cheap, always-on pillar).
    pub fn new(slow_ms: u64) -> Arc<Telemetry> {
        Arc::new(Telemetry {
            epoch: Instant::now(),
            slow_threshold_us: slow_ms.saturating_mul(1000),
            request_e2e: [
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
            ],
            batch_queue_wait: Histogram::new(),
            batch_exec: Histogram::new(),
            gulp_size: Histogram::new(),
            job_queue_wait: Histogram::new(),
            lp_solve: Histogram::new(),
            wal_fsync: Histogram::new(),
            cache_hit_service: Histogram::new(),
            cache_miss_service: Histogram::new(),
            ring: SpanRing::new(SPAN_RING_CAP),
            slow: Mutex::new(VecDeque::new()),
        })
    }

    /// Whether span tracing (and slow-log promotion) is on.
    pub fn tracing_enabled(&self) -> bool {
        self.slow_threshold_us > 0
    }

    /// Server start instant; span starts are measured from here.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Seconds the server has been up.
    pub fn uptime_seconds(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Records one span with an explicit duration. No-op when tracing is
    /// off or the request id is 0 (untracked work).
    pub fn span_at(
        &self,
        request_id: u64,
        stage: Stage,
        start: Instant,
        dur: Duration,
        outcome: Outcome,
    ) {
        if !self.tracing_enabled() || request_id == 0 {
            return;
        }
        self.ring.push(&Span {
            request_id,
            stage,
            start_us: start.saturating_duration_since(self.epoch).as_micros() as u64,
            dur_us: dur.as_micros().min(u128::from(u64::MAX)) as u64,
            outcome,
        });
    }

    /// Records a span that started at `start` and ends now.
    pub fn span(&self, request_id: u64, stage: Stage, start: Instant, outcome: Outcome) {
        self.span_at(request_id, stage, start, start.elapsed(), outcome);
    }

    /// Promotes the request's span chain to the slow-log if its total
    /// residence crossed the threshold.
    pub fn maybe_promote(&self, request_id: u64, kind: &'static str, total: Duration) {
        if !self.tracing_enabled() || request_id == 0 {
            return;
        }
        let total_us = total.as_micros().min(u128::from(u64::MAX)) as u64;
        if total_us < self.slow_threshold_us {
            return;
        }
        let spans = self.ring.collect(request_id);
        let mut slow = match self.slow.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if slow.len() == SLOW_LOG_CAP {
            slow.pop_front();
        }
        slow.push_back(SlowTrace {
            request_id,
            kind,
            total_us,
            spans,
        });
    }

    /// Recent slow-request traces, oldest first.
    pub fn slow_traces(&self) -> Vec<SlowTrace> {
        let slow = match self.slow.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        slow.iter().cloned().collect()
    }

    /// The slow-log as the structured JSON served by the `trace` request.
    pub fn slow_traces_json(&self) -> Value {
        let traces = self.slow_traces();
        Value::Arr(
            traces
                .iter()
                .map(|t| {
                    Value::obj([
                        ("request_id", Value::Num(t.request_id as f64)),
                        ("kind", Value::Str(t.kind.to_owned())),
                        ("total_ms", Value::Num(t.total_us as f64 / 1000.0)),
                        (
                            "spans",
                            Value::Arr(
                                t.spans
                                    .iter()
                                    .map(|s| {
                                        Value::obj([
                                            ("stage", Value::Str(s.stage.as_str().to_owned())),
                                            ("start_ms", Value::Num(s.start_us as f64 / 1000.0)),
                                            ("duration_ms", Value::Num(s.dur_us as f64 / 1000.0)),
                                            ("outcome", Value::Str(s.outcome.as_str().to_owned())),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        )
    }

    /// Every exported histogram family:
    /// `(family name, help, unit is seconds, [(label or "", histogram)])`.
    fn families(&self) -> Vec<Family<'_>> {
        vec![
            (
                "prdnn_request_seconds",
                "End-to-end server time per request, by request kind.",
                true,
                REQUEST_KINDS
                    .iter()
                    .zip(&self.request_e2e)
                    .map(|(k, h)| (format!("kind=\"{k}\""), h))
                    .collect(),
            ),
            (
                "prdnn_batch_queue_wait_seconds",
                "Time a batched call waited in the batcher queue before its gulp.",
                true,
                vec![(String::new(), &self.batch_queue_wait)],
            ),
            (
                "prdnn_batch_exec_seconds",
                "Pool execution time of one (is_eval, version) batch group.",
                true,
                vec![(String::new(), &self.batch_exec)],
            ),
            (
                "prdnn_gulp_size",
                "Queued calls taken per batcher gulp.",
                false,
                vec![(String::new(), &self.gulp_size)],
            ),
            (
                "prdnn_job_queue_wait_seconds",
                "Time a repair job waited in the job queue before a worker picked it up.",
                true,
                vec![(String::new(), &self.job_queue_wait)],
            ),
            (
                "prdnn_lp_solve_seconds",
                "LP repair solve time per job attempt.",
                true,
                vec![(String::new(), &self.lp_solve)],
            ),
            (
                "prdnn_wal_fsync_seconds",
                "WAL append + fsync time per appended version record.",
                true,
                vec![(String::new(), &self.wal_fsync)],
            ),
            (
                "prdnn_cache_service_seconds",
                "Submit-to-reply service time of batched calls, by cache result.",
                true,
                vec![
                    ("result=\"hit\"".to_owned(), &self.cache_hit_service),
                    ("result=\"miss\"".to_owned(), &self.cache_miss_service),
                ],
            ),
        ]
    }

    /// Renders every histogram family in Prometheus text exposition
    /// format. Only non-empty buckets are emitted (cumulative counts at
    /// their upper bounds, plus the mandatory `+Inf`), keeping scrapes
    /// proportional to occupied resolution rather than 1056 lines per
    /// family.
    pub fn render_histograms(&self, out: &mut String) {
        use std::fmt::Write;
        for (name, help, seconds, series) in self.families() {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (labels, hist) in series {
                let snap = hist.snapshot();
                let mut cum = 0u64;
                for (i, b) in snap.buckets.iter().enumerate() {
                    if *b == 0 {
                        continue;
                    }
                    cum += b;
                    let upper = bucket_upper(i);
                    let le = if seconds {
                        format!("{}", upper as f64 / 1e6)
                    } else {
                        format!("{upper}")
                    };
                    let _ = if labels.is_empty() {
                        writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}")
                    } else {
                        writeln!(out, "{name}_bucket{{{labels},le=\"{le}\"}} {cum}")
                    };
                }
                let (lb, rb) = if labels.is_empty() {
                    ("{".to_owned(), "}".to_owned())
                } else {
                    (format!("{{{labels},"), "}".to_owned())
                };
                let _ = writeln!(out, "{name}_bucket{lb}le=\"+Inf\"{rb} {}", snap.count);
                let sum = if seconds {
                    format!("{}", snap.sum as f64 / 1e6)
                } else {
                    format!("{}", snap.sum)
                };
                let suffix = if labels.is_empty() {
                    String::new()
                } else {
                    format!("{{{labels}}}")
                };
                let _ = writeln!(out, "{name}_sum{suffix} {sum}");
                let _ = writeln!(out, "{name}_count{suffix} {}", snap.count);
            }
        }
    }

    /// Renders process-level info: build version and uptime.
    pub fn render_process_metrics(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(
            out,
            "# HELP prdnn_build_info Constant 1, labeled with the server build version."
        );
        let _ = writeln!(out, "# TYPE prdnn_build_info gauge");
        let _ = writeln!(
            out,
            "prdnn_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        );
        let _ = writeln!(
            out,
            "# HELP prdnn_uptime_seconds Seconds since the server started."
        );
        let _ = writeln!(out, "# TYPE prdnn_uptime_seconds gauge");
        let _ = writeln!(out, "prdnn_uptime_seconds {}", self.uptime_seconds());
    }

    /// The full `metrics` exposition: counters + gauges from `stats`,
    /// histogram families, and process info.
    pub fn render_prometheus(&self, stats: &ServerStats) -> String {
        let mut out = stats.to_prometheus();
        self.render_histograms(&mut out);
        self.render_process_metrics(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_are_consistent() {
        let mut last = 0usize;
        for v in (0u64..4096).chain([1 << 20, 1 << 30, MAX_TRACKED, u64::MAX]) {
            let i = bucket_index(v);
            assert!(i >= last, "index regressed at {v}");
            assert!(i < N_BUCKETS);
            last = i;
            if v <= MAX_TRACKED {
                assert!(bucket_upper(i) >= v, "upper bound below value at {v}");
                if i > 0 {
                    assert!(bucket_upper(i - 1) < v, "value fits previous bucket at {v}");
                }
            }
        }
        assert_eq!(bucket_index(MAX_TRACKED), N_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded_by_one_thirty_second() {
        for v in [1u64, 31, 32, 33, 100, 1000, 12345, 1 << 20, (1 << 30) + 7] {
            let upper = bucket_upper(bucket_index(v));
            assert!(upper >= v);
            assert!(upper - v <= v / 32 + 1, "bucket too wide at {v}: {upper}");
        }
    }

    #[test]
    fn quantiles_match_a_sorted_oracle_within_a_bucket() {
        let hist = Histogram::new();
        let mut values: Vec<u64> = (0..1000u64).map(|i| i * i % 7919 + 1).collect();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, values.iter().sum::<u64>());
        for q in [0.5f64, 0.9, 0.99, 0.999] {
            let rank = ((q * 1000.0).ceil() as usize).clamp(1, 1000);
            let truth = values[rank - 1];
            let got = snap.quantile(q);
            assert!(got >= truth, "q{q} under-reported: {got} < {truth}");
            assert!(
                got - truth <= truth / 32 + 1,
                "q{q} off by more than a bucket"
            );
        }
    }

    #[test]
    fn snapshots_merge_associatively() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (a, b, c) = (mk(&[1, 2, 3]), mk(&[40, 50]), mk(&[6000]));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn span_ring_collects_a_request_chain_in_start_order() {
        let t = Telemetry::new(10);
        let epoch = t.epoch();
        t.span_at(
            7,
            Stage::BatchExec,
            epoch + Duration::from_micros(50),
            Duration::from_micros(5),
            Outcome::Ok,
        );
        t.span_at(
            7,
            Stage::Request,
            epoch,
            Duration::from_micros(90),
            Outcome::Ok,
        );
        t.span_at(
            8,
            Stage::Request,
            epoch,
            Duration::from_micros(1),
            Outcome::Ok,
        );
        let spans = t.ring.collect(7);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, Stage::Request);
        assert_eq!(spans[1].stage, Stage::BatchExec);
    }

    #[test]
    fn slow_log_promotes_only_over_threshold_and_is_bounded() {
        let t = Telemetry::new(10); // 10 ms
        let epoch = t.epoch();
        t.span_at(
            1,
            Stage::Request,
            epoch,
            Duration::from_millis(5),
            Outcome::Ok,
        );
        t.maybe_promote(1, "eval", Duration::from_millis(5));
        assert!(t.slow_traces().is_empty(), "fast request promoted");
        for id in 2..(SLOW_LOG_CAP as u64 + 10) {
            t.span_at(
                id,
                Stage::Request,
                epoch,
                Duration::from_millis(20),
                Outcome::Ok,
            );
            t.maybe_promote(id, "eval", Duration::from_millis(20));
        }
        let slow = t.slow_traces();
        assert_eq!(slow.len(), SLOW_LOG_CAP);
        assert_eq!(slow.last().unwrap().request_id, SLOW_LOG_CAP as u64 + 9);
        assert!(!slow.last().unwrap().spans.is_empty());
    }

    #[test]
    fn disabled_telemetry_records_no_spans_but_histograms_stay_on() {
        let t = Telemetry::new(0);
        t.span(9, Stage::Request, Instant::now(), Outcome::Ok);
        t.maybe_promote(9, "eval", Duration::from_secs(10));
        assert!(t.slow_traces().is_empty());
        t.request_e2e[0].record(100);
        assert_eq!(t.request_e2e[0].snapshot().count, 1);
    }

    #[test]
    fn current_request_scope_nests_and_restores() {
        assert_eq!(current_request(), 0);
        let outer = enter_request(5);
        assert_eq!(current_request(), 5);
        {
            let _inner = enter_request(6);
            assert_eq!(current_request(), 6);
        }
        assert_eq!(current_request(), 5);
        drop(outer);
        assert_eq!(current_request(), 0);
    }
}
