//! Cache-blocked, register-tiled f64 matrix kernels.
//!
//! This module owns **the** inner loops of the repository: every dense
//! dot / matrix-vector / matrix-matrix product in the repair pipeline
//! (forward passes, DDNN Jacobians, SyReNN pre-activations, LP pricing)
//! funnels into [`dot`], [`gemv`], [`gemm_nn`] or [`gemm_nt`], so there is
//! exactly one place to optimise and one summation order to reason about.
//!
//! # Blocking scheme
//!
//! The blocked path is a small GotoBLAS/BLIS-style kernel:
//!
//! * the output is tiled into fixed `MR × NR` register tiles
//!   (4 × 8 doubles = 8 AVX2 accumulator vectors),
//! * for each tile, an `MR`-row panel of `A` and an `NR`-column panel of
//!   `B` are **packed** into contiguous, zero-padded buffers laid out
//!   k-major, so the micro-kernel reads both operands with unit stride and
//!   the compiler auto-vectorises the `NR`-wide update,
//! * `B` panels are packed once per `NC`-column block and reused by every
//!   row panel, which is what makes one packed weight tile serve a whole
//!   key-point batch.
//!
//! There is deliberately **no blocking in the k dimension**: every output
//! element is accumulated in a single register chain over `k = 0..K` in
//! ascending order.  That makes the blocked kernels **bit-identical** to
//! the naive triple loop ([`gemm_naive`]), to the row-at-a-time [`gemv`],
//! and to the scalar [`dot`] — parallel/batched paths can switch between
//! them freely without changing a single f64 bit.  The price is that `A`
//! row panels are streamed at full depth (`MR × K` doubles, ~8 KiB for
//! K = 256), comfortably L1-resident for every network in this repo.
//!
//! Padding note: partial edge tiles are zero-padded at *pack* time so the
//! micro-kernel is always full-size.  Padded lanes are never stored, and
//! a padded `+= 0.0 * x` cannot flip a stored lane because it only touches
//! unstored accumulator rows/columns.

/// Register-tile rows (rows of `C` updated per micro-kernel call).
const MR: usize = 4;
/// Register-tile columns (columns of `C` updated per micro-kernel call).
const NR: usize = 8;
/// Columns of `B` packed per outer block (bounds the packed-B buffer).
const NC: usize = 512;
/// Below this many multiply-adds the packing setup costs more than it
/// saves and the kernels fall through to the naive loop (same bits).
const BLOCK_THRESHOLD: usize = 16 * 1024;

/// The scalar inner loop: `sum_k a[k] * b[k]`, accumulated in ascending
/// `k` order (no FMA, no reassociation — the summation order is the
/// contract every other kernel in this module preserves).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot of mismatched lengths");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Matrix-vector product `y = A x` for row-major `A` (`m × k`).
///
/// Rows are processed four at a time so one streaming pass over `x`
/// feeds four accumulator chains; each chain is an ascending-`k` [`dot`],
/// so the result is bit-identical to calling [`dot`] per row.
pub fn gemv(m: usize, k: usize, a: &[f64], x: &[f64], y: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemv: A shape mismatch");
    assert_eq!(x.len(), k, "gemv: x length mismatch");
    assert_eq!(y.len(), m, "gemv: y length mismatch");
    let mut rows = a.chunks_exact(4 * k);
    let mut out = y.chunks_exact_mut(4);
    for (quad, ys) in (&mut rows).zip(&mut out) {
        let (r0, rest) = quad.split_at(k);
        let (r1, rest) = rest.split_at(k);
        let (r2, r3) = rest.split_at(k);
        let (mut a0, mut a1, mut a2, mut a3) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..k {
            let xi = x[i];
            a0 += r0[i] * xi;
            a1 += r1[i] * xi;
            a2 += r2[i] * xi;
            a3 += r3[i] * xi;
        }
        ys[0] = a0;
        ys[1] = a1;
        ys[2] = a2;
        ys[3] = a3;
    }
    for (row, yr) in rows.remainder().chunks_exact(k).zip(out.into_remainder()) {
        *yr = dot(row, x);
    }
}

/// Reference oracle: the naive triple loop (`i, k, j` order — the
/// cache-friendly form the repo used before blocking), accumulating each
/// output element in ascending `k`.  `C[m × n] = A[m × k] · B[k × n]`,
/// all row-major; `C` is overwritten.
pub fn gemm_naive(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm: A shape mismatch");
    assert_eq!(b.len(), k * n, "gemm: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm: C shape mismatch");
    c.fill(0.0);
    for (row_a, row_c) in a.chunks_exact(k).zip(c.chunks_exact_mut(n)) {
        for (aik, row_b) in row_a.iter().zip(b.chunks_exact(n)) {
            for (cij, bkj) in row_c.iter_mut().zip(row_b) {
                *cij += aik * bkj;
            }
        }
    }
}

/// `C[m × n] = A[m × k] · B[k × n]`, all row-major, `C` overwritten.
/// Bit-identical to [`gemm_naive`] at every size.
pub fn gemm_nn(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm: A shape mismatch");
    assert_eq!(b.len(), k * n, "gemm: B shape mismatch");
    assert_eq!(c.len(), m * n, "gemm: C shape mismatch");
    if m * k * n < BLOCK_THRESHOLD {
        gemm_naive(m, k, n, a, b, c);
    } else {
        gemm_blocked(m, k, n, a, c, |kk, j| b[kk * n + j]);
    }
}

/// `C[m × n] = A[m × k] · Bᵀ` where `B` is row-major `n × k` — the
/// batch-major forward-pass shape (`X · Wᵀ` with `W` stored out×in).
/// Bit-identical to the corresponding [`gemm_nn`] on an explicitly
/// transposed `B`; packing reads `B`'s rows contiguously instead.
pub fn gemm_nt(m: usize, k: usize, n: usize, a: &[f64], bt: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm: A shape mismatch");
    assert_eq!(bt.len(), n * k, "gemm: Bᵀ shape mismatch");
    assert_eq!(c.len(), m * n, "gemm: C shape mismatch");
    if m * k * n < BLOCK_THRESHOLD {
        // Naive path, reading B transposed: each element is an
        // ascending-k dot of an A row with a B row.
        for (row_a, row_c) in a.chunks_exact(k).zip(c.chunks_exact_mut(n)) {
            for (cij, row_b) in row_c.iter_mut().zip(bt.chunks_exact(k)) {
                *cij = dot(row_a, row_b);
            }
        }
    } else {
        gemm_blocked(m, k, n, a, c, |kk, j| bt[j * k + kk]);
    }
}

/// The shared blocked driver: `b_at(k, j)` abstracts `B`'s layout (it is
/// only called at pack time, so the micro-kernel itself always reads
/// contiguous packed panels).
///
/// On x86-64 the whole driver is compiled twice more with AVX-512F / AVX2
/// enabled and dispatched on runtime CPUID detection (`std` caches the
/// probe).  The wider builds only change the *vector width* the compiler
/// may use for the independent per-lane accumulator chains; FMA
/// contraction is never enabled, so all three versions — and therefore
/// all CPUs — produce bit-identical output.
fn gemm_blocked(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    c: &mut [f64],
    b_at: impl Fn(usize, usize) -> f64,
) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx512f") {
            // SAFETY: feature presence checked on this CPU at runtime.
            return unsafe { gemm_blocked_avx512(m, k, n, a, c, b_at) };
        }
        if std::is_x86_feature_detected!("avx2") {
            // SAFETY: feature presence checked on this CPU at runtime.
            return unsafe { gemm_blocked_avx2(m, k, n, a, c, b_at) };
        }
    }
    gemm_blocked_impl(m, k, n, a, c, b_at);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn gemm_blocked_avx512(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    c: &mut [f64],
    b_at: impl Fn(usize, usize) -> f64,
) {
    gemm_blocked_impl(m, k, n, a, c, b_at);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_blocked_avx2(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    c: &mut [f64],
    b_at: impl Fn(usize, usize) -> f64,
) {
    gemm_blocked_impl(m, k, n, a, c, b_at);
}

#[inline(always)]
fn gemm_blocked_impl(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    c: &mut [f64],
    b_at: impl Fn(usize, usize) -> f64,
) {
    // Packed A row panel: k-major, MR values per k, zero-padded.
    let mut a_panel = vec![0.0; k * MR];
    // Packed B block: NC/NR panels, each k-major with NR values per k.
    let mut b_pack = vec![0.0; k * NC.min(n.next_multiple_of(NR))];

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let num_panels = nc.div_ceil(NR);
        // Pack B[:, jc..jc+nc] once; it is reused by every row panel.
        for q in 0..num_panels {
            let j0 = jc + q * NR;
            let nr = NR.min(n - j0);
            let panel = &mut b_pack[q * k * NR..(q + 1) * k * NR];
            for kk in 0..k {
                for j in 0..NR {
                    panel[kk * NR + j] = if j < nr { b_at(kk, j0 + j) } else { 0.0 };
                }
            }
        }

        let mut i0 = 0;
        while i0 < m {
            let mr = MR.min(m - i0);
            // Pack A rows [i0, i0+mr) k-major with zero padding.
            for kk in 0..k {
                for r in 0..MR {
                    a_panel[kk * MR + r] = if r < mr { a[(i0 + r) * k + kk] } else { 0.0 };
                }
            }
            for q in 0..num_panels {
                let j0 = jc + q * NR;
                let nr = NR.min(n - j0);
                let panel = &b_pack[q * k * NR..(q + 1) * k * NR];
                let acc = micro_kernel(&a_panel, panel);
                for r in 0..mr {
                    let row = &mut c[(i0 + r) * n + j0..(i0 + r) * n + j0 + nr];
                    row.copy_from_slice(&acc[r][..nr]);
                }
            }
            i0 += MR;
        }
        jc += NC;
    }
}

/// The register tile: `MR × NR` accumulators, each a single ascending-`k`
/// chain.  Both panels are contiguous and k-major, so the `NR`-wide inner
/// update auto-vectorises without reassociating any chain.
///
/// `inline(always)` is load-bearing: the kernel must be compiled *inside*
/// the multiversioned drivers to pick up their AVX target features.
#[inline(always)]
fn micro_kernel(a_panel: &[f64], b_panel: &[f64]) -> [[f64; NR]; MR] {
    let mut acc = [[0.0; NR]; MR];
    for (av, bv) in a_panel.chunks_exact(MR).zip(b_panel.chunks_exact(NR)) {
        for r in 0..MR {
            let ar = av[r];
            for j in 0..NR {
                acc[r][j] += ar * bv[j];
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(seed: u64, len: usize) -> Vec<f64> {
        // Deterministic splitmix-style values in roughly [-1, 1].
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn blocked_nn_is_bit_identical_to_naive_across_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (64, 256, 256), // forces the blocked path
            (33, 70, 129),
            (13, 600, 9),
        ] {
            let a = fill(m as u64 * 31 + n as u64, m * k);
            let b = fill(k as u64 * 17 + 1, k * n);
            let mut c_naive = vec![f64::NAN; m * n];
            let mut c_blocked = vec![f64::NAN; m * n];
            gemm_naive(m, k, n, &a, &b, &mut c_naive);
            gemm_nn(m, k, n, &a, &b, &mut c_blocked);
            assert!(
                c_naive
                    .iter()
                    .zip(&c_blocked)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "gemm_nn diverged from naive at ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        for &(m, k, n) in &[(2, 3, 4), (7, 33, 19), (64, 256, 256)] {
            let a = fill(9, m * k);
            let bt = fill(11, n * k);
            let b: Vec<f64> = (0..k * n).map(|i| bt[(i % n) * k + i / n]).collect();
            let mut via_nn = vec![0.0; m * n];
            let mut via_nt = vec![0.0; m * n];
            gemm_nn(m, k, n, &a, &b, &mut via_nn);
            gemm_nt(m, k, n, &a, &bt, &mut via_nt);
            assert!(
                via_nn
                    .iter()
                    .zip(&via_nt)
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "gemm_nt diverged at ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn gemv_matches_per_row_dot() {
        for &(m, k) in &[(1, 1), (4, 16), (7, 33), (256, 256)] {
            let a = fill(5, m * k);
            let x = fill(6, k);
            let mut y = vec![0.0; m];
            gemv(m, k, &a, &x, &mut y);
            for r in 0..m {
                assert_eq!(y[r].to_bits(), dot(&a[r * k..(r + 1) * k], &x).to_bits());
            }
        }
    }
}
