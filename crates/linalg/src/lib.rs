//! Dense linear algebra substrate for the PRDNN reproduction.
//!
//! The repair algorithms of the paper only need small/medium dense matrices
//! and vectors with exact, predictable semantics: matrix–vector products,
//! matrix–matrix products, norms, and a handful of constructors.  Rather
//! than pulling in a full BLAS binding, this crate provides a compact,
//! well-tested `f64` implementation that the rest of the workspace builds
//! upon.  The one factorisation the workspace needs — an LU with partial
//! pivoting for the revised simplex basis ([`LuFactors`]) — lives here too.
//!
//! # Example
//!
//! ```
//! use prdnn_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
//! let v = vec![1.0, 1.0];
//! assert_eq!(a.matvec(&v), vec![3.0, 7.0]);
//! ```

pub mod gemm;
mod lu;
mod matrix;
pub mod vector;

pub use lu::{LuFactors, SingularMatrixError};
pub use matrix::Matrix;
pub use vector::{add, argmax, dot, linf_distance, norm_l1, norm_l2, norm_linf, scale, sub};

/// Absolute tolerance used throughout the workspace when comparing floats
/// that should be exactly equal up to rounding error.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` if two floats agree up to `tol` absolutely or relatively.
///
/// This is the comparison used by the test suites when checking the exactness
/// theorems of the paper (Theorem 4.4/4.5), where results are equal up to
/// floating-point rounding.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

/// Returns `true` if two slices agree element-wise per [`approx_eq`].
///
/// Returns `false` if the lengths differ.
pub fn approx_eq_slice(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| approx_eq(*x, *y, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(approx_eq(1e9, 1e9 + 1.0, 1e-6));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_slice_checks_length() {
        assert!(approx_eq_slice(&[1.0, 2.0], &[1.0, 2.0], 1e-9));
        assert!(!approx_eq_slice(&[1.0], &[1.0, 2.0], 1e-9));
        assert!(!approx_eq_slice(&[1.0, 2.0], &[1.0, 2.5], 1e-9));
    }
}
