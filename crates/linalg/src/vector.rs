//! Free functions over `&[f64]` vectors.
//!
//! Vectors in this workspace are plain `Vec<f64>` / `&[f64]`; these helpers
//! provide the handful of operations the repair algorithms need (dot
//! products, norms, element-wise arithmetic, argmax for classification).

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    crate::gemm::dot(a, b)
}

/// Element-wise sum `a + b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Element-wise difference `a - b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scales every element of `a` by `s`.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// The ℓ1 norm `Σ |a_i|`, the default repair-size measure in the paper.
pub fn norm_l1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// The Euclidean (ℓ2) norm.
pub fn norm_l2(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// The ℓ∞ norm `max |a_i|` (0 for an empty slice).
pub fn norm_linf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// Largest absolute element-wise difference between two vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn linf_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "linf_distance: length mismatch");
    a.iter().zip(b).fold(0.0, |m, (x, y)| m.max((x - y).abs()))
}

/// Index of the maximum element (ties resolved to the smallest index).
///
/// Used to turn network logits into a predicted class label.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn argmax(a: &[f64]) -> usize {
    assert!(!a.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, v) in a.iter().enumerate() {
        if *v > a[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_arith() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scale(&[1.0, -2.0], 3.0), vec![3.0, -6.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_l1(&[1.0, -2.0, 3.0]), 6.0);
        assert!((norm_l2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_linf(&[1.0, -7.0, 3.0]), 7.0);
        assert_eq!(norm_linf(&[]), 0.0);
        assert_eq!(linf_distance(&[1.0, 2.0], &[0.0, 5.0]), 3.0);
    }

    #[test]
    fn argmax_ties_go_left() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    #[should_panic]
    fn argmax_empty_panics() {
        argmax(&[]);
    }

    #[test]
    #[should_panic]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
