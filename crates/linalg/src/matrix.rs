//! A dense, row-major `f64` matrix.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64` values.
///
/// This is the only matrix type used in the workspace.  It is deliberately
/// simple: a shape plus a flat `Vec<f64>` buffer, with the operations the
/// DNN substrate and the repair algorithms need.
///
/// # Example
///
/// ```
/// use prdnn_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]);
/// assert_eq!(m.matvec(&[3.0, 4.0]), vec![3.0, 8.0]);
/// assert_eq!(m.transpose()[(1, 0)], 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "from_rows: no rows given");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "from_rows: ragged rows"
        );
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_flat(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_flat: buffer size mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its row-major buffer.
    pub fn into_flat(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row index {} out of bounds ({} rows)",
            r,
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "col index {} out of bounds ({} cols)",
            c,
            self.cols
        );
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(
            v.len(),
            self.cols,
            "matvec: got {} entries, expected {}",
            v.len(),
            self.cols
        );
        let mut out = vec![0.0; self.rows];
        crate::gemm::gemv(self.rows, self.cols, &self.data, v, &mut out);
        out
    }

    /// Matrix–matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::gemm::gemm_nn(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "sub: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scalar multiple of the matrix.
    pub fn scale(&self, s: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Sum of absolute values of all entries (entry-wise ℓ1 norm).
    pub fn norm_l1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Largest absolute entry (entry-wise ℓ∞ norm).
    pub fn norm_linf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Appends `other`'s rows below `self`'s rows.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack: column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Appends `other`'s columns to the right of `self`'s columns.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack: row mismatch");
        Matrix::from_fn(self.rows, self.cols + other.cols, |r, c| {
            if c < self.cols {
                self[(r, c)]
            } else {
                other[(r, c - self.cols)]
            }
        })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({}, {}) out of bounds",
            r,
            c
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({}, {}) out of bounds",
            r,
            c
        );
        &mut self.data[r * self.cols + c]
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_slice;

    #[test]
    fn constructors() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 0)], 0.0);

        let f = Matrix::from_fn(2, 2, |r, c| (r * 10 + c) as f64);
        assert_eq!(f[(1, 1)], 11.0);

        let m = Matrix::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let ab = a.matmul(&b);
        assert_eq!(ab, Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]));
        assert_eq!(
            a.transpose(),
            Matrix::from_rows(&[vec![1.0, 3.0], vec![2.0, 4.0]])
        );
        // identity is neutral
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn arithmetic_and_norms() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        assert_eq!(a.add(&b)[(0, 1)], -1.0);
        assert_eq!(a.sub(&b)[(1, 0)], 2.0);
        assert_eq!(a.scale(2.0)[(1, 1)], 8.0);
        assert_eq!(a.norm_l1(), 10.0);
        assert_eq!(a.norm_linf(), 4.0);
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let v = a.vstack(&b);
        assert_eq!(v.rows(), 2);
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = a.hstack(&b);
        assert_eq!(h.cols(), 4);
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn matvec_equals_matmul_on_column() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![-1.0, 0.5]]);
        let v = vec![0.3, -0.7];
        let col = Matrix::from_flat(2, 1, v.clone());
        let prod = m.matmul(&col);
        assert!(approx_eq_slice(&m.matvec(&v), prod.as_slice(), 1e-12));
    }

    #[test]
    #[should_panic]
    fn matvec_wrong_len_panics() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn from_rows_ragged_panics() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
