//! LU factorisation with sparsity-exploiting solves: partial pivoting and a
//! Markowitz-ordered variant.
//!
//! The revised simplex keeps its basis matrix `B` factorised as
//! `P A Q = L U` (unit lower-triangular `L`, upper-triangular `U`, row
//! permutation `P`, column permutation `Q` — identity for plain partial
//! pivoting) so that the two linear systems of every pivot — FTRAN
//! (`B x = a`) and BTRAN (`Bᵀ y = c`) — cost triangular solves instead of a
//! fresh elimination.
//!
//! Simplex bases are overwhelmingly sparse (most basic columns are unit
//! slack columns), so after the dense elimination the factors are
//! *compressed*: `L` and `U` are stored as per-column and per-row non-zero
//! lists, and the solves are column-oriented with zero-skipping — a column
//! whose solution component is zero is never touched.  That makes each
//! solve `O(nnz reached)` rather than `O(n²)`, which is what turns the
//! revised simplex's per-pivot cost into "output-sensitive" work on the
//! block-sparse repair LPs.
//!
//! [`LuFactors::factorize`] picks pivots by magnitude alone (partial
//! pivoting: largest entry of the elimination column), which is numerically
//! safe but blind to fill-in.  [`LuFactors::factorize_markowitz`] instead
//! picks, among the tolerance-stable candidates of the active submatrix, the
//! entry minimising the Markowitz count `(r_i − 1)(c_j − 1)` (row non-zeros
//! × column non-zeros) — the classic fill-minimising order of production LP
//! factorisations.  On simplex bases the dominant effect is that unit slack
//! columns (column singletons, Markowitz count 0) are eliminated first with
//! *zero* fill, so the factor size tracks the structural block rather than
//! the whole basis.

use crate::Matrix;

/// Error returned when the matrix handed to [`LuFactors::factorize`] is
/// singular (or numerically indistinguishable from singular).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// The elimination column at which no acceptable pivot was found.
    pub column: usize,
}

impl std::fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is singular: no pivot in elimination column {}",
            self.column
        )
    }
}

impl std::error::Error for SingularMatrixError {}

/// Pivots whose magnitude falls below this are treated as zero.
const PIVOT_TOL: f64 = 1e-12;

/// Markowitz stability threshold: a candidate pivot must be at least this
/// fraction of the largest magnitude in its elimination column.  The classic
/// compromise (Suhl & Suhl use 0.01–0.1): small enough to leave the pivot
/// search room to chase sparsity, large enough to keep element growth
/// bounded.
const MARKOWITZ_THRESHOLD: f64 = 0.1;

/// Upper bound on the number of stability-acceptable columns the Markowitz
/// search examines per elimination step before settling for the best found
/// (Suhl-style bounded search; keeps the search cost a small multiple of a
/// column scan).
const MARKOWITZ_SEARCH_COLS: usize = 8;

/// Count-bucketed lists of the active columns for the Markowitz pivot
/// search: `buckets[c]` holds the active column indices whose active
/// non-zero count is exactly `c`, and `pos[j]` is column `j`'s slot in its
/// bucket.  Membership moves are O(1) swap-removes, so the per-step tier
/// walk touches only the columns that actually live in a tier — an empty
/// tier costs one `is_empty` check instead of a full O(n) column rescan.
struct ColumnBuckets {
    buckets: Vec<Vec<usize>>,
    pos: Vec<usize>,
}

impl ColumnBuckets {
    /// Builds the buckets from the initial column counts (counts never
    /// exceed `n`, the number of rows).
    fn new(col_count: &[usize]) -> Self {
        let n = col_count.len();
        let mut buckets = vec![Vec::new(); n + 1];
        let mut pos = vec![usize::MAX; n];
        for (j, &c) in col_count.iter().enumerate() {
            pos[j] = buckets[c].len();
            buckets[c].push(j);
        }
        ColumnBuckets { buckets, pos }
    }

    /// The columns currently in tier `count`.
    fn tier(&self, count: usize) -> &[usize] {
        &self.buckets[count]
    }

    /// Removes column `j` from tier `count` (its current count).
    fn remove(&mut self, j: usize, count: usize) {
        let bucket = &mut self.buckets[count];
        let p = self.pos[j];
        debug_assert_eq!(bucket[p], j, "bucket bookkeeping out of sync");
        let last = bucket.pop().expect("removing from an empty bucket");
        if last != j {
            bucket[p] = last;
            self.pos[last] = p;
        }
        self.pos[j] = usize::MAX;
    }

    /// Inserts column `j` into tier `count`.
    fn insert(&mut self, j: usize, count: usize) {
        self.pos[j] = self.buckets[count].len();
        self.buckets[count].push(j);
    }

    /// Moves column `j` from tier `from` to tier `to`.
    fn update(&mut self, j: usize, from: usize, to: usize) {
        self.remove(j, from);
        self.insert(j, to);
    }
}

/// A triangular factor compressed by both columns and rows (strict part
/// only; diagonals are stored separately or implied), in flat CSR/CSC-style
/// arrays so a refactorisation costs a handful of allocations, not `O(n)`.
#[derive(Debug, Clone, Default)]
struct SparseTriangle {
    col_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    col_val: Vec<f64>,
    row_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    row_val: Vec<f64>,
}

impl SparseTriangle {
    fn with_capacity(n: usize, nnz: usize) -> Self {
        SparseTriangle {
            col_ptr: vec![0usize; n + 1],
            col_idx: vec![0usize; nnz],
            col_val: vec![0.0f64; nnz],
            row_ptr: vec![0usize; n + 1],
            row_idx: vec![0usize; nnz],
            row_val: vec![0.0f64; nnz],
        }
    }

    /// Extracts both strict triangles (and `U`'s diagonal) from the
    /// eliminated working buffer in two fused passes over the matrix —
    /// refactorisation runs once per few dozen simplex pivots, so the pack
    /// cost is on the hot path (the per-triangle `from_dense` would scan
    /// the buffer four times instead).
    fn split_dense(n: usize, dense: &[f64]) -> (Self, Self, Vec<f64>) {
        // Pass 1: count the strict-lower and strict-upper non-zeros per
        // row and column.
        let mut l = SparseTriangle::with_capacity(n, 0);
        let mut u = SparseTriangle::with_capacity(n, 0);
        for i in 0..n {
            let row = &dense[i * n..(i + 1) * n];
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 && j != i {
                    let t = if j < i { &mut l } else { &mut u };
                    t.col_ptr[j + 1] += 1;
                    t.row_ptr[i + 1] += 1;
                }
            }
        }
        for t in [&mut l, &mut u] {
            for k in 0..n {
                t.col_ptr[k + 1] += t.col_ptr[k];
                t.row_ptr[k + 1] += t.row_ptr[k];
            }
            let nnz = t.col_ptr[n];
            t.col_idx = vec![0usize; nnz];
            t.col_val = vec![0.0f64; nnz];
            t.row_idx = vec![0usize; nnz];
            t.row_val = vec![0.0f64; nnz];
        }
        // Pass 2: fill.  Row-major iteration appends in index order within
        // each column and row.
        let mut u_diag = vec![0.0f64; n];
        let mut l_col_fill = l.col_ptr.clone();
        let mut u_col_fill = u.col_ptr.clone();
        let (mut l_row_fill, mut u_row_fill) = (0usize, 0usize);
        for i in 0..n {
            let row = &dense[i * n..(i + 1) * n];
            for (j, &v) in row.iter().enumerate() {
                if j == i {
                    u_diag[i] = v;
                } else if v != 0.0 {
                    let (t, col_fill, row_fill) = if j < i {
                        (&mut l, &mut l_col_fill, &mut l_row_fill)
                    } else {
                        (&mut u, &mut u_col_fill, &mut u_row_fill)
                    };
                    let c = col_fill[j];
                    col_fill[j] += 1;
                    t.col_idx[c] = i;
                    t.col_val[c] = v;
                    t.row_idx[*row_fill] = j;
                    t.row_val[*row_fill] = v;
                    *row_fill += 1;
                }
            }
        }
        (l, u, u_diag)
    }

    #[cfg(test)]
    fn from_dense(n: usize, dense: &[f64], lower: bool) -> Self {
        let strict_span = |i: usize| if lower { 0..i } else { i + 1..n };
        // First scan: counts -> prefix sums.
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_ptr = vec![0usize; n + 1];
        let mut nnz = 0usize;
        for i in 0..n {
            for j in strict_span(i) {
                if dense[i * n + j] != 0.0 {
                    col_ptr[j + 1] += 1;
                    row_ptr[i + 1] += 1;
                    nnz += 1;
                }
            }
        }
        for k in 0..n {
            col_ptr[k + 1] += col_ptr[k];
            row_ptr[k + 1] += row_ptr[k];
        }
        // Second scan: fill.  Row-major iteration appends in index order
        // within each column and row.
        let mut col_fill = col_ptr.clone();
        let mut col_idx = vec![0usize; nnz];
        let mut col_val = vec![0.0f64; nnz];
        let mut row_idx = vec![0usize; nnz];
        let mut row_val = vec![0.0f64; nnz];
        let mut row_fill = 0usize;
        for i in 0..n {
            for j in strict_span(i) {
                let v = dense[i * n + j];
                if v != 0.0 {
                    let c = col_fill[j];
                    col_fill[j] += 1;
                    col_idx[c] = i;
                    col_val[c] = v;
                    row_idx[row_fill] = j;
                    row_val[row_fill] = v;
                    row_fill += 1;
                }
            }
        }
        SparseTriangle {
            col_ptr,
            col_idx,
            col_val,
            row_ptr,
            row_idx,
            row_val,
        }
    }

    /// Subtracts `scale ×` column `j` (strict part) from `x`.
    #[inline]
    fn axpy_col(&self, j: usize, scale: f64, x: &mut [f64]) {
        for k in self.col_ptr[j]..self.col_ptr[j + 1] {
            x[self.col_idx[k]] -= self.col_val[k] * scale;
        }
    }

    /// Subtracts `scale ×` row `j` (strict part, read as a column of the
    /// transpose) from `x`.
    #[inline]
    fn axpy_row(&self, j: usize, scale: f64, x: &mut [f64]) {
        for k in self.row_ptr[j]..self.row_ptr[j + 1] {
            x[self.row_idx[k]] -= self.row_val[k] * scale;
        }
    }
}

/// A packed LU factorisation `P A Q = L U` of a square matrix.
///
/// The permutations are stored as the sequences of swaps performed during
/// elimination, LAPACK `ipiv`-style (`jpiv` is the identity for partial
/// pivoting and carries the Markowitz column order otherwise); the
/// triangular factors are kept as strict-part non-zero lists plus `U`'s
/// diagonal.
///
/// # Example
///
/// ```
/// use prdnn_linalg::{LuFactors, Matrix};
///
/// let a = Matrix::from_rows(&[vec![0.0, 2.0], vec![3.0, 1.0]]);
/// let lu = LuFactors::factorize_matrix(&a).unwrap();
/// let x = lu.solve(&[4.0, 5.0]);
/// assert!((a.matvec(&x)[0] - 4.0).abs() < 1e-12);
/// assert!((a.matvec(&x)[1] - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Strict lower factor `L` (unit diagonal implied).
    l: SparseTriangle,
    /// Strict upper part of `U`.
    u: SparseTriangle,
    /// Diagonal of `U`.
    u_diag: Vec<f64>,
    /// `ipiv[k]` is the row swapped with row `k` at elimination step `k`.
    ipiv: Vec<usize>,
    /// `jpiv[k]` is the column swapped with column `k` at elimination step
    /// `k` (the identity permutation under partial pivoting).
    jpiv: Vec<usize>,
}

impl LuFactors {
    /// Factorises the `n × n` row-major matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if some elimination column has no
    /// pivot above the tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n * n`.
    pub fn factorize(n: usize, a: &[f64]) -> Result<Self, SingularMatrixError> {
        assert_eq!(a.len(), n * n, "factorize: buffer is not n×n");
        let mut lu = a.to_vec();
        let mut ipiv = vec![0usize; n];
        for k in 0..n {
            // Partial pivoting: bring the largest remaining entry of column
            // k onto the diagonal.
            let mut p = k;
            let mut best = lu[k * n + k].abs();
            for i in k + 1..n {
                let v = lu[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= PIVOT_TOL {
                return Err(SingularMatrixError { column: k });
            }
            ipiv[k] = p;
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
            }
            let inv = 1.0 / lu[k * n + k];
            for i in k + 1..n {
                let l = lu[i * n + k] * inv;
                if l != 0.0 {
                    lu[i * n + k] = l;
                    for j in k + 1..n {
                        lu[i * n + j] -= l * lu[k * n + j];
                    }
                }
            }
        }
        let jpiv: Vec<usize> = (0..n).collect();
        Ok(Self::pack(n, lu, ipiv, jpiv))
    }

    /// Compresses the eliminated working buffer into the packed factors.
    fn pack(n: usize, lu: Vec<f64>, ipiv: Vec<usize>, jpiv: Vec<usize>) -> Self {
        let (l, u, u_diag) = SparseTriangle::split_dense(n, &lu);
        LuFactors {
            n,
            l,
            u,
            u_diag,
            ipiv,
            jpiv,
        }
    }

    /// Factorises the `n × n` row-major matrix `a` with Markowitz-ordered
    /// pivoting: at each elimination step, among the candidates whose
    /// magnitude is at least [`MARKOWITZ_THRESHOLD`] of their column's
    /// largest active entry, pick the one minimising the Markowitz count
    /// `(r_i − 1)(c_j − 1)`, breaking ties by larger magnitude and then by
    /// smaller indices (deterministic).  Both a row and a column permutation
    /// are recorded; the factor storage and the solve paths are shared with
    /// the partial-pivoting variant.
    ///
    /// Row/column non-zero counts of the active submatrix are maintained
    /// incrementally through the elimination, and the per-step search
    /// examines columns in increasing-count tiers with an early exit once no
    /// later tier can beat the best count found, so on the mostly-unit
    /// bases of the revised simplex the whole factorisation stays close to
    /// `O(n + nnz)` — unit columns are count-0 pivots found in the first
    /// tier and eliminated with zero fill.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if some elimination step finds no
    /// pivot above the tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n * n`.
    pub fn factorize_markowitz(n: usize, a: &[f64]) -> Result<Self, SingularMatrixError> {
        assert_eq!(a.len(), n * n, "factorize_markowitz: buffer is not n×n");
        let mut lu = a.to_vec();
        let mut ipiv = vec![0usize; n];
        let mut jpiv = vec![0usize; n];
        // Non-zero counts of the *active* submatrix (rows/cols ≥ current k).
        let mut row_count = vec![0usize; n];
        let mut col_count = vec![0usize; n];
        for i in 0..n {
            for j in 0..n {
                if lu[i * n + j] != 0.0 {
                    row_count[i] += 1;
                    col_count[j] += 1;
                }
            }
        }
        let mut buckets = ColumnBuckets::new(&col_count);
        for k in 0..n {
            // ---- Pivot search: columns in increasing-count tiers, read
            // straight off the count buckets (an empty tier costs O(1)
            // instead of the former O(n) rescan of every column).
            // best = (markowitz_cost, |value|, row, col)
            let mut best: Option<(usize, f64, usize, usize)> = None;
            let mut examined_cols = 0usize;
            'tiers: for c in 1..=(n - k) {
                if let Some((cost, ..)) = best {
                    // A column with count c yields cost ≥ (c − 1)·(r − 1)
                    // with r ≥ 1; only the (c − 1)² lower bound is usable
                    // once every row of the tier could still be a singleton,
                    // so the conventional tier cut-off is (c − 1)².
                    if cost <= (c - 1) * (c - 1) {
                        break;
                    }
                }
                for idx in 0..buckets.tier(c).len() {
                    let j = buckets.tier(c)[idx];
                    // One pass for the column max, one for the candidates.
                    let mut col_max = 0.0f64;
                    for i in k..n {
                        col_max = col_max.max(lu[i * n + j].abs());
                    }
                    if col_max <= PIVOT_TOL {
                        continue;
                    }
                    let accept = (MARKOWITZ_THRESHOLD * col_max).max(PIVOT_TOL);
                    let mut found_candidate = false;
                    for i in k..n {
                        let v = lu[i * n + j].abs();
                        if v < accept {
                            continue;
                        }
                        found_candidate = true;
                        let cost = (row_count[i] - 1) * (c - 1);
                        let better = match best {
                            None => true,
                            Some((bc, bv, bi, bj)) => {
                                cost < bc
                                    || (cost == bc && v > bv)
                                    || (cost == bc && v == bv && (j, i) < (bj, bi))
                            }
                        };
                        if better {
                            best = Some((cost, v, i, j));
                        }
                    }
                    if found_candidate {
                        examined_cols += 1;
                        if best.is_some_and(|(cost, ..)| cost == 0)
                            || examined_cols >= MARKOWITZ_SEARCH_COLS
                        {
                            break 'tiers;
                        }
                    }
                }
            }
            let Some((_, _, p, q)) = best else {
                return Err(SingularMatrixError { column: k });
            };
            // ---- Swap the pivot into place (rows p↔k, columns q↔k), with
            // the counts following their rows/columns.  The pivot column
            // leaves the buckets (it is eliminated); if a column swap
            // happens, the column displaced from position k re-registers
            // under its (unchanged) count at its new index q.
            ipiv[k] = p;
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                row_count.swap(k, p);
            }
            jpiv[k] = q;
            buckets.remove(q, col_count[q]);
            if q != k {
                buckets.remove(k, col_count[k]);
                for i in 0..n {
                    lu.swap(i * n + k, i * n + q);
                }
                col_count.swap(k, q);
                buckets.insert(q, col_count[q]);
            }
            // ---- Retire the pivot row and column from the active counts.
            for j in k + 1..n {
                if lu[k * n + j] != 0.0 {
                    buckets.update(j, col_count[j], col_count[j] - 1);
                    col_count[j] -= 1;
                }
            }
            for i in k + 1..n {
                if lu[i * n + k] != 0.0 {
                    row_count[i] -= 1;
                }
            }
            // ---- Eliminate, tracking fill-in / cancellation.
            let inv = 1.0 / lu[k * n + k];
            for i in k + 1..n {
                let l = lu[i * n + k] * inv;
                if l != 0.0 {
                    lu[i * n + k] = l;
                    for j in k + 1..n {
                        let ukj = lu[k * n + j];
                        if ukj == 0.0 {
                            continue;
                        }
                        let old = lu[i * n + j];
                        let new = old - l * ukj;
                        if old == 0.0 && new != 0.0 {
                            row_count[i] += 1;
                            buckets.update(j, col_count[j], col_count[j] + 1);
                            col_count[j] += 1;
                        } else if old != 0.0 && new == 0.0 {
                            row_count[i] -= 1;
                            buckets.update(j, col_count[j], col_count[j] - 1);
                            col_count[j] -= 1;
                        }
                        lu[i * n + j] = new;
                    }
                }
            }
        }
        Ok(Self::pack(n, lu, ipiv, jpiv))
    }

    /// Factorises a square [`Matrix`].
    ///
    /// # Errors
    ///
    /// See [`LuFactors::factorize`].
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn factorize_matrix(a: &Matrix) -> Result<Self, SingularMatrixError> {
        assert_eq!(a.rows(), a.cols(), "factorize_matrix: matrix not square");
        Self::factorize(a.rows(), a.as_slice())
    }

    /// The dimension `n` of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored factor entries (`L` strict + `U` strict + `U`'s
    /// diagonal) — the fill-in measure the Markowitz ordering minimises.
    pub fn nnz(&self) -> usize {
        self.l.col_idx.len() + self.u.col_idx.len() + self.n
    }

    /// Solves `A x = b` in place: on entry `x` holds `b`, on exit the
    /// solution.
    ///
    /// Column-oriented with zero-skipping: the cost is proportional to the
    /// factor entries reachable from `b`'s non-zeros, not to `n²`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        let n = self.n;
        assert_eq!(x.len(), n, "solve_in_place: wrong vector length");
        // Apply the row permutation: x := P b.
        for k in 0..n {
            let p = self.ipiv[k];
            if p != k {
                x.swap(k, p);
            }
        }
        // Forward substitution with unit-diagonal L, column by column.
        for j in 0..n {
            let xj = x[j];
            if xj != 0.0 {
                self.l.axpy_col(j, xj, x);
            }
        }
        // Back substitution with U, column by column.
        for j in (0..n).rev() {
            let xj = x[j];
            if xj != 0.0 {
                let xj = xj / self.u_diag[j];
                x[j] = xj;
                self.u.axpy_col(j, xj, x);
            }
        }
        // Undo the column permutation: x := Q z (reverse swap order).
        for k in (0..n).rev() {
            let q = self.jpiv[k];
            if q != k {
                x.swap(k, q);
            }
        }
    }

    /// Solves `Aᵀ y = c` in place: on entry `x` holds `c`, on exit the
    /// solution.
    ///
    /// With `P A Q = L U` we have `Aᵀ = Q Uᵀ Lᵀ P`, so the solve applies
    /// `Qᵀ`, a forward substitution with `Uᵀ` (driven by `U`'s rows), a back
    /// substitution with `Lᵀ` (driven by `L`'s rows), and the inverse row
    /// permutation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn solve_transpose_in_place(&self, x: &mut [f64]) {
        let n = self.n;
        assert_eq!(x.len(), n, "solve_transpose_in_place: wrong vector length");
        // Apply the column permutation: x := Qᵀ c (forward swap order).
        for k in 0..n {
            let q = self.jpiv[k];
            if q != k {
                x.swap(k, q);
            }
        }
        // Forward substitution with Uᵀ (lower-triangular with U's diagonal):
        // column j of Uᵀ is row j of U.
        for j in 0..n {
            // An exact zero stays zero (0 / diag = 0) and spreads nothing.
            let xj = x[j];
            if xj != 0.0 {
                let xj = xj / self.u_diag[j];
                x[j] = xj;
                self.u.axpy_row(j, xj, x);
            }
        }
        // Back substitution with Lᵀ (unit-diagonal upper-triangular):
        // column j of Lᵀ is row j of L.
        for j in (0..n).rev() {
            let xj = x[j];
            if xj != 0.0 {
                self.l.axpy_row(j, xj, x);
            }
        }
        // Undo the permutation: y := Pᵀ x.
        for k in (0..n).rev() {
            let p = self.ipiv[k];
            if p != k {
                x.swap(k, p);
            }
        }
    }

    /// Solves `A x = b`, returning a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `Aᵀ y = c`, returning a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != self.dim()`.
    pub fn solve_transpose(&self, c: &[f64]) -> Vec<f64> {
        let mut y = c.to_vec();
        self.solve_transpose_in_place(&mut y);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b)
            .map(|(l, r)| (l - r).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn factorize_and_solve_small_system() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![4.0, -6.0, 0.0],
            vec![-2.0, 7.0, 2.0],
        ]);
        let lu = LuFactors::factorize_matrix(&a).unwrap();
        let b = vec![5.0, -2.0, 9.0];
        let x = lu.solve(&b);
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn solve_needs_row_exchanges() {
        // Zero on the leading diagonal forces a pivot swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let lu = LuFactors::factorize_matrix(&a).unwrap();
        assert_eq!(lu.solve(&[3.0, 4.0]), vec![4.0, 3.0]);
    }

    #[test]
    fn transpose_solve_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.0],
            vec![0.0, 3.0, 4.0],
            vec![5.0, 0.0, 6.0],
        ]);
        let lu = LuFactors::factorize_matrix(&a).unwrap();
        let c = vec![1.0, -2.0, 0.5];
        let y = lu.solve_transpose(&c);
        let at = a.transpose();
        assert!(residual(&at, &y, &c) < 1e-12);
    }

    #[test]
    fn random_dense_systems_round_trip() {
        // Deterministic pseudo-random matrix; checks both solve directions.
        let n = 12;
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a = Matrix::from_fn(n, n, |_, _| next());
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let lu = LuFactors::factorize_matrix(&a).unwrap();
        assert!(residual(&a, &lu.solve(&b), &b) < 1e-9);
        assert!(residual(&a.transpose(), &lu.solve_transpose(&b), &b) < 1e-9);
    }

    #[test]
    fn sparse_simplex_basis_round_trips() {
        // The shape that matters: a mostly-unit basis with a few structural
        // columns scattered in, solved against sparse right-hand sides.
        let n = 16;
        let mut a = Matrix::identity(n);
        a[(3, 5)] = 2.0;
        a[(9, 5)] = -1.0;
        a[(5, 5)] = 0.5;
        a[(12, 2)] = 4.0;
        a[(2, 2)] = 0.0; // forces a pivot exchange on column 2 ...
        a[(2, 12)] = 1.0; // ... while row 2 keeps a pivot partner
        a[(0, 2)] = 1.0;
        let lu = LuFactors::factorize_matrix(&a).unwrap();
        let mut b = vec![0.0; n];
        b[5] = 3.0;
        b[2] = -1.0;
        assert!(residual(&a, &lu.solve(&b), &b) < 1e-12);
        assert!(residual(&a.transpose(), &lu.solve_transpose(&b), &b) < 1e-12);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let err = LuFactors::factorize_matrix(&a).unwrap_err();
        assert_eq!(err.column, 1);
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn markowitz_solves_match_partial_pivoting() {
        // Dense deterministic system: both orderings must solve it, in both
        // directions, to the same answer.
        let n = 10;
        let mut seed = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a = Matrix::from_fn(n, n, |_, _| next());
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let pp = LuFactors::factorize_matrix(&a).unwrap();
        let mk = LuFactors::factorize_markowitz(n, a.as_slice()).unwrap();
        assert!(residual(&a, &mk.solve(&b), &b) < 1e-9);
        assert!(residual(&a.transpose(), &mk.solve_transpose(&b), &b) < 1e-9);
        for (x, y) in pp.solve(&b).iter().zip(mk.solve(&b)) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn markowitz_prefers_sparse_pivots_on_arrowhead() {
        // The classic fill-in example: an arrowhead matrix with the dense
        // row/column first.  Partial pivoting pivots on the dense corner and
        // fills the whole matrix; Markowitz eliminates the sparse tail first
        // and produces no fill at all.
        let n = 12;
        let mut a = Matrix::identity(n);
        for k in 1..n {
            a[(0, k)] = 1.0;
            a[(k, 0)] = 1.0;
        }
        a[(0, 0)] = 4.0; // keep the matrix nonsingular and well-conditioned
        let pp = LuFactors::factorize_matrix(&a).unwrap();
        let mk = LuFactors::factorize_markowitz(n, a.as_slice()).unwrap();
        assert!(
            mk.nnz() < pp.nnz(),
            "markowitz fill {} not below partial-pivoting fill {}",
            mk.nnz(),
            pp.nnz()
        );
        // And it still solves the system.
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        assert!(residual(&a, &mk.solve(&b), &b) < 1e-9);
        assert!(residual(&a.transpose(), &mk.solve_transpose(&b), &b) < 1e-9);
    }

    #[test]
    fn markowitz_simplex_basis_round_trips() {
        // Mostly-unit basis with structural columns scattered in — the
        // revised simplex shape.  Unit columns are Markowitz count 0 and
        // must be pivoted without fill.
        let n = 16;
        let mut a = Matrix::identity(n);
        a[(3, 5)] = 2.0;
        a[(9, 5)] = -1.0;
        a[(5, 5)] = 0.5;
        a[(12, 2)] = 4.0;
        a[(2, 2)] = 0.0;
        a[(2, 12)] = 1.0;
        a[(0, 2)] = 1.0;
        let mk = LuFactors::factorize_markowitz(n, a.as_slice()).unwrap();
        let mut b = vec![0.0; n];
        b[5] = 3.0;
        b[2] = -1.0;
        assert!(residual(&a, &mk.solve(&b), &b) < 1e-12);
        assert!(residual(&a.transpose(), &mk.solve_transpose(&b), &b) < 1e-12);
    }

    #[test]
    fn markowitz_rejects_singular_matrices() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(LuFactors::factorize_markowitz(2, a.as_slice()).is_err());
        let zero = vec![0.0; 9];
        let err = LuFactors::factorize_markowitz(3, &zero).unwrap_err();
        assert_eq!(err.column, 0);
    }

    #[test]
    fn split_dense_matches_per_triangle_extraction() {
        // The fused two-pass pack must agree exactly with the reference
        // single-triangle extraction on an asymmetric pattern.
        let n = 6;
        let mut dense = vec![0.0; n * n];
        let entries = [
            (0usize, 0usize, 2.0),
            (1, 0, -1.0),
            (3, 0, 0.5),
            (1, 1, 3.0),
            (0, 2, 4.0),
            (2, 2, 1.0),
            (5, 2, -2.0),
            (2, 4, 7.0),
            (3, 3, -1.5),
            (4, 4, 2.5),
            (5, 5, 1.0),
            (4, 5, 6.0),
        ];
        for (i, j, v) in entries {
            dense[i * n + j] = v;
        }
        let (l, u, u_diag) = SparseTriangle::split_dense(n, &dense);
        let l_ref = SparseTriangle::from_dense(n, &dense, true);
        let u_ref = SparseTriangle::from_dense(n, &dense, false);
        for (got, want) in [(&l, &l_ref), (&u, &u_ref)] {
            assert_eq!(got.col_ptr, want.col_ptr);
            assert_eq!(got.col_idx, want.col_idx);
            assert_eq!(got.col_val, want.col_val);
            assert_eq!(got.row_ptr, want.row_ptr);
            assert_eq!(got.row_idx, want.row_idx);
            assert_eq!(got.row_val, want.row_val);
        }
        let want_diag: Vec<f64> = (0..n).map(|i| dense[i * n + i]).collect();
        assert_eq!(u_diag, want_diag);
    }

    #[test]
    fn identity_factorisation_is_trivial() {
        let lu = LuFactors::factorize_matrix(&Matrix::identity(4)).unwrap();
        assert_eq!(lu.dim(), 4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(lu.solve(&b), b);
        assert_eq!(lu.solve_transpose(&b), b);
    }
}
