//! LU factorisation with partial pivoting and sparsity-exploiting solves.
//!
//! The revised simplex keeps its basis matrix `B` factorised as `P A = L U`
//! (unit lower-triangular `L`, upper-triangular `U`, row permutation `P`) so
//! that the two linear systems of every pivot — FTRAN (`B x = a`) and BTRAN
//! (`Bᵀ y = c`) — cost triangular solves instead of a fresh elimination.
//!
//! Simplex bases are overwhelmingly sparse (most basic columns are unit
//! slack columns), so after the dense elimination the factors are
//! *compressed*: `L` and `U` are stored as per-column and per-row non-zero
//! lists, and the solves are column-oriented with zero-skipping — a column
//! whose solution component is zero is never touched.  That makes each
//! solve `O(nnz reached)` rather than `O(n²)`, which is what turns the
//! revised simplex's per-pivot cost into "output-sensitive" work on the
//! block-sparse repair LPs.

use crate::Matrix;

/// Error returned when the matrix handed to [`LuFactors::factorize`] is
/// singular (or numerically indistinguishable from singular).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrixError {
    /// The elimination column at which no acceptable pivot was found.
    pub column: usize,
}

impl std::fmt::Display for SingularMatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is singular: no pivot in elimination column {}",
            self.column
        )
    }
}

impl std::error::Error for SingularMatrixError {}

/// Pivots whose magnitude falls below this are treated as zero.
const PIVOT_TOL: f64 = 1e-12;

/// A triangular factor compressed by both columns and rows (strict part
/// only; diagonals are stored separately or implied), in flat CSR/CSC-style
/// arrays so a refactorisation costs a handful of allocations, not `O(n)`.
#[derive(Debug, Clone, Default)]
struct SparseTriangle {
    col_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    col_val: Vec<f64>,
    row_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    row_val: Vec<f64>,
}

impl SparseTriangle {
    fn from_dense(n: usize, dense: &[f64], lower: bool) -> Self {
        let strict_span = |i: usize| if lower { 0..i } else { i + 1..n };
        // First scan: counts -> prefix sums.
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_ptr = vec![0usize; n + 1];
        let mut nnz = 0usize;
        for i in 0..n {
            for j in strict_span(i) {
                if dense[i * n + j] != 0.0 {
                    col_ptr[j + 1] += 1;
                    row_ptr[i + 1] += 1;
                    nnz += 1;
                }
            }
        }
        for k in 0..n {
            col_ptr[k + 1] += col_ptr[k];
            row_ptr[k + 1] += row_ptr[k];
        }
        // Second scan: fill.  Row-major iteration appends in index order
        // within each column and row.
        let mut col_fill = col_ptr.clone();
        let mut col_idx = vec![0usize; nnz];
        let mut col_val = vec![0.0f64; nnz];
        let mut row_idx = vec![0usize; nnz];
        let mut row_val = vec![0.0f64; nnz];
        let mut row_fill = 0usize;
        for i in 0..n {
            for j in strict_span(i) {
                let v = dense[i * n + j];
                if v != 0.0 {
                    let c = col_fill[j];
                    col_fill[j] += 1;
                    col_idx[c] = i;
                    col_val[c] = v;
                    row_idx[row_fill] = j;
                    row_val[row_fill] = v;
                    row_fill += 1;
                }
            }
        }
        SparseTriangle {
            col_ptr,
            col_idx,
            col_val,
            row_ptr,
            row_idx,
            row_val,
        }
    }

    /// Subtracts `scale ×` column `j` (strict part) from `x`.
    #[inline]
    fn axpy_col(&self, j: usize, scale: f64, x: &mut [f64]) {
        for k in self.col_ptr[j]..self.col_ptr[j + 1] {
            x[self.col_idx[k]] -= self.col_val[k] * scale;
        }
    }

    /// Subtracts `scale ×` row `j` (strict part, read as a column of the
    /// transpose) from `x`.
    #[inline]
    fn axpy_row(&self, j: usize, scale: f64, x: &mut [f64]) {
        for k in self.row_ptr[j]..self.row_ptr[j + 1] {
            x[self.row_idx[k]] -= self.row_val[k] * scale;
        }
    }
}

/// A packed LU factorisation `P A = L U` of a square matrix.
///
/// The row permutation is stored as the sequence of swaps performed by
/// partial pivoting, LAPACK `ipiv`-style; the triangular factors are kept
/// as strict-part non-zero lists plus `U`'s diagonal.
///
/// # Example
///
/// ```
/// use prdnn_linalg::{LuFactors, Matrix};
///
/// let a = Matrix::from_rows(&[vec![0.0, 2.0], vec![3.0, 1.0]]);
/// let lu = LuFactors::factorize_matrix(&a).unwrap();
/// let x = lu.solve(&[4.0, 5.0]);
/// assert!((a.matvec(&x)[0] - 4.0).abs() < 1e-12);
/// assert!((a.matvec(&x)[1] - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Strict lower factor `L` (unit diagonal implied).
    l: SparseTriangle,
    /// Strict upper part of `U`.
    u: SparseTriangle,
    /// Diagonal of `U`.
    u_diag: Vec<f64>,
    /// `ipiv[k]` is the row swapped with row `k` at elimination step `k`.
    ipiv: Vec<usize>,
}

impl LuFactors {
    /// Factorises the `n × n` row-major matrix `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrixError`] if some elimination column has no
    /// pivot above the tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n * n`.
    pub fn factorize(n: usize, a: &[f64]) -> Result<Self, SingularMatrixError> {
        assert_eq!(a.len(), n * n, "factorize: buffer is not n×n");
        let mut lu = a.to_vec();
        let mut ipiv = vec![0usize; n];
        for k in 0..n {
            // Partial pivoting: bring the largest remaining entry of column
            // k onto the diagonal.
            let mut p = k;
            let mut best = lu[k * n + k].abs();
            for i in k + 1..n {
                let v = lu[i * n + k].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= PIVOT_TOL {
                return Err(SingularMatrixError { column: k });
            }
            ipiv[k] = p;
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
            }
            let inv = 1.0 / lu[k * n + k];
            for i in k + 1..n {
                let l = lu[i * n + k] * inv;
                if l != 0.0 {
                    lu[i * n + k] = l;
                    for j in k + 1..n {
                        lu[i * n + j] -= l * lu[k * n + j];
                    }
                }
            }
        }
        let u_diag: Vec<f64> = (0..n).map(|i| lu[i * n + i]).collect();
        Ok(LuFactors {
            n,
            l: SparseTriangle::from_dense(n, &lu, true),
            u: SparseTriangle::from_dense(n, &lu, false),
            u_diag,
            ipiv,
        })
    }

    /// Factorises a square [`Matrix`].
    ///
    /// # Errors
    ///
    /// See [`LuFactors::factorize`].
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn factorize_matrix(a: &Matrix) -> Result<Self, SingularMatrixError> {
        assert_eq!(a.rows(), a.cols(), "factorize_matrix: matrix not square");
        Self::factorize(a.rows(), a.as_slice())
    }

    /// The dimension `n` of the factorised matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` in place: on entry `x` holds `b`, on exit the
    /// solution.
    ///
    /// Column-oriented with zero-skipping: the cost is proportional to the
    /// factor entries reachable from `b`'s non-zeros, not to `n²`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn solve_in_place(&self, x: &mut [f64]) {
        let n = self.n;
        assert_eq!(x.len(), n, "solve_in_place: wrong vector length");
        // Apply the row permutation: x := P b.
        for k in 0..n {
            let p = self.ipiv[k];
            if p != k {
                x.swap(k, p);
            }
        }
        // Forward substitution with unit-diagonal L, column by column.
        for j in 0..n {
            let xj = x[j];
            if xj != 0.0 {
                self.l.axpy_col(j, xj, x);
            }
        }
        // Back substitution with U, column by column.
        for j in (0..n).rev() {
            let xj = x[j];
            if xj != 0.0 {
                let xj = xj / self.u_diag[j];
                x[j] = xj;
                self.u.axpy_col(j, xj, x);
            }
        }
    }

    /// Solves `Aᵀ y = c` in place: on entry `x` holds `c`, on exit the
    /// solution.
    ///
    /// With `P A = L U` we have `Aᵀ = Uᵀ Lᵀ P`, so the solve is a forward
    /// substitution with `Uᵀ` (driven by `U`'s rows), a back substitution
    /// with `Lᵀ` (driven by `L`'s rows), and the inverse permutation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn solve_transpose_in_place(&self, x: &mut [f64]) {
        let n = self.n;
        assert_eq!(x.len(), n, "solve_transpose_in_place: wrong vector length");
        // Forward substitution with Uᵀ (lower-triangular with U's diagonal):
        // column j of Uᵀ is row j of U.
        for j in 0..n {
            // An exact zero stays zero (0 / diag = 0) and spreads nothing.
            let xj = x[j];
            if xj != 0.0 {
                let xj = xj / self.u_diag[j];
                x[j] = xj;
                self.u.axpy_row(j, xj, x);
            }
        }
        // Back substitution with Lᵀ (unit-diagonal upper-triangular):
        // column j of Lᵀ is row j of L.
        for j in (0..n).rev() {
            let xj = x[j];
            if xj != 0.0 {
                self.l.axpy_row(j, xj, x);
            }
        }
        // Undo the permutation: y := Pᵀ x.
        for k in (0..n).rev() {
            let p = self.ipiv[k];
            if p != k {
                x.swap(k, p);
            }
        }
    }

    /// Solves `A x = b`, returning a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solves `Aᵀ y = c`, returning a fresh vector.
    ///
    /// # Panics
    ///
    /// Panics if `c.len() != self.dim()`.
    pub fn solve_transpose(&self, c: &[f64]) -> Vec<f64> {
        let mut y = c.to_vec();
        self.solve_transpose_in_place(&mut y);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b)
            .map(|(l, r)| (l - r).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn factorize_and_solve_small_system() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![4.0, -6.0, 0.0],
            vec![-2.0, 7.0, 2.0],
        ]);
        let lu = LuFactors::factorize_matrix(&a).unwrap();
        let b = vec![5.0, -2.0, 9.0];
        let x = lu.solve(&b);
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn solve_needs_row_exchanges() {
        // Zero on the leading diagonal forces a pivot swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let lu = LuFactors::factorize_matrix(&a).unwrap();
        assert_eq!(lu.solve(&[3.0, 4.0]), vec![4.0, 3.0]);
    }

    #[test]
    fn transpose_solve_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.0],
            vec![0.0, 3.0, 4.0],
            vec![5.0, 0.0, 6.0],
        ]);
        let lu = LuFactors::factorize_matrix(&a).unwrap();
        let c = vec![1.0, -2.0, 0.5];
        let y = lu.solve_transpose(&c);
        let at = a.transpose();
        assert!(residual(&at, &y, &c) < 1e-12);
    }

    #[test]
    fn random_dense_systems_round_trip() {
        // Deterministic pseudo-random matrix; checks both solve directions.
        let n = 12;
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let a = Matrix::from_fn(n, n, |_, _| next());
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let lu = LuFactors::factorize_matrix(&a).unwrap();
        assert!(residual(&a, &lu.solve(&b), &b) < 1e-9);
        assert!(residual(&a.transpose(), &lu.solve_transpose(&b), &b) < 1e-9);
    }

    #[test]
    fn sparse_simplex_basis_round_trips() {
        // The shape that matters: a mostly-unit basis with a few structural
        // columns scattered in, solved against sparse right-hand sides.
        let n = 16;
        let mut a = Matrix::identity(n);
        a[(3, 5)] = 2.0;
        a[(9, 5)] = -1.0;
        a[(5, 5)] = 0.5;
        a[(12, 2)] = 4.0;
        a[(2, 2)] = 0.0; // forces a pivot exchange on column 2 ...
        a[(2, 12)] = 1.0; // ... while row 2 keeps a pivot partner
        a[(0, 2)] = 1.0;
        let lu = LuFactors::factorize_matrix(&a).unwrap();
        let mut b = vec![0.0; n];
        b[5] = 3.0;
        b[2] = -1.0;
        assert!(residual(&a, &lu.solve(&b), &b) < 1e-12);
        assert!(residual(&a.transpose(), &lu.solve_transpose(&b), &b) < 1e-12);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let err = LuFactors::factorize_matrix(&a).unwrap_err();
        assert_eq!(err.column, 1);
        assert!(err.to_string().contains("singular"));
    }

    #[test]
    fn identity_factorisation_is_trivial() {
        let lu = LuFactors::factorize_matrix(&Matrix::identity(4)).unwrap();
        assert_eq!(lu.dim(), 4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(lu.solve(&b), b);
        assert_eq!(lu.solve_transpose(&b), b);
    }
}
