//! Property-based tests for the dense linear algebra substrate.

use prdnn_linalg::{approx_eq, approx_eq_slice, vector, Matrix};
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), -10.0..10.0f64]
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(small_f64(), rows * cols)
        .prop_map(move |data| Matrix::from_flat(rows, cols, data))
}

fn vec_of(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(small_f64(), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(approx_eq_slice(left.as_slice(), right.as_slice(), 1e-7));
    }

    #[test]
    fn matvec_distributes_over_vector_add(a in matrix(4, 3), x in vec_of(3), y in vec_of(3)) {
        let lhs = a.matvec(&vector::add(&x, &y));
        let rhs = vector::add(&a.matvec(&x), &a.matvec(&y));
        prop_assert!(approx_eq_slice(&lhs, &rhs, 1e-8));
    }

    #[test]
    fn transpose_is_involutive(a in matrix(4, 6)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_matvec(a in matrix(3, 4), x in vec_of(4), y in vec_of(3)) {
        // y^T (A x) == (A^T y)^T x
        let lhs = vector::dot(&y, &a.matvec(&x));
        let rhs = vector::dot(&a.transpose().matvec(&y), &x);
        prop_assert!(approx_eq(lhs, rhs, 1e-7));
    }

    #[test]
    fn norm_triangle_inequality(x in vec_of(6), y in vec_of(6)) {
        let sum = vector::add(&x, &y);
        prop_assert!(vector::norm_l1(&sum) <= vector::norm_l1(&x) + vector::norm_l1(&y) + 1e-9);
        prop_assert!(vector::norm_linf(&sum) <= vector::norm_linf(&x) + vector::norm_linf(&y) + 1e-9);
        prop_assert!(vector::norm_l2(&sum) <= vector::norm_l2(&x) + vector::norm_l2(&y) + 1e-9);
    }

    #[test]
    fn argmax_is_maximal(x in vec_of(8)) {
        let i = vector::argmax(&x);
        prop_assert!(x.iter().all(|&v| v <= x[i]));
    }

    #[test]
    fn identity_is_neutral(a in matrix(4, 4)) {
        let i = Matrix::identity(4);
        prop_assert!(approx_eq_slice(a.matmul(&i).as_slice(), a.as_slice(), 1e-12));
        prop_assert!(approx_eq_slice(i.matmul(&a).as_slice(), a.as_slice(), 1e-12));
    }

    #[test]
    fn scale_is_linear(a in matrix(3, 3), s in -5.0..5.0f64, x in vec_of(3)) {
        let lhs = a.scale(s).matvec(&x);
        let rhs = vector::scale(&a.matvec(&x), s);
        prop_assert!(approx_eq_slice(&lhs, &rhs, 1e-8));
    }
}
