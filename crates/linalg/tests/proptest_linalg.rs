//! Property-based tests for the dense linear algebra substrate and the
//! Markowitz-ordered sparse LU factorisation.

use prdnn_linalg::{approx_eq, approx_eq_slice, vector, LuFactors, Matrix};
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), -10.0..10.0f64]
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(small_f64(), rows * cols)
        .prop_map(move |data| Matrix::from_flat(rows, cols, data))
}

fn vec_of(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(small_f64(), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_is_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(approx_eq_slice(left.as_slice(), right.as_slice(), 1e-7));
    }

    #[test]
    fn matvec_distributes_over_vector_add(a in matrix(4, 3), x in vec_of(3), y in vec_of(3)) {
        let lhs = a.matvec(&vector::add(&x, &y));
        let rhs = vector::add(&a.matvec(&x), &a.matvec(&y));
        prop_assert!(approx_eq_slice(&lhs, &rhs, 1e-8));
    }

    #[test]
    fn transpose_is_involutive(a in matrix(4, 6)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_swaps_matvec(a in matrix(3, 4), x in vec_of(4), y in vec_of(3)) {
        // y^T (A x) == (A^T y)^T x
        let lhs = vector::dot(&y, &a.matvec(&x));
        let rhs = vector::dot(&a.transpose().matvec(&y), &x);
        prop_assert!(approx_eq(lhs, rhs, 1e-7));
    }

    #[test]
    fn norm_triangle_inequality(x in vec_of(6), y in vec_of(6)) {
        let sum = vector::add(&x, &y);
        prop_assert!(vector::norm_l1(&sum) <= vector::norm_l1(&x) + vector::norm_l1(&y) + 1e-9);
        prop_assert!(vector::norm_linf(&sum) <= vector::norm_linf(&x) + vector::norm_linf(&y) + 1e-9);
        prop_assert!(vector::norm_l2(&sum) <= vector::norm_l2(&x) + vector::norm_l2(&y) + 1e-9);
    }

    #[test]
    fn argmax_is_maximal(x in vec_of(8)) {
        let i = vector::argmax(&x);
        prop_assert!(x.iter().all(|&v| v <= x[i]));
    }

    #[test]
    fn identity_is_neutral(a in matrix(4, 4)) {
        let i = Matrix::identity(4);
        prop_assert!(approx_eq_slice(a.matmul(&i).as_slice(), a.as_slice(), 1e-12));
        prop_assert!(approx_eq_slice(i.matmul(&a).as_slice(), a.as_slice(), 1e-12));
    }

    #[test]
    fn scale_is_linear(a in matrix(3, 3), s in -5.0..5.0f64, x in vec_of(3)) {
        let lhs = a.scale(s).matvec(&x);
        let rhs = vector::scale(&a.matvec(&x), s);
        prop_assert!(approx_eq_slice(&lhs, &rhs, 1e-8));
    }
}

// ---- Markowitz-ordered LU ------------------------------------------------

/// Random sparse-ish square matrices, kept invertible by a dominant
/// diagonal: off-diagonal entries are zero with high probability, and the
/// diagonal exceeds the absolute row sum.
fn sparse_invertible(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(
        prop_oneof![Just(0.0), Just(0.0), Just(0.0), -2.0..2.0f64],
        n * n,
    )
    .prop_map(move |data| {
        let mut m = Matrix::from_flat(n, n, data);
        for i in 0..n {
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            // Keep the sign structure interesting: alternate diagonal signs.
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            m[(i, i)] = sign * (row_sum + 1.0 + (i as f64) * 0.125);
        }
        m
    })
}

fn max_residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    a.matvec(x)
        .iter()
        .zip(b)
        .map(|(l, r)| (l - r).abs())
        .fold(0.0, f64::max)
}

/// The mostly-unit simplex-basis pattern: identity columns with one
/// block-sparse structural stripe.
fn block_sparse_basis(n: usize, block: usize, vals: &[f64]) -> Matrix {
    let mut a = Matrix::identity(n);
    let mut k = 0;
    for c in 0..block {
        for r in 0..block {
            // A dense leading block plus its coupling to later unit rows.
            a[(r, c)] += vals[k % vals.len()];
            k += 1;
        }
        a[(block + c, c)] = vals[(k + c) % vals.len()];
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn markowitz_factor_solve_round_trips(a in sparse_invertible(10), b in vec_of(10)) {
        let lu = LuFactors::factorize_markowitz(10, a.as_slice())
            .expect("diagonally dominant matrices are invertible");
        prop_assert!(max_residual(&a, &lu.solve(&b), &b) < 1e-8);
        prop_assert!(max_residual(&a.transpose(), &lu.solve_transpose(&b), &b) < 1e-8);
        // Agreement with the partial-pivoting reference on both directions.
        let pp = LuFactors::factorize_matrix(&a).unwrap();
        for (x, y) in pp.solve(&b).iter().zip(lu.solve(&b)) {
            prop_assert!((x - y).abs() < 1e-8, "solutions diverge: {x} vs {y}");
        }
    }

    #[test]
    fn markowitz_fill_in_bounded_on_block_sparse_pattern(
        vals in prop::collection::vec(prop_oneof![-2.0..-0.25f64, 0.25..2.0f64], 24),
    ) {
        // The simplex-basis shape the ordering exists for: fill-in must
        // never exceed the partial-pivoting fill by more than 1.5× (on this
        // pattern Markowitz usually produces strictly less).
        let a = block_sparse_basis(24, 6, &vals);
        let mk = match LuFactors::factorize_markowitz(24, a.as_slice()) {
            Ok(f) => f,
            // A random draw can make the leading block singular; partial
            // pivoting must then reject it too.
            Err(_) => {
                prop_assert!(LuFactors::factorize_matrix(&a).is_err());
                return;
            }
        };
        let pp = LuFactors::factorize_matrix(&a).expect("markowitz succeeded, so must reference");
        prop_assert!(
            (mk.nnz() as f64) <= 1.5 * (pp.nnz() as f64),
            "markowitz fill {} vs partial-pivoting fill {}",
            mk.nnz(),
            pp.nnz()
        );
        // And the factors still solve the system.
        let b: Vec<f64> = (0..24).map(|i| (i as f64) * 0.5 - 3.0).collect();
        prop_assert!(max_residual(&a, &mk.solve(&b), &b) < 1e-7);
        prop_assert!(max_residual(&a.transpose(), &mk.solve_transpose(&b), &b) < 1e-7);
    }

    #[test]
    fn markowitz_rejects_singular_matrices(a in sparse_invertible(6), col in 0usize..6) {
        // Zeroing a whole column makes the matrix exactly singular.
        let mut m = a;
        for i in 0..6 {
            m[(i, col)] = 0.0;
        }
        prop_assert!(LuFactors::factorize_markowitz(6, m.as_slice()).is_err());
        // A rank-1 duplicate-row matrix is rejected as well.
        let mut dup = m;
        for j in 0..6 {
            let v = dup[(0, j)];
            for i in 1..6 {
                dup[(i, j)] = v * (i as f64 + 1.0);
            }
        }
        prop_assert!(LuFactors::factorize_markowitz(6, dup.as_slice()).is_err());
    }
}

/// Fill-in regression pinning the count-bucketed Markowitz tier search on
/// the canonical simplex-basis fixture: the 36 unit columns are count-0/1
/// pivots that must be eliminated with zero fill, so the factor nnz is
/// exactly the fixture's own nnz — any regression in the bucket
/// bookkeeping (a stale tier, a missed count move) shows up as extra fill
/// or a changed pivot order here.
#[test]
fn markowitz_fill_regression_on_fixed_block_sparse_fixture() {
    let vals: Vec<f64> = (0..24).map(|k| 0.5 + 0.07 * k as f64).collect();
    let a = block_sparse_basis(48, 6, &vals);
    let fixture_nnz = a.as_slice().iter().filter(|&&x| x != 0.0).count();
    let mk = LuFactors::factorize_markowitz(48, a.as_slice()).expect("fixture is invertible");
    assert_eq!(
        (mk.nnz(), fixture_nnz),
        (84, 84),
        "markowitz fill on the pinned fixture changed"
    );
    // The ordering must never do worse than plain partial pivoting here.
    let pp = LuFactors::factorize_matrix(&a).unwrap();
    assert!(mk.nnz() <= pp.nnz(), "mk {} vs pp {}", mk.nnz(), pp.nnz());
    let b: Vec<f64> = (0..48).map(|i| (i as f64) * 0.25 - 6.0).collect();
    assert!(max_residual(&a, &mk.solve(&b), &b) < 1e-8);
    assert!(max_residual(&a.transpose(), &mk.solve_transpose(&b), &b) < 1e-8);
}
