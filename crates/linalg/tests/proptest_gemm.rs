//! Differential properties of the blocked GEMM kernels against the naive
//! triple-loop oracle.
//!
//! The contract is stronger than "numerically close": because the blocked
//! kernels never block in `k` (every output element is one ascending-`k`
//! register chain), `gemm_nn`, `gemm_nt`, `gemv` and `dot` are **exactly
//! bit-identical** to `gemm_naive` at every shape — including the shapes
//! that cross the naive/blocked dispatch threshold and the ragged edge
//! tiles that exercise zero-padding.  No `≤1e-12`-style relative tolerance
//! is needed anywhere; these tests compare raw `f64::to_bits`.

use prdnn_linalg::gemm;
use proptest::prelude::*;

fn entries() -> impl Strategy<Value = f64> {
    // Exact zeros and mixed magnitudes: zeros exercise the ±0.0 edge the
    // old zero-skipping matmul used to take, magnitudes exercise rounding.
    prop_oneof![Just(0.0), -10.0..10.0f64, -1e6..1e6f64]
}

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked `A·B` is bit-identical to the naive oracle, for shapes on
    /// both sides of the dispatch threshold (k up to 80 with m·n up to
    /// ~40·40 crosses it) and every edge-tile remainder mod MR/NR.
    #[test]
    fn gemm_nn_bits_equal_naive(
        m in 1usize..40,
        k in 1usize..80,
        n in 1usize..40,
        seed in prop::collection::vec(entries(), 40 * 80 + 80 * 40),
    ) {
        let a = &seed[..m * k];
        let b = &seed[seed.len() - k * n..];
        let mut c_naive = vec![f64::NAN; m * n];
        let mut c_blocked = vec![f64::NAN; m * n];
        gemm::gemm_naive(m, k, n, a, b, &mut c_naive);
        gemm::gemm_nn(m, k, n, a, b, &mut c_blocked);
        prop_assert!(bits_eq(&c_naive, &c_blocked), "({m},{k},{n})");
    }

    /// `A·Bᵀ` (the batch-major forward-pass shape) against the oracle on
    /// an explicitly transposed `B`.
    #[test]
    fn gemm_nt_bits_equal_naive_on_transpose(
        m in 1usize..40,
        k in 1usize..80,
        n in 1usize..40,
        seed in prop::collection::vec(entries(), 40 * 80 + 80 * 40),
    ) {
        let a = &seed[..m * k];
        let bt = &seed[seed.len() - n * k..];
        let b: Vec<f64> = (0..k * n).map(|i| bt[(i % n) * k + i / n]).collect();
        let mut c_naive = vec![f64::NAN; m * n];
        let mut c_nt = vec![f64::NAN; m * n];
        gemm::gemm_naive(m, k, n, a, &b, &mut c_naive);
        gemm::gemm_nt(m, k, n, a, bt, &mut c_nt);
        prop_assert!(bits_eq(&c_naive, &c_nt), "({m},{k},{n})");
    }

    /// The four-row matvec kernel against a per-row scalar dot, and the
    /// kernel `dot` against the textbook fold it replaced.
    #[test]
    fn gemv_and_dot_bits_equal_reference(
        m in 1usize..50,
        k in 1usize..120,
        seed in prop::collection::vec(entries(), 50 * 120 + 120),
    ) {
        let a = &seed[..m * k];
        let x = &seed[seed.len() - k..];
        let mut y = vec![f64::NAN; m];
        gemm::gemv(m, k, a, x, &mut y);
        for r in 0..m {
            let row = &a[r * k..(r + 1) * k];
            let reference: f64 = row.iter().zip(x).map(|(p, q)| p * q).sum();
            prop_assert_eq!(y[r].to_bits(), reference.to_bits(), "row {}", r);
            prop_assert_eq!(gemm::dot(row, x).to_bits(), reference.to_bits());
        }
    }
}
