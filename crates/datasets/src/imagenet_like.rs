//! A 9-class colour-texture image dataset and a small convolutional
//! classifier — the SqueezeNet/ImageNet stand-in for Task 1.
//!
//! Classes are the 3×3 combinations of a stripe orientation (horizontal,
//! vertical, diagonal) and a dominant colour channel (R, G, B), rendered as
//! `3 × 8 × 8` images with noise.  The reference classifier is a small CNN
//! (conv → maxpool → conv → maxpool → dense → dense) that exercises the same
//! layer types as SqueezeNet: convolutions, ReLUs, max pooling, and dense
//! layers.

use prdnn_nn::{
    sgd_train, Activation, Conv2dLayer, Dataset, Layer, Network, Pool2dLayer, TrainConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length.
pub const SIDE: usize = 8;
/// Number of colour channels.
pub const CHANNELS: usize = 3;
/// Number of pixels per image (`3 × 8 × 8`, flattened channel-major).
pub const PIXELS: usize = CHANNELS * SIDE * SIDE;
/// Number of object classes (stripe orientation × dominant channel).
pub const NUM_CLASSES: usize = 9;

/// Stripe orientation of a class.
fn orientation(class: usize) -> usize {
    class / 3
}

/// Dominant colour channel of a class.
fn dominant_channel(class: usize) -> usize {
    class % 3
}

/// Samples one image of class `class`.
///
/// # Panics
///
/// Panics if `class >= NUM_CLASSES`.
pub fn sample_image(class: usize, rng: &mut impl Rng) -> Vec<f64> {
    assert!(class < NUM_CLASSES, "class out of range");
    let orient = orientation(class);
    let dominant = dominant_channel(class);
    let phase = rng.gen_range(0..2);
    let mut image = vec![0.0; PIXELS];
    for ch in 0..CHANNELS {
        let base = if ch == dominant { 0.75 } else { 0.2 };
        for r in 0..SIDE {
            for c in 0..SIDE {
                let stripe_coord = match orient {
                    0 => r,
                    1 => c,
                    _ => r + c,
                };
                let stripe: f64 = if (stripe_coord + phase) % 2 == 0 {
                    0.2
                } else {
                    -0.1
                };
                let value: f64 = base + stripe + rng.gen_range(-0.06..0.06);
                image[(ch * SIDE + r) * SIDE + c] = value.clamp(0.0, 1.0);
            }
        }
    }
    image
}

/// Generates a balanced labelled dataset of `count` images.
pub fn generate(count: usize, rng: &mut impl Rng) -> Dataset {
    let mut inputs = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let class = i % NUM_CLASSES;
        inputs.push(sample_image(class, rng));
        labels.push(class);
    }
    Dataset::new(inputs, labels)
}

/// Builds the untrained reference CNN: conv(3→6) → maxpool → conv(6→8) →
/// maxpool → dense(32→20) → dense(20→9).
pub fn object_cnn(rng: &mut impl Rng) -> Network {
    let conv = |in_c: usize, out_c: usize, in_side: usize, rng: &mut dyn rand::RngCore| {
        let fan = (in_c * 9 + out_c * 9) as f64;
        let bound = (6.0 / fan).sqrt();
        Layer::Conv2d(Conv2dLayer {
            in_channels: in_c,
            in_height: in_side,
            in_width: in_side,
            out_channels: out_c,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
            weights: (0..out_c * in_c * 9)
                .map(|_| rng.gen_range(-bound..bound))
                .collect(),
            bias: vec![0.0; out_c],
            activation: Activation::Relu,
        })
    };
    let pool = |channels: usize, in_side: usize| {
        Layer::MaxPool2d(Pool2dLayer {
            channels,
            in_height: in_side,
            in_width: in_side,
            pool_h: 2,
            pool_w: 2,
            stride: 2,
        })
    };
    let dense = |inputs: usize, outputs: usize, act: Activation, rng: &mut dyn rand::RngCore| {
        let bound = (6.0 / (inputs + outputs) as f64).sqrt();
        Layer::dense(
            prdnn_linalg::Matrix::from_fn(outputs, inputs, |_, _| rng.gen_range(-bound..bound)),
            vec![0.0; outputs],
            act,
        )
    };
    Network::new(vec![
        conv(CHANNELS, 6, SIDE, rng),
        pool(6, SIDE),
        conv(6, 8, SIDE / 2, rng),
        pool(8, SIDE / 2),
        dense(8 * 2 * 2, 20, Activation::Relu, rng),
        dense(20, NUM_CLASSES, Activation::Identity, rng),
    ])
}

/// The object-recognition task: a trained CNN, its train split, and a
/// held-out validation split (the Task 1 *drawdown set*).
#[derive(Debug, Clone)]
pub struct ObjectTask {
    /// The trained CNN.
    pub network: Network,
    /// Training split.
    pub train: Dataset,
    /// Held-out validation split.
    pub validation: Dataset,
}

/// Trains the reference CNN on the synthetic object dataset.
///
/// Deterministic for a fixed `seed`.
pub fn object_task(seed: u64, train_size: usize, validation_size: usize) -> ObjectTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = generate(train_size, &mut rng);
    let validation = generate(validation_size, &mut rng);
    let mut network = object_cnn(&mut rng);
    let config = TrainConfig {
        learning_rate: 0.03,
        momentum: 0.9,
        batch_size: 16,
        epochs: 12,
        ..TrainConfig::default()
    };
    sgd_train(
        &mut network,
        &train.inputs,
        &train.labels,
        &config,
        &mut rng,
    );
    ObjectTask {
        network,
        train,
        validation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_have_the_right_shape_and_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for class in 0..NUM_CLASSES {
            let img = sample_image(class, &mut rng);
            assert_eq!(img.len(), PIXELS);
            assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn dominant_channel_is_brighter() {
        let mut rng = StdRng::seed_from_u64(5);
        for class in 0..NUM_CLASSES {
            let img = sample_image(class, &mut rng);
            let channel_mean = |ch: usize| -> f64 {
                (0..SIDE * SIDE)
                    .map(|i| img[ch * SIDE * SIDE + i])
                    .sum::<f64>()
                    / (SIDE * SIDE) as f64
            };
            let dom = dominant_channel(class);
            for ch in 0..CHANNELS {
                if ch != dom {
                    assert!(channel_mean(dom) > channel_mean(ch));
                }
            }
        }
    }

    #[test]
    fn cnn_shapes_chain() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = object_cnn(&mut rng);
        assert_eq!(net.input_dim(), PIXELS);
        assert_eq!(net.output_dim(), NUM_CLASSES);
        assert_eq!(net.repairable_layers(), vec![0, 2, 4, 5]);
        let mut rng2 = StdRng::seed_from_u64(7);
        let out = net.forward(&sample_image(0, &mut rng2));
        assert_eq!(out.len(), NUM_CLASSES);
    }

    #[test]
    fn trained_cnn_is_accurate_on_clean_data() {
        let task = object_task(11, 360, 180);
        let acc = task.validation.accuracy(&task.network);
        assert!(acc > 0.8, "validation accuracy too low: {acc}");
    }
}
