//! Synthetic evaluation workloads for the PRDNN reproduction.
//!
//! The paper evaluates on SqueezeNet/ImageNet + Natural Adversarial Examples
//! (Task 1), an MNIST MLP + MNIST-C fog corruption (Task 2), and the ACAS Xu
//! collision-avoidance network with safety property φ8 (Task 3).  None of
//! those artifacts ship with this repository, so this crate builds the
//! closest synthetic equivalents that exercise the *same code paths*
//! (see DESIGN.md, "Substitutions"):
//!
//! * [`digits`] — a procedurally generated 10-class 7×7 digit-glyph dataset
//!   and a 3-layer ReLU MLP classifier (the MNIST stand-in);
//! * [`corruptions`] — parametric fog (and other corruptions) so that a
//!   clean→foggy interpolation line exists for every image (the MNIST-C
//!   stand-in);
//! * [`imagenet_like`] — a 9-class colour-texture image dataset and a small
//!   convolutional classifier (the SqueezeNet/ImageNet stand-in);
//! * [`natural_adversarial`] — heavily distorted in-class images that the
//!   trained CNN misclassifies (the NAE stand-in);
//! * [`acas`] — a hand-written geometric collision-avoidance policy, an MLP
//!   distilled from it, and a φ8-like safety property with 2-D repair slices
//!   (the ACAS Xu stand-in).

//!
//! [`registry`] maps compact generator-spec strings (`"mlp:42:4x16x3"`,
//! `"digits:7:160:40"`) onto these builders so the serving layer's model
//! store can name its models' origins.

pub mod acas;
pub mod corruptions;
pub mod digits;
pub mod imagenet_like;
pub mod natural_adversarial;
pub mod registry;
