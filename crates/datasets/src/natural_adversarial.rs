//! The Natural Adversarial Examples stand-in for Task 1: heavily distorted
//! in-distribution images that the trained CNN misclassifies.

use crate::corruptions;
use crate::imagenet_like::{self, CHANNELS, NUM_CLASSES, SIDE};
use prdnn_nn::{Dataset, Network};
use rand::Rng;

/// Applies the "natural adversarial" distortion stack to an object image:
/// a large occlusion patch, reduced contrast, and strong pixel noise.
///
/// The distortions keep the class-defining structure partially visible (a
/// human-equivalent observer, i.e. the generating code, still knows the
/// label) but push the image far enough off the training distribution that
/// the CNN misclassifies a large fraction — mirroring the role of the NAE
/// dataset (18% SqueezeNet accuracy in the paper).
pub fn distort(image: &[f64], rng: &mut impl Rng) -> Vec<f64> {
    let top = rng.gen_range(0..SIDE / 2);
    let left = rng.gen_range(0..SIDE / 2);
    let occluded = corruptions::occlude(
        image,
        CHANNELS,
        SIDE,
        SIDE,
        top,
        left,
        SIDE / 2,
        rng.gen_range(0.0..1.0),
    );
    let flattened = corruptions::reduce_contrast(&occluded, 0.55);
    corruptions::noise(&flattened, 0.22, rng)
}

/// Generates a pool of distorted images that `network` *misclassifies*,
/// labelled with their true class.
///
/// Up to `max_attempts` candidate images are generated; the returned dataset
/// contains at most `count` misclassified ones (fewer if the network is too
/// robust, which does not happen for the reference CNN).
pub fn misclassified_pool(
    network: &Network,
    count: usize,
    max_attempts: usize,
    rng: &mut impl Rng,
) -> Dataset {
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    let mut attempts = 0;
    let mut class = 0;
    while inputs.len() < count && attempts < max_attempts {
        attempts += 1;
        class = (class + 1) % NUM_CLASSES;
        let clean = imagenet_like::sample_image(class, rng);
        let distorted = distort(&clean, rng);
        if network.classify(&distorted) != class {
            inputs.push(distorted);
            labels.push(class);
        }
    }
    Dataset::new(inputs, labels)
}

/// Generates a pool of distorted images regardless of how the network
/// classifies them (used as a *generalization* set: same distribution as the
/// repair pool but disjoint from it).
pub fn distorted_pool(count: usize, rng: &mut impl Rng) -> Dataset {
    let mut inputs = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let class = i % NUM_CLASSES;
        let clean = imagenet_like::sample_image(class, rng);
        inputs.push(distort(&clean, rng));
        labels.push(class);
    }
    Dataset::new(inputs, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distortion_preserves_shape_and_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let clean = imagenet_like::sample_image(3, &mut rng);
        let d = distort(&clean, &mut rng);
        assert_eq!(d.len(), clean.len());
        assert!(d.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert_ne!(d, clean);
    }

    #[test]
    fn misclassified_pool_is_actually_misclassified() {
        let task = imagenet_like::object_task(21, 270, 90);
        let mut rng = StdRng::seed_from_u64(2);
        let pool = misclassified_pool(&task.network, 30, 5000, &mut rng);
        assert!(
            !pool.is_empty(),
            "the distortions must fool the CNN at least sometimes"
        );
        assert_eq!(pool.accuracy(&task.network), 0.0);
    }

    #[test]
    fn distorted_pool_has_low_accuracy_like_nae() {
        // The NAE dataset has ~18% accuracy on SqueezeNet; our distorted pool
        // should similarly sit far below clean accuracy.
        let task = imagenet_like::object_task(22, 270, 90);
        let mut rng = StdRng::seed_from_u64(3);
        let pool = distorted_pool(120, &mut rng);
        let clean_acc = task.validation.accuracy(&task.network);
        let distorted_acc = pool.accuracy(&task.network);
        assert!(
            distorted_acc < clean_acc - 0.2,
            "distorted accuracy {distorted_acc} should be well below clean accuracy {clean_acc}"
        );
    }
}
