//! A procedurally generated 10-class digit-glyph dataset (the MNIST
//! stand-in for Task 2) and its reference MLP classifier.

use prdnn_nn::{sgd_train, Activation, Dataset, Network, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Image side length: digits are `SIDE × SIDE` grayscale images.
pub const SIDE: usize = 7;
/// Number of pixels per image.
pub const PIXELS: usize = SIDE * SIDE;
/// Number of digit classes.
pub const NUM_CLASSES: usize = 10;

/// Seven-segment-style 7×7 glyph prototypes for the ten digits.
const GLYPHS: [[&str; 7]; 10] = [
    [
        " ##### ", "##   ##", "##   ##", "##   ##", "##   ##", "##   ##", " ##### ",
    ], // 0
    [
        "   ##  ", "  ###  ", "   ##  ", "   ##  ", "   ##  ", "   ##  ", " ######",
    ], // 1
    [
        " ##### ", "##   ##", "     ##", "   ### ", "  ##   ", " ##    ", "#######",
    ], // 2
    [
        " ##### ", "##   ##", "     ##", "  #### ", "     ##", "##   ##", " ##### ",
    ], // 3
    [
        "##  ## ", "##  ## ", "##  ## ", "#######", "    ## ", "    ## ", "    ## ",
    ], // 4
    [
        "#######", "##     ", "###### ", "     ##", "     ##", "##   ##", " ##### ",
    ], // 5
    [
        " ##### ", "##     ", "##     ", "###### ", "##   ##", "##   ##", " ##### ",
    ], // 6
    [
        "#######", "     ##", "    ## ", "   ##  ", "  ##   ", "  ##   ", "  ##   ",
    ], // 7
    [
        " ##### ", "##   ##", "##   ##", " ##### ", "##   ##", "##   ##", " ##### ",
    ], // 8
    [
        " ##### ", "##   ##", "##   ##", " ######", "     ##", "     ##", " ##### ",
    ], // 9
];

/// Renders the clean prototype of digit `class` as a `PIXELS`-length image
/// with values in `[0, 1]`.
///
/// # Panics
///
/// Panics if `class >= NUM_CLASSES`.
pub fn prototype(class: usize) -> Vec<f64> {
    assert!(class < NUM_CLASSES, "digit class out of range");
    let mut image = vec![0.0; PIXELS];
    for (r, row) in GLYPHS[class].iter().enumerate() {
        for (c, ch) in row.chars().enumerate().take(SIDE) {
            if ch == '#' {
                image[r * SIDE + c] = 1.0;
            }
        }
    }
    image
}

/// Samples one digit image of class `class`: the prototype with a random
/// sub-pixel intensity, a small random shift, and additive noise.
pub fn sample_digit(class: usize, rng: &mut impl Rng) -> Vec<f64> {
    let base = prototype(class);
    let intensity = rng.gen_range(0.75..1.0);
    let (dy, dx) = (rng.gen_range(-1isize..=1), rng.gen_range(-1isize..=1));
    let mut image = vec![0.0; PIXELS];
    for r in 0..SIDE {
        for c in 0..SIDE {
            let (sr, sc) = (r as isize - dy, c as isize - dx);
            if sr >= 0 && sc >= 0 && (sr as usize) < SIDE && (sc as usize) < SIDE {
                image[r * SIDE + c] = base[sr as usize * SIDE + sc as usize] * intensity;
            }
        }
    }
    for px in image.iter_mut() {
        *px = (*px + rng.gen_range(-0.08..0.08)).clamp(0.0, 1.0);
    }
    image
}

/// Generates a balanced labelled dataset of `count` digit images.
pub fn generate(count: usize, rng: &mut impl Rng) -> Dataset {
    let mut inputs = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let class = i % NUM_CLASSES;
        inputs.push(sample_digit(class, rng));
        labels.push(class);
    }
    Dataset::new(inputs, labels)
}

/// The digit classification task: a trained "buggy" network plus its train
/// and test splits (the Task 2 starting point).
#[derive(Debug, Clone)]
pub struct DigitTask {
    /// The trained classifier (3 dense ReLU layers, identity logits).
    pub network: Network,
    /// Training split.
    pub train: Dataset,
    /// Held-out test split (the Task 2 *drawdown set*).
    pub test: Dataset,
}

/// Trains the reference digit MLP (the `ReLU-3-100`-style network of Task 2,
/// scaled to this dataset: layers `[49, 24, 24, 10]`).
///
/// Deterministic for a fixed `seed`.
pub fn digit_task(seed: u64, train_size: usize, test_size: usize) -> DigitTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = generate(train_size, &mut rng);
    let test = generate(test_size, &mut rng);
    let mut network = Network::mlp(&[PIXELS, 24, 24, NUM_CLASSES], Activation::Relu, &mut rng);
    let config = TrainConfig {
        learning_rate: 0.05,
        momentum: 0.9,
        batch_size: 16,
        epochs: 30,
        ..TrainConfig::default()
    };
    sgd_train(
        &mut network,
        &train.inputs,
        &train.labels,
        &config,
        &mut rng,
    );
    DigitTask {
        network,
        train,
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototypes_are_distinct() {
        for a in 0..NUM_CLASSES {
            for b in a + 1..NUM_CLASSES {
                assert_ne!(prototype(a), prototype(b), "classes {a} and {b} collide");
            }
        }
    }

    #[test]
    fn samples_are_valid_images() {
        let mut rng = StdRng::seed_from_u64(1);
        for class in 0..NUM_CLASSES {
            let img = sample_digit(class, &mut rng);
            assert_eq!(img.len(), PIXELS);
            assert!(img.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn generate_is_balanced() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = generate(100, &mut rng);
        assert_eq!(data.len(), 100);
        for class in 0..NUM_CLASSES {
            let count = data.labels.iter().filter(|&&l| l == class).count();
            assert_eq!(count, 10);
        }
    }

    #[test]
    fn trained_digit_classifier_is_accurate_on_clean_data() {
        let task = digit_task(7, 400, 200);
        let train_acc = task.train.accuracy(&task.network);
        let test_acc = task.test.accuracy(&task.network);
        assert!(train_acc > 0.9, "train accuracy too low: {train_acc}");
        assert!(test_acc > 0.85, "test accuracy too low: {test_acc}");
    }

    #[test]
    fn digit_task_is_deterministic() {
        let a = digit_task(5, 60, 20);
        let b = digit_task(5, 60, 20);
        assert_eq!(a.network, b.network);
        assert_eq!(a.train, b.train);
    }
}
