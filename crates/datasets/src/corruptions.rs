//! Image corruptions: fog (the MNIST-C stand-in) and the heavier
//! distortions used to build the natural-adversarial pool.

use rand::Rng;

/// Applies fog of strength `alpha ∈ [0, 1]` to a grayscale `height × width`
/// image.
///
/// The fog field is a vertical gradient of bright haze; `alpha = 0` returns
/// the clean image and `alpha = 1` is maximally foggy.  Because the
/// corruption is an affine interpolation in `alpha`, every image defines the
/// clean→foggy *line* used as the Task 2 polytope specification.
///
/// # Panics
///
/// Panics if `image.len() != height * width`.
pub fn fog(image: &[f64], height: usize, width: usize, alpha: f64) -> Vec<f64> {
    assert_eq!(image.len(), height * width, "fog: image size mismatch");
    let alpha = alpha.clamp(0.0, 1.0);
    let mut out = Vec::with_capacity(image.len());
    for r in 0..height {
        let haze = 0.65 + 0.35 * (r as f64 / (height.max(2) - 1) as f64);
        for c in 0..width {
            let x = image[r * width + c];
            out.push((1.0 - alpha) * x + alpha * haze);
        }
    }
    out
}

/// Additive uniform noise of amplitude `sigma`, clamped to `[0, 1]`.
pub fn noise(image: &[f64], sigma: f64, rng: &mut impl Rng) -> Vec<f64> {
    image
        .iter()
        .map(|&x| (x + rng.gen_range(-sigma..sigma)).clamp(0.0, 1.0))
        .collect()
}

/// Occludes a `size × size` square at `(top, left)` with the given value in
/// every channel of a `channels × height × width` image.
///
/// # Panics
///
/// Panics if `image.len() != channels * height * width`.
#[allow(clippy::too_many_arguments)] // mirrors the (image, shape, rect, value) call shape
pub fn occlude(
    image: &[f64],
    channels: usize,
    height: usize,
    width: usize,
    top: usize,
    left: usize,
    size: usize,
    value: f64,
) -> Vec<f64> {
    assert_eq!(
        image.len(),
        channels * height * width,
        "occlude: image size mismatch"
    );
    let mut out = image.to_vec();
    for ch in 0..channels {
        for r in top..(top + size).min(height) {
            for c in left..(left + size).min(width) {
                out[(ch * height + r) * width + c] = value;
            }
        }
    }
    out
}

/// Reduces contrast towards mid-gray by factor `strength ∈ [0, 1]`.
pub fn reduce_contrast(image: &[f64], strength: f64) -> Vec<f64> {
    let strength = strength.clamp(0.0, 1.0);
    image.iter().map(|&x| x + strength * (0.5 - x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fog_is_affine_in_alpha() {
        let image: Vec<f64> = (0..49).map(|i| (i % 5) as f64 / 5.0).collect();
        let f0 = fog(&image, 7, 7, 0.0);
        let f1 = fog(&image, 7, 7, 1.0);
        let fh = fog(&image, 7, 7, 0.5);
        for i in 0..image.len() {
            assert!((fh[i] - 0.5 * (f0[i] + f1[i])).abs() < 1e-12);
        }
        // alpha = 0 is the identity.
        assert_eq!(f0, image);
    }

    #[test]
    fn fog_brightens_dark_pixels() {
        let image = vec![0.0; 49];
        let foggy = fog(&image, 7, 7, 1.0);
        assert!(foggy.iter().all(|&p| p >= 0.6));
    }

    #[test]
    fn noise_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let image = vec![0.0, 0.5, 1.0];
        let noisy = noise(&image, 0.4, &mut rng);
        assert!(noisy.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn occlusion_overwrites_the_square() {
        let image = vec![0.25; 2 * 4 * 4];
        let out = occlude(&image, 2, 4, 4, 1, 1, 2, 0.9);
        let index = |c: usize, y: usize, x: usize| (c * 4 + y) * 4 + x;
        assert_eq!(out[index(0, 1, 1)], 0.9);
        assert_eq!(out[index(1, 2, 2)], 0.9);
        assert_eq!(out[0], 0.25);
    }

    #[test]
    fn contrast_reduction_moves_towards_gray() {
        let out = reduce_contrast(&[0.0, 1.0], 0.5);
        assert_eq!(out, vec![0.25, 0.75]);
    }
}
