//! The ACAS Xu stand-in for Task 3: a geometric collision-avoidance policy,
//! an MLP distilled from it, and a φ8-like safety property with 2-D repair
//! slices.
//!
//! The real ACAS Xu networks are distillations of a large MDP-policy lookup
//! table; property φ8 of Katz et al. states that for a region of the input
//! space the advisory must be "clear of conflict" or "weak left".  We mirror
//! that structure: a hand-written geometric policy plays the role of the
//! lookup table, an MLP is distilled from samples of it, and the property
//! requires COC-or-weak-left on a region where the teacher policy always
//! says COC but the distilled network sometimes does not (because the region
//! is under-represented in its training data).

use prdnn_nn::{sgd_train, Activation, Dataset, Network, TrainConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of state dimensions (ρ, θ, ψ, v_own, v_int).
pub const STATE_DIM: usize = 5;
/// Number of advisories.
pub const NUM_ADVISORIES: usize = 5;

/// The five ACAS Xu advisories, in output order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advisory {
    /// Clear of conflict.
    ClearOfConflict = 0,
    /// Weak left turn.
    WeakLeft = 1,
    /// Weak right turn.
    WeakRight = 2,
    /// Strong left turn.
    StrongLeft = 3,
    /// Strong right turn.
    StrongRight = 4,
}

/// An encounter state: intruder range, bearing, heading, and speeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct State {
    /// Distance to the intruder in feet, `[0, 60000]`.
    pub rho: f64,
    /// Bearing of the intruder relative to own heading, radians `[-π, π]`.
    pub theta: f64,
    /// Intruder heading relative to own heading, radians `[-π, π]`.
    pub psi: f64,
    /// Own speed in ft/s, `[100, 1200]`.
    pub v_own: f64,
    /// Intruder speed in ft/s, `[100, 1200]`.
    pub v_int: f64,
}

impl State {
    /// Normalises the state to the network input vector (each component
    /// scaled to roughly `[-1, 1]`, matching how ACAS Xu inputs are
    /// normalised before being fed to the network).
    pub fn normalize(&self) -> Vec<f64> {
        vec![
            self.rho / 30000.0 - 1.0,
            self.theta / std::f64::consts::PI,
            self.psi / std::f64::consts::PI,
            (self.v_own - 650.0) / 550.0,
            (self.v_int - 650.0) / 550.0,
        ]
    }

    /// Reconstructs a state from a normalised input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != STATE_DIM`.
    pub fn from_normalized(x: &[f64]) -> State {
        assert_eq!(x.len(), STATE_DIM, "state vector must have 5 components");
        State {
            rho: (x[0] + 1.0) * 30000.0,
            theta: x[1] * std::f64::consts::PI,
            psi: x[2] * std::f64::consts::PI,
            v_own: x[3] * 550.0 + 650.0,
            v_int: x[4] * 550.0 + 650.0,
        }
    }
}

/// The hand-written geometric collision-avoidance policy (the stand-in for
/// the ACAS Xu MDP policy table).
///
/// Far-away or receding intruders get "clear of conflict"; close intruders
/// get a turn away from their bearing, stronger the closer they are.
pub fn teacher_policy(state: &State) -> Advisory {
    let closing = state.v_own + state.v_int;
    let urgency = state.rho / closing.max(1.0);
    if state.rho > 25000.0 || state.theta.abs() > 2.6 {
        return Advisory::ClearOfConflict;
    }
    if urgency > 30.0 {
        return Advisory::ClearOfConflict;
    }
    let strong = state.rho < 8000.0 || urgency < 8.0;
    if state.theta >= 0.0 {
        // Intruder on the left: turn right, away from it.
        if strong {
            Advisory::StrongRight
        } else {
            Advisory::WeakRight
        }
    } else if strong {
        Advisory::StrongLeft
    } else {
        Advisory::WeakLeft
    }
}

/// Samples a random encounter state.  With probability ~0.9 the state lies in
/// the "busy" region (`ρ < 30000`) that dominates the distilled network's
/// training data, leaving the φ8 region under-trained — which is what makes
/// the distilled network violate the property.
pub fn sample_state(rng: &mut impl Rng) -> State {
    let rho = if rng.gen_bool(0.9) {
        rng.gen_range(500.0..30000.0)
    } else {
        rng.gen_range(30000.0..60000.0)
    };
    // The φ8 corner (ρ around 20–29 kft with the intruder far behind on the
    // right) is deliberately carved out of the distillation data, mirroring
    // how the real ACAS Xu networks violate φ8 on under-represented
    // encounter geometries: the network must extrapolate across the hole
    // between the strong-left region below it and the clear-of-conflict
    // region above it.
    let mut theta = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
    if (19000.0..29000.0).contains(&rho) && (-2.95..-2.4).contains(&theta) {
        theta += 0.8;
    }
    State {
        rho,
        theta,
        psi: rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
        v_own: rng.gen_range(100.0..1200.0),
        v_int: rng.gen_range(100.0..1200.0),
    }
}

/// Generates a labelled dataset of normalised states and teacher advisories.
pub fn generate(count: usize, rng: &mut impl Rng) -> Dataset {
    let mut inputs = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for _ in 0..count {
        let state = sample_state(rng);
        inputs.push(state.normalize());
        labels.push(teacher_policy(&state) as usize);
    }
    Dataset::new(inputs, labels)
}

/// The φ8-like safety region, in normalised input coordinates: the intruder
/// is at medium-long range, well behind on the right, with both aircraft
/// fast.  The teacher policy answers "clear of conflict" or "weak left"
/// everywhere in this region, but the region is carved out of the
/// distillation data (see [`sample_state`]), so the distilled network's
/// behaviour there is pure extrapolation — which is what produces the φ8
/// violations Task 3 repairs.
///
/// Returns `(lower, upper)` bounds per input dimension.
pub fn phi8_region() -> ([f64; STATE_DIM], [f64; STATE_DIM]) {
    (
        // rho in [19500, 28500] ft, theta in [-2.92, -2.42] rad, psi near 0,
        // both speeds in the upper range.
        [-0.35, -0.93, -0.1, 0.45, 0.45],
        [-0.05, -0.77, 0.1, 1.0, 1.0],
    )
}

/// Whether an advisory satisfies the φ8-like property ("clear of conflict or
/// weak left").
pub fn phi8_allows(advisory: usize) -> bool {
    advisory == Advisory::ClearOfConflict as usize || advisory == Advisory::WeakLeft as usize
}

/// Whether a normalised input lies inside the φ8 region.
pub fn in_phi8_region(x: &[f64]) -> bool {
    let (lo, hi) = phi8_region();
    x.iter()
        .zip(lo.iter().zip(hi.iter()))
        .all(|(v, (l, h))| *v >= *l && *v <= *h)
}

/// A 2-D axis-aligned rectangle inside the φ8 region, used as one repair
/// slice: dimensions `dims` vary over `[lo, hi]`, all other dimensions are
/// fixed at `base`.
#[derive(Debug, Clone, PartialEq)]
pub struct Slice2d {
    /// The base point (normalised input) shared by the whole slice.
    pub base: Vec<f64>,
    /// The two input dimensions spanned by the slice.
    pub dims: [usize; 2],
    /// Lower bounds of the two varying dimensions.
    pub lo: [f64; 2],
    /// Upper bounds of the two varying dimensions.
    pub hi: [f64; 2],
}

impl Slice2d {
    /// The four corner vertices of the slice, in boundary order.
    pub fn corners(&self) -> Vec<Vec<f64>> {
        let mk = |a: f64, b: f64| {
            let mut v = self.base.clone();
            v[self.dims[0]] = a;
            v[self.dims[1]] = b;
            v
        };
        vec![
            mk(self.lo[0], self.lo[1]),
            mk(self.hi[0], self.lo[1]),
            mk(self.hi[0], self.hi[1]),
            mk(self.lo[0], self.hi[1]),
        ]
    }

    /// A `grid × grid` sampling of the slice (used to find violations and to
    /// build generalization/drawdown point sets).
    pub fn grid(&self, grid: usize) -> Vec<Vec<f64>> {
        let mut points = Vec::with_capacity(grid * grid);
        for i in 0..grid {
            for j in 0..grid {
                let a = self.lo[0] + (self.hi[0] - self.lo[0]) * i as f64 / (grid - 1) as f64;
                let b = self.lo[1] + (self.hi[1] - self.lo[1]) * j as f64 / (grid - 1) as f64;
                let mut v = self.base.clone();
                v[self.dims[0]] = a;
                v[self.dims[1]] = b;
                points.push(v);
            }
        }
        points
    }
}

/// Generates random 2-D slices lying inside the φ8 region, varying ρ and θ
/// with the remaining dimensions fixed at random values in the region.
pub fn random_phi8_slices(count: usize, rng: &mut impl Rng) -> Vec<Slice2d> {
    let (lo, hi) = phi8_region();
    (0..count)
        .map(|_| {
            let base: Vec<f64> = (0..STATE_DIM)
                .map(|d| rng.gen_range(lo[d]..hi[d]))
                .collect();
            Slice2d {
                base,
                dims: [0, 1],
                lo: [lo[0], lo[1]],
                hi: [hi[0], hi[1]],
            }
        })
        .collect()
}

/// The collision-avoidance task: a distilled MLP, its training data, and the
/// teacher policy it imitates.
#[derive(Debug, Clone)]
pub struct AcasTask {
    /// The distilled network (5 hidden ReLU layers, like the 7-layer N_{2,9}).
    pub network: Network,
    /// Training split (normalised states + teacher advisories).
    pub train: Dataset,
}

/// Distils the teacher policy into an MLP.  Deterministic for a fixed seed.
pub fn acas_task(seed: u64, train_size: usize) -> AcasTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = generate(train_size, &mut rng);
    let mut network = Network::mlp(
        &[STATE_DIM, 16, 16, 16, 16, NUM_ADVISORIES],
        Activation::Relu,
        &mut rng,
    );
    let config = TrainConfig {
        learning_rate: 0.05,
        momentum: 0.9,
        batch_size: 16,
        epochs: 40,
        ..TrainConfig::default()
    };
    sgd_train(
        &mut network,
        &train.inputs,
        &train.labels,
        &config,
        &mut rng,
    );
    AcasTask { network, train }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_roundtrips() {
        let s = State {
            rho: 12000.0,
            theta: 1.0,
            psi: -2.0,
            v_own: 300.0,
            v_int: 900.0,
        };
        let x = s.normalize();
        assert!(x.iter().all(|v| (-1.01..=1.01).contains(v)));
        let back = State::from_normalized(&x);
        assert!((back.rho - s.rho).abs() < 1e-6);
        assert!((back.theta - s.theta).abs() < 1e-9);
        assert!((back.v_int - s.v_int).abs() < 1e-6);
    }

    #[test]
    fn teacher_policy_is_sensible() {
        // Far away: clear of conflict.
        let far = State {
            rho: 50000.0,
            theta: 0.0,
            psi: 0.0,
            v_own: 600.0,
            v_int: 600.0,
        };
        assert_eq!(teacher_policy(&far), Advisory::ClearOfConflict);
        // Close on the left: strong right.
        let close_left = State {
            rho: 3000.0,
            theta: 1.0,
            psi: 0.0,
            v_own: 600.0,
            v_int: 600.0,
        };
        assert_eq!(teacher_policy(&close_left), Advisory::StrongRight);
        // Close on the right: strong left.
        let close_right = State {
            rho: 3000.0,
            theta: -1.0,
            psi: 0.0,
            v_own: 600.0,
            v_int: 600.0,
        };
        assert_eq!(teacher_policy(&close_right), Advisory::StrongLeft);
    }

    #[test]
    fn teacher_satisfies_phi8_on_the_region() {
        // The teacher always answers COC inside the φ8 region, so any network
        // that matches the teacher there satisfies the property.
        let mut rng = StdRng::seed_from_u64(13);
        let (lo, hi) = phi8_region();
        for _ in 0..200 {
            let x: Vec<f64> = (0..STATE_DIM)
                .map(|d| rng.gen_range(lo[d]..hi[d]))
                .collect();
            assert!(in_phi8_region(&x));
            let advisory = teacher_policy(&State::from_normalized(&x)) as usize;
            assert!(phi8_allows(advisory));
        }
    }

    #[test]
    fn distilled_network_imitates_the_teacher() {
        // The distilled MLP is deliberately small (like the 13k-parameter
        // ACAS Xu networks) and its training data omits the φ8 corner, so it
        // imitates the teacher well but not perfectly.
        // Distillation quality is sensitive to the RNG stream; this seed is
        // chosen to converge under the vendored deterministic StdRng.
        let task = acas_task(3, 1500);
        let acc = task.train.accuracy(&task.network);
        assert!(acc > 0.7, "distillation accuracy too low: {acc}");
    }

    #[test]
    fn slices_have_four_corners_inside_the_region() {
        let mut rng = StdRng::seed_from_u64(14);
        let slices = random_phi8_slices(5, &mut rng);
        assert_eq!(slices.len(), 5);
        for slice in &slices {
            let corners = slice.corners();
            assert_eq!(corners.len(), 4);
            for c in &corners {
                assert!(in_phi8_region(c), "corner outside φ8 region: {c:?}");
            }
            assert_eq!(slice.grid(4).len(), 16);
        }
    }
}
