//! Named model generators for the serving layer's model store.
//!
//! A stored model has to come from somewhere; this registry maps a compact,
//! deterministic *generator spec* string to a freshly built [`Network`], so
//! a `prdnn-serve` client (or the `servebench` load generator) can say
//! `{"generator": "digits:7:160:40"}` instead of shipping weights.  Every
//! generator is a pure function of its spec — the same string always
//! produces the bit-identical network, which keeps server restarts and
//! cross-process comparisons reproducible.
//!
//! Supported forms:
//!
//! | Spec | Model |
//! |---|---|
//! | `n1` | the paper's running example N1 (Figure 3a) |
//! | `mlp:<seed>:<d0>x<d1>x...x<dk>` | Xavier-initialised ReLU MLP |
//! | `digits:<seed>:<train>:<test>` | trained digit classifier ([`crate::digits::digit_task`]) |
//! | `acas:<seed>:<train>` | distilled collision-avoidance MLP ([`crate::acas::acas_task`]) |

use prdnn_linalg::Matrix;
use prdnn_nn::{Activation, Layer, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the network described by a generator spec.
///
/// # Errors
///
/// Returns a message naming the offending spec (and the supported forms)
/// when it does not parse.
pub fn build_model(spec: &str) -> Result<Network, String> {
    let mut parts = spec.split(':');
    let kind = parts.next().unwrap_or("");
    let rest: Vec<&str> = parts.collect();
    match kind {
        "n1" if rest.is_empty() => Ok(paper_n1()),
        "mlp" => {
            let [seed, sizes] = rest.as_slice() else {
                return Err(bad_spec(spec, "mlp:<seed>:<d0>x<d1>x..."));
            };
            let seed = parse_u64(spec, seed)?;
            let sizes: Vec<usize> = sizes
                .split('x')
                .map(|s| {
                    s.parse::<usize>()
                        .ok()
                        .filter(|&d| d > 0 && d <= MAX_MLP_WIDTH)
                        .ok_or_else(|| bad_spec(spec, "layer sizes must be integers in 1..=4096"))
                })
                .collect::<Result<_, _>>()?;
            if sizes.len() < 2 || sizes.len() > MAX_MLP_DEPTH {
                return Err(bad_spec(spec, "mlp needs 2..=16 layer sizes"));
            }
            let mut rng = StdRng::seed_from_u64(seed);
            Ok(Network::mlp(&sizes, Activation::Relu, &mut rng))
        }
        "digits" => {
            let [seed, train, test] = rest.as_slice() else {
                return Err(bad_spec(spec, "digits:<seed>:<train>:<test>"));
            };
            let seed = parse_u64(spec, seed)?;
            let train = parse_count(spec, train)?;
            let test = parse_count(spec, test)?;
            Ok(crate::digits::digit_task(seed, train, test).network)
        }
        "acas" => {
            let [seed, train] = rest.as_slice() else {
                return Err(bad_spec(spec, "acas:<seed>:<train>"));
            };
            let seed = parse_u64(spec, seed)?;
            let train = parse_count(spec, train)?;
            Ok(crate::acas::acas_task(seed, train).network)
        }
        _ => Err(bad_spec(
            spec,
            "n1 | mlp:<seed>:<sizes> | digits:<seed>:<train>:<test> | acas:<seed>:<train>",
        )),
    }
}

/// Cap on training-sample counts in generator specs.  Specs are
/// reachable from untrusted `prdnn-serve` clients and generation +
/// training run synchronously, so a 60-byte request must not be able to
/// demand hours of CPU; this is still ~100× the workspace's own tasks.
const MAX_SAMPLES: usize = 100_000;

/// Cap on a single MLP layer width, for the same reason.
const MAX_MLP_WIDTH: usize = 4_096;

/// Cap on the number of MLP layer sizes.
const MAX_MLP_DEPTH: usize = 16;

fn bad_spec(spec: &str, expected: &str) -> String {
    format!("unknown model generator spec {spec:?}: expected {expected}")
}

fn parse_u64(spec: &str, s: &str) -> Result<u64, String> {
    s.parse::<u64>()
        .map_err(|_| bad_spec(spec, "a non-negative integer seed"))
}

fn parse_count(spec: &str, s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .ok()
        .filter(|&c| c > 0 && c <= MAX_SAMPLES)
        .ok_or_else(|| {
            bad_spec(
                spec,
                "a positive sample count (at most 100000 — generators train synchronously)",
            )
        })
}

/// The paper's running example N1 (Figure 3a): one input, three ReLU
/// hidden units, one output — the smallest spec-repairable model, used as
/// the serving smoke-test default.
fn paper_n1() -> Network {
    Network::new(vec![
        Layer::dense(
            Matrix::from_rows(&[vec![-1.0], vec![1.0], vec![1.0]]),
            vec![0.0, 0.0, -1.0],
            Activation::Relu,
        ),
        Layer::dense(
            Matrix::from_rows(&[vec![-1.0, -1.0, 1.0]]),
            vec![0.0],
            Activation::Identity,
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n1_matches_the_paper_values() {
        let n1 = build_model("n1").unwrap();
        assert!((n1.forward(&[0.5])[0] + 0.5).abs() < 1e-12);
        assert!((n1.forward(&[1.5])[0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn mlp_specs_are_deterministic() {
        let a = build_model("mlp:42:4x16x3").unwrap();
        let b = build_model("mlp:42:4x16x3").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.input_dim(), 4);
        assert_eq!(a.output_dim(), 3);
        let c = build_model("mlp:43:4x16x3").unwrap();
        assert_ne!(a, c, "different seeds must give different weights");
    }

    #[test]
    fn trained_generators_build() {
        let digits = build_model("digits:7:40:10").unwrap();
        assert_eq!(digits.input_dim(), 49);
        assert_eq!(digits.output_dim(), 10);
        let acas = build_model("acas:7:40").unwrap();
        assert_eq!(acas.output_dim(), 5);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "resnet",
            "mlp",
            "mlp:seed:4x4",
            "mlp:1:4",
            "mlp:1:4x0x2",
            "digits:1:0:10",
            "acas:1",
            "n1:extra",
            // Resource caps: these specs are reachable from untrusted
            // serve clients.
            "mlp:1:4x99999x2",
            "mlp:1:2x2x2x2x2x2x2x2x2x2x2x2x2x2x2x2x2",
            "digits:1:4000000000:1",
            "acas:1:200000",
        ] {
            let err = build_model(bad).unwrap_err();
            assert!(err.contains("spec"), "{err}");
        }
    }
}
