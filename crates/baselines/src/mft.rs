//! The MFT baseline: single-layer fine-tuning with a change penalty, a
//! holdout split, and early stopping.

use prdnn_nn::{sgd_train, Dataset, Loss, Network, TrainConfig};
use rand::seq::SliceRandom;
use rand::Rng;
use std::time::{Duration, Instant};

/// Hyperparameters of the MFT baseline (§7, "modified fine-tuning").
#[derive(Debug, Clone, PartialEq)]
pub struct MftConfig {
    /// SGD learning rate.
    pub learning_rate: f64,
    /// SGD momentum.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Epoch budget.
    pub max_epochs: usize,
    /// Index of the single layer being fine-tuned.
    pub layer: usize,
    /// Weight of the penalty pulling the layer back towards its original
    /// parameters.  The paper penalises the ℓ0/ℓ∞ norms of the change; we use
    /// the differentiable ℓ2 relaxation of the same idea.
    pub change_penalty: f64,
    /// Fraction of the repair set reserved as a holdout set (the paper
    /// uses 25%).
    pub holdout_fraction: f64,
}

impl Default for MftConfig {
    fn default() -> Self {
        MftConfig {
            learning_rate: 0.01,
            momentum: 0.9,
            batch_size: 16,
            max_epochs: 200,
            layer: 0,
            change_penalty: 1e-3,
            holdout_fraction: 0.25,
        }
    }
}

/// Result of running the MFT baseline.
#[derive(Debug, Clone)]
pub struct MftResult {
    /// The fine-tuned network.
    pub network: Network,
    /// Number of epochs actually run before early stopping.
    pub epochs_run: usize,
    /// Accuracy on the full repair set at the stopping point (MFT does not
    /// reach 100%, so this is the baseline's *efficacy*).
    pub efficacy: f64,
    /// Wall-clock time spent.
    pub duration: Duration,
}

/// Runs modified fine-tuning of the single layer `config.layer`.
///
/// 25% of the repair set (configurable) is held out; after each epoch the
/// holdout accuracy is evaluated and training stops as soon as it drops
/// below its best value so far.  A quadratic penalty pulls the tuned layer
/// back towards its original parameters, limiting drawdown at the cost of
/// efficacy — reproducing the trade-off reported in Tables 1 and 3.
///
/// # Panics
///
/// Panics if the repair set is empty or `config.layer` is out of range.
pub fn modified_fine_tune(
    net: &Network,
    repair_set: &Dataset,
    config: &MftConfig,
    rng: &mut impl Rng,
) -> MftResult {
    assert!(
        !repair_set.is_empty(),
        "modified_fine_tune: empty repair set"
    );
    assert!(
        config.layer < net.num_layers(),
        "modified_fine_tune: layer out of range"
    );
    let start = Instant::now();

    // Shuffle and split off the holdout set.
    let mut order: Vec<usize> = (0..repair_set.len()).collect();
    order.shuffle(rng);
    let holdout_size = ((repair_set.len() as f64 * config.holdout_fraction).round() as usize)
        .min(repair_set.len());
    let (holdout_idx, train_idx) = order.split_at(holdout_size);
    let subset = |idx: &[usize]| {
        Dataset::new(
            idx.iter().map(|&i| repair_set.inputs[i].clone()).collect(),
            idx.iter().map(|&i| repair_set.labels[i]).collect(),
        )
    };
    let holdout = subset(holdout_idx);
    let train = subset(train_idx);

    let original_params = net.layer(config.layer).params();
    let mut network = net.clone();
    let epoch_config = TrainConfig {
        learning_rate: config.learning_rate,
        momentum: config.momentum,
        batch_size: config.batch_size,
        epochs: 1,
        loss: Loss::SoftmaxCrossEntropy,
        only_layer: Some(config.layer),
    };

    let mut best_holdout = if holdout.is_empty() {
        0.0
    } else {
        holdout.accuracy(&network)
    };
    let mut epochs_run = 0;
    let mut best_network = network.clone();
    while epochs_run < config.max_epochs {
        if !train.is_empty() {
            sgd_train(
                &mut network,
                &train.inputs,
                &train.labels,
                &epoch_config,
                rng,
            );
        }
        // Penalty step: pull the tuned layer back towards its original
        // parameters (the ℓ2 relaxation of the paper's change penalty).
        let current = network.layer(config.layer).params();
        let pull: Vec<f64> = current
            .iter()
            .zip(&original_params)
            .map(|(c, o)| -config.learning_rate * 2.0 * config.change_penalty * (c - o))
            .collect();
        network.layer_mut(config.layer).add_to_params(&pull);

        epochs_run += 1;
        let holdout_acc = if holdout.is_empty() {
            1.0
        } else {
            holdout.accuracy(&network)
        };
        if holdout_acc < best_holdout {
            // Early stop: holdout accuracy started dropping.
            break;
        }
        if holdout_acc >= best_holdout {
            best_holdout = holdout_acc;
            best_network = network.clone();
        }
        if repair_set.accuracy(&network) >= 1.0 {
            best_network = network.clone();
            break;
        }
    }

    let efficacy = repair_set.accuracy(&best_network);
    MftResult {
        network: best_network,
        epochs_run,
        efficacy,
        duration: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdnn_nn::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob_dataset(rng: &mut StdRng, n: usize) -> Dataset {
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let c = if label == 0 { -1.0 } else { 1.0 };
            inputs.push(vec![
                c + rng.gen_range(-0.4..0.4),
                c + rng.gen_range(-0.4..0.4),
            ]);
            labels.push(label);
        }
        Dataset::new(inputs, labels)
    }

    #[test]
    fn mft_only_changes_the_selected_layer() {
        let mut rng = StdRng::seed_from_u64(8);
        let net = Network::mlp(&[2, 6, 4, 2], Activation::Relu, &mut rng);
        let repair = blob_dataset(&mut rng, 24);
        let config = MftConfig {
            layer: 2,
            max_epochs: 20,
            ..Default::default()
        };
        let result = modified_fine_tune(&net, &repair, &config, &mut rng);
        assert_eq!(result.network.layer(0).params(), net.layer(0).params());
        assert_eq!(result.network.layer(1).params(), net.layer(1).params());
        assert!(result.epochs_run <= 20);
        assert!(result.efficacy >= 0.0 && result.efficacy <= 1.0);
    }

    #[test]
    fn mft_improves_or_matches_initial_efficacy() {
        let mut rng = StdRng::seed_from_u64(9);
        let net = Network::mlp(&[2, 8, 2], Activation::Relu, &mut rng);
        let repair = blob_dataset(&mut rng, 40);
        let initial = repair.accuracy(&net);
        let config = MftConfig {
            layer: 1,
            learning_rate: 0.05,
            max_epochs: 100,
            ..Default::default()
        };
        let result = modified_fine_tune(&net, &repair, &config, &mut rng);
        assert!(
            result.efficacy + 1e-9 >= initial.min(0.5),
            "MFT should not collapse"
        );
    }

    #[test]
    fn change_penalty_keeps_parameters_close() {
        let mut rng = StdRng::seed_from_u64(10);
        let net = Network::mlp(&[2, 8, 2], Activation::Relu, &mut rng);
        let repair = blob_dataset(&mut rng, 30);
        let strong = MftConfig {
            layer: 1,
            change_penalty: 10.0,
            learning_rate: 0.05,
            max_epochs: 30,
            ..Default::default()
        };
        let weak = MftConfig {
            change_penalty: 0.0,
            ..strong.clone()
        };
        let mut rng1 = StdRng::seed_from_u64(11);
        let mut rng2 = StdRng::seed_from_u64(11);
        let strong_result = modified_fine_tune(&net, &repair, &strong, &mut rng1);
        let weak_result = modified_fine_tune(&net, &repair, &weak, &mut rng2);
        let dist = |n: &Network| -> f64 {
            n.layer(1)
                .params()
                .iter()
                .zip(net.layer(1).params())
                .map(|(a, b)| (a - b).abs())
                .sum()
        };
        assert!(dist(&strong_result.network) <= dist(&weak_result.network) + 1e-9);
    }

    #[test]
    #[should_panic]
    fn out_of_range_layer_panics() {
        let mut rng = StdRng::seed_from_u64(12);
        let net = Network::mlp(&[2, 4, 2], Activation::Relu, &mut rng);
        let repair = blob_dataset(&mut rng, 4);
        let config = MftConfig {
            layer: 9,
            ..Default::default()
        };
        modified_fine_tune(&net, &repair, &config, &mut rng);
    }
}
