//! The FT baseline: whole-network SGD until the repair set is fixed.

use prdnn_nn::{sgd_train, Dataset, Loss, Network, TrainConfig};
use rand::Rng;
use std::time::{Duration, Instant};

/// Hyperparameters of the FT baseline.
///
/// The paper stresses that FT's behaviour is extremely sensitive to these
/// choices (§7, RQ1/RQ4); the evaluation therefore runs two configurations
/// (`FT[1]`, `FT[2]`) per task.
#[derive(Debug, Clone, PartialEq)]
pub struct FineTuneConfig {
    /// SGD learning rate.
    pub learning_rate: f64,
    /// SGD momentum.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Epoch budget; fine-tuning that has not fixed the repair set by then is
    /// reported as timed out (`converged == false`).
    pub max_epochs: usize,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        FineTuneConfig {
            learning_rate: 0.01,
            momentum: 0.9,
            batch_size: 16,
            max_epochs: 1000,
        }
    }
}

/// Result of running the FT baseline.
#[derive(Debug, Clone)]
pub struct FineTuneResult {
    /// The fine-tuned network.
    pub network: Network,
    /// Number of epochs actually run.
    pub epochs_run: usize,
    /// Whether the repair set reached 100% accuracy within the budget.
    pub converged: bool,
    /// Wall-clock time spent fine-tuning.
    pub duration: Duration,
}

/// Fine-tunes every parameter of `net` on the repair set until all repair
/// points are classified correctly (or `config.max_epochs` is reached).
///
/// # Panics
///
/// Panics if the repair set is empty.
pub fn fine_tune(
    net: &Network,
    repair_set: &Dataset,
    config: &FineTuneConfig,
    rng: &mut impl Rng,
) -> FineTuneResult {
    assert!(!repair_set.is_empty(), "fine_tune: empty repair set");
    let start = Instant::now();
    let mut network = net.clone();
    let epoch_config = TrainConfig {
        learning_rate: config.learning_rate,
        momentum: config.momentum,
        batch_size: config.batch_size,
        epochs: 1,
        loss: Loss::SoftmaxCrossEntropy,
        only_layer: None,
    };
    let mut epochs_run = 0;
    let mut converged = repair_set.accuracy(&network) >= 1.0;
    while !converged && epochs_run < config.max_epochs {
        sgd_train(
            &mut network,
            &repair_set.inputs,
            &repair_set.labels,
            &epoch_config,
            rng,
        );
        epochs_run += 1;
        converged = repair_set.accuracy(&network) >= 1.0;
    }
    FineTuneResult {
        network,
        epochs_run,
        converged,
        duration: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdnn_nn::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blob_dataset(rng: &mut StdRng, n: usize) -> Dataset {
        let mut inputs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % 2;
            let c = if label == 0 { -1.0 } else { 1.0 };
            inputs.push(vec![
                c + rng.gen_range(-0.3..0.3),
                c + rng.gen_range(-0.3..0.3),
            ]);
            labels.push(label);
        }
        Dataset::new(inputs, labels)
    }

    #[test]
    fn ft_reaches_full_efficacy_on_an_easy_repair_set() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = Network::mlp(&[2, 8, 2], Activation::Relu, &mut rng);
        let repair = blob_dataset(&mut rng, 20);
        let config = FineTuneConfig {
            learning_rate: 0.05,
            max_epochs: 300,
            ..Default::default()
        };
        let result = fine_tune(&net, &repair, &config, &mut rng);
        assert!(result.converged, "FT should fix an easy repair set");
        assert_eq!(repair.accuracy(&result.network), 1.0);
        assert!(result.epochs_run <= 300);
    }

    #[test]
    fn ft_respects_the_epoch_budget() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = Network::mlp(&[2, 4, 2], Activation::Relu, &mut rng);
        // Contradictory labels for the same input: cannot converge.
        let repair = Dataset::new(vec![vec![0.5, 0.5], vec![0.5, 0.5]], vec![0, 1]);
        let config = FineTuneConfig {
            max_epochs: 5,
            ..Default::default()
        };
        let result = fine_tune(&net, &repair, &config, &mut rng);
        assert!(!result.converged);
        assert_eq!(result.epochs_run, 5);
    }

    #[test]
    fn already_correct_repair_set_needs_no_epochs() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Network::mlp(&[2, 8, 2], Activation::Relu, &mut rng);
        // Build a repair set from the network's own predictions.
        let inputs: Vec<Vec<f64>> = (0..10)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let labels: Vec<usize> = inputs.iter().map(|x| net.classify(x)).collect();
        let repair = Dataset::new(inputs, labels);
        let result = fine_tune(&net, &repair, &FineTuneConfig::default(), &mut rng);
        assert!(result.converged);
        assert_eq!(result.epochs_run, 0);
        assert_eq!(result.network, net);
    }
}
