//! Gradient-descent repair baselines from the paper's evaluation (§7).
//!
//! Two baselines are compared against Provable Repair:
//!
//! * **FT** ([`fine_tune`]) — plain fine-tuning of *all* parameters with SGD
//!   on the repair set, run until every repair point is classified correctly
//!   or an epoch budget is exhausted (the approach of Sinitsin et al. when no
//!   original training data is available).
//! * **MFT** ([`modified_fine_tune`]) — fine-tuning of a *single* layer with
//!   a penalty on the size of the parameter change, a 25% holdout split of
//!   the repair set, and early stopping when holdout accuracy drops.  MFT is
//!   not a repair algorithm (it does not reach 100% efficacy) but exhibits
//!   low drawdown, exactly as reported in the paper.
//!
//! Unlike Provable Repair, neither baseline provides guarantees: FT may
//! diverge or time out (Table 2's starred entry), and for polytope
//! specifications both baselines only ever see finitely many sampled points.

mod fine_tune;
mod mft;

pub use fine_tune::{fine_tune, FineTuneConfig, FineTuneResult};
pub use mft::{modified_fine_tune, MftConfig, MftResult};
