//! Provable Point Repair (Algorithm 1, §5).

use crate::ddnn::DecoupledNetwork;
use crate::repair::{
    repair_key_points, validate, KeyPoint, RepairConfig, RepairError, RepairOutcome,
};
use crate::spec::PointSpec;
use prdnn_nn::Network;
use std::time::Duration;

/// Provable Point Repair of a standard DNN (Algorithm 1).
///
/// Converts `net` into the equivalent DDNN (Theorem 4.4), encodes the
/// specification `A_x N'(x) ≤ b_x` for every point `x ∈ X` as a linear
/// program over the parameter delta `Δ` of value-channel layer `layer`,
/// solves for the norm-minimal `Δ`, and returns the repaired DDNN.
///
/// If the returned repair is `Ok`, the repaired network is guaranteed to
/// satisfy the specification (Theorem 5.4) and `Δ` is a minimal layer repair
/// with respect to `config.norm`.
///
/// # Errors
///
/// * [`RepairError::Infeasible`] — no single-layer repair of `layer` exists
///   (the algorithm's `⊥` output).
/// * [`RepairError::LayerHasNoParameters`] / [`RepairError::LayerOutOfRange`]
///   — invalid choice of repair layer.
/// * [`RepairError::SpecDimensionMismatch`] / [`RepairError::EmptySpec`] —
///   malformed specification.
/// * [`RepairError::LpIterationLimit`] — the LP solver ran out of iterations.
///
/// # Example
///
/// ```
/// use prdnn_core::{repair_points, OutputPolytope, PointSpec, RepairConfig};
/// use prdnn_linalg::Matrix;
/// use prdnn_nn::{Activation, Layer, Network};
///
/// # fn main() -> Result<(), prdnn_core::RepairError> {
/// // The paper's running example N1 and Equation 2.
/// let n1 = Network::new(vec![
///     Layer::dense(Matrix::from_rows(&[vec![-1.0], vec![1.0], vec![1.0]]),
///                  vec![0.0, 0.0, -1.0], Activation::Relu),
///     Layer::dense(Matrix::from_rows(&[vec![-1.0, -1.0, 1.0]]), vec![0.0], Activation::Identity),
/// ]);
/// let mut spec = PointSpec::new();
/// spec.push(vec![0.5], OutputPolytope::scalar_interval(-1.0, -0.8));
/// spec.push(vec![1.5], OutputPolytope::scalar_interval(-0.2, 0.0));
/// let outcome = repair_points(&n1, 0, &spec, &RepairConfig::default())?;
/// assert!(spec.is_satisfied_by(|x| outcome.repaired.forward(x), 1e-6));
/// # Ok(())
/// # }
/// ```
pub fn repair_points(
    net: &Network,
    layer: usize,
    spec: &PointSpec,
    config: &RepairConfig,
) -> Result<RepairOutcome, RepairError> {
    let ddnn = DecoupledNetwork::from_network(net);
    repair_points_ddnn(&ddnn, layer, spec, config)
}

/// Provable Point Repair starting from an existing DDNN.
///
/// This allows repairs to be chained: the result of one repair (a DDNN) can
/// be repaired again on a different layer or specification.
///
/// # Errors
///
/// See [`repair_points`].
pub fn repair_points_ddnn(
    ddnn: &DecoupledNetwork,
    layer: usize,
    spec: &PointSpec,
    config: &RepairConfig,
) -> Result<RepairOutcome, RepairError> {
    let pool = prdnn_par::pool_for(config.threads);
    repair_points_ddnn_in(&pool, ddnn, layer, spec, config)
}

/// [`repair_points_ddnn`] on an explicit thread pool.
///
/// Long-lived callers that run many repairs (the serving layer's job
/// workers) resolve their pool once and pass it here, instead of paying a
/// `pool_for` resolution — and possibly a transient pool spawn — per
/// repair.  `config.threads` is ignored in favour of `pool`.
///
/// # Errors
///
/// See [`repair_points`].
pub fn repair_points_ddnn_in(
    pool: &prdnn_par::ThreadPool,
    ddnn: &DecoupledNetwork,
    layer: usize,
    spec: &PointSpec,
    config: &RepairConfig,
) -> Result<RepairOutcome, RepairError> {
    validate(ddnn, layer, &spec.constraints)?;
    let key_points: Vec<KeyPoint> = spec
        .points
        .iter()
        .zip(&spec.constraints)
        .map(|(point, constraint)| KeyPoint::pointwise(point.clone(), constraint.clone()))
        .collect();
    repair_key_points(ddnn, layer, &key_points, config, pool, Duration::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::repair::RepairNorm;
    use crate::spec::{OutputPolytope, PointSpec};
    use prdnn_nn::Activation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn running_example_equation_2_is_repaired() {
        // §3.1: repair N1 so that N'(0.5) ∈ [-1, -0.8] and N'(1.5) ∈ [-0.2, 0].
        let n1 = paper_example::n1();
        let spec = paper_example::equation_2_spec();
        let outcome =
            repair_points(&n1, 0, &spec, &RepairConfig::default()).expect("repair must succeed");
        assert!(spec.is_satisfied_by(|x| outcome.repaired.forward(x), 1e-6));
        // The paper's hand-derived repair (Δ2 = 0.6, Δ3 = 1.13, ℓ1 ≈ 1.733)
        // is feasible here, so the minimal repair cannot be larger.
        assert!(outcome.stats.delta_l1 <= 1.7334 + 1e-6);
        assert!(outcome.stats.delta_l1 > 0.0);
        // Repairing the value channel must not move the linear regions
        // (Theorem 4.6): activation patterns are unchanged.
        for &x in &[-0.5, 0.25, 0.75, 1.25, 1.75] {
            assert_eq!(
                outcome
                    .repaired
                    .activation_network()
                    .activation_pattern(&[x]),
                n1.activation_pattern(&[x])
            );
        }
    }

    #[test]
    fn repairing_the_output_layer_also_works() {
        let n1 = paper_example::n1();
        let spec = paper_example::equation_2_spec();
        let outcome = repair_points(&n1, 1, &spec, &RepairConfig::default())
            .expect("output-layer repair must succeed");
        assert!(spec.is_satisfied_by(|x| outcome.repaired.forward(x), 1e-6));
    }

    #[test]
    fn linf_norm_repair_satisfies_spec_with_smaller_max_change() {
        let n1 = paper_example::n1();
        let spec = paper_example::equation_2_spec();
        let l1 = repair_points(&n1, 0, &spec, &RepairConfig::default()).unwrap();
        let linf = repair_points(
            &n1,
            0,
            &spec,
            &RepairConfig {
                norm: RepairNorm::LInf,
                ..RepairConfig::default()
            },
        )
        .unwrap();
        assert!(spec.is_satisfied_by(|x| linf.repaired.forward(x), 1e-6));
        // The ℓ∞-minimal repair can never have a larger max-change than the
        // ℓ1-minimal one.
        assert!(linf.stats.delta_linf <= l1.stats.delta_linf + 1e-7);
    }

    #[test]
    fn infeasible_specification_returns_bottom() {
        // Contradictory requirements on the same point.
        let n1 = paper_example::n1();
        let mut spec = PointSpec::new();
        spec.push(vec![0.5], OutputPolytope::scalar_interval(-1.0, -0.9));
        spec.push(vec![0.5], OutputPolytope::scalar_interval(0.9, 1.0));
        assert_eq!(
            repair_points(&n1, 0, &spec, &RepairConfig::default()).unwrap_err(),
            RepairError::Infeasible
        );
    }

    #[test]
    fn invalid_layer_indices_are_rejected() {
        let n1 = paper_example::n1();
        let spec = paper_example::equation_2_spec();
        assert!(matches!(
            repair_points(&n1, 9, &spec, &RepairConfig::default()).unwrap_err(),
            RepairError::LayerOutOfRange { .. }
        ));
        let empty = PointSpec::new();
        assert_eq!(
            repair_points(&n1, 0, &empty, &RepairConfig::default()).unwrap_err(),
            RepairError::EmptySpec
        );
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let n1 = paper_example::n1();
        let mut spec = PointSpec::new();
        spec.push(vec![0.5], OutputPolytope::classification(0, 3, 0.0));
        assert!(matches!(
            repair_points(&n1, 0, &spec, &RepairConfig::default()).unwrap_err(),
            RepairError::SpecDimensionMismatch {
                expected: 1,
                found: 3
            }
        ));
    }

    #[test]
    fn classification_repair_on_a_trained_style_network() {
        // Random ReLU classifier; force five random points to specific labels.
        let mut rng = StdRng::seed_from_u64(99);
        let net = prdnn_nn::Network::mlp(&[4, 16, 12, 3], Activation::Relu, &mut rng);
        let points: Vec<Vec<f64>> = (0..5)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let labels: Vec<usize> = (0..5).map(|i| i % 3).collect();
        let spec = PointSpec::from_classification(&points, &labels, 3, 1e-4);
        // Repair the last layer (the paper's most reliable choice).
        let outcome =
            repair_points(&net, 2, &spec, &RepairConfig::default()).expect("repair must succeed");
        for (p, &label) in points.iter().zip(&labels) {
            assert_eq!(outcome.repaired.classify(p), label, "efficacy must be 100%");
        }
    }

    #[test]
    fn point_repair_works_for_smooth_activations() {
        // §5: point repair makes no PWL assumption — repair a Tanh network.
        let mut rng = StdRng::seed_from_u64(7);
        let net = prdnn_nn::Network::mlp(&[2, 8, 2], Activation::Tanh, &mut rng);
        let points = vec![vec![0.2, -0.4], vec![-0.6, 0.9]];
        let labels = vec![1, 0];
        let spec = PointSpec::from_classification(&points, &labels, 2, 1e-3);
        let outcome =
            repair_points(&net, 1, &spec, &RepairConfig::default()).expect("repair succeeds");
        for (p, &label) in points.iter().zip(&labels) {
            assert_eq!(outcome.repaired.classify(p), label);
        }
    }

    #[test]
    fn lp_backends_agree_on_classifier_repair() {
        // The same wide, block-sparse repair LP solved by the dense tableau
        // oracle and the sparse revised simplex must yield repairs of the
        // same (minimal) norm, and both must satisfy the spec exactly.
        let mut rng = StdRng::seed_from_u64(21);
        let net = prdnn_nn::Network::mlp(&[6, 18, 14, 4], Activation::Relu, &mut rng);
        let points: Vec<Vec<f64>> = (0..8)
            .map(|_| (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let spec = PointSpec::from_classification(&points, &labels, 4, 1e-4);
        let mut outcomes = Vec::new();
        for backend in [
            prdnn_lp::LpBackend::DenseTableau,
            prdnn_lp::LpBackend::RevisedSparse,
        ] {
            let config = RepairConfig {
                lp_backend: backend,
                ..RepairConfig::default()
            };
            let outcome = repair_points(&net, 2, &spec, &config).expect("repair must succeed");
            for (p, &label) in points.iter().zip(&labels) {
                assert_eq!(outcome.repaired.classify(p), label, "backend {backend:?}");
            }
            outcomes.push(outcome.stats.delta_l1);
        }
        assert!(
            (outcomes[0] - outcomes[1]).abs() < 1e-6,
            "minimal-repair norms disagree: dense {} vs revised {}",
            outcomes[0],
            outcomes[1]
        );
    }

    #[test]
    fn repair_is_bit_identical_for_every_thread_count() {
        // The `threads` knob may only change wall-clock time: the batched
        // Jacobians come back in key-point order, so the LP — and the
        // minimal delta — are identical bit for bit.
        let mut rng = StdRng::seed_from_u64(57);
        let net = prdnn_nn::Network::mlp(&[4, 12, 10, 3], Activation::Relu, &mut rng);
        let points: Vec<Vec<f64>> = (0..6)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let labels: Vec<usize> = (0..6).map(|i| i % 3).collect();
        let spec = PointSpec::from_classification(&points, &labels, 3, 1e-4);
        let serial = repair_points(
            &net,
            2,
            &spec,
            &RepairConfig {
                threads: Some(1),
                ..RepairConfig::default()
            },
        )
        .expect("serial repair succeeds");
        for threads in [2, 4] {
            let config = RepairConfig {
                threads: Some(threads),
                ..RepairConfig::default()
            };
            let outcome = repair_points(&net, 2, &spec, &config).expect("repair succeeds");
            assert_eq!(outcome.delta, serial.delta, "threads = {threads}");
            assert_eq!(outcome.repaired, serial.repaired, "threads = {threads}");
        }
    }

    #[test]
    fn param_bound_is_respected() {
        let n1 = paper_example::n1();
        let spec = paper_example::equation_2_spec();
        let config = RepairConfig {
            param_bound: Some(10.0),
            ..RepairConfig::default()
        };
        let outcome = repair_points(&n1, 0, &spec, &config).unwrap();
        assert!(outcome.stats.delta_linf <= 10.0 + 1e-7);
        // An impossibly tight bound makes the repair infeasible.
        let tight = RepairConfig {
            param_bound: Some(1e-4),
            ..RepairConfig::default()
        };
        assert_eq!(
            repair_points(&n1, 0, &spec, &tight).unwrap_err(),
            RepairError::Infeasible
        );
    }

    #[test]
    fn stats_are_populated() {
        let n1 = paper_example::n1();
        let spec = paper_example::equation_2_spec();
        let outcome = repair_points(&n1, 0, &spec, &RepairConfig::default()).unwrap();
        assert_eq!(outcome.stats.layer, 0);
        assert_eq!(outcome.stats.num_key_points, 2);
        assert_eq!(outcome.stats.num_constraints, 4);
        assert_eq!(outcome.stats.num_variables, 6); // 3 weights + 3 biases
        assert_eq!(outcome.delta.len(), 6);
        assert!(outcome.stats.delta_linf <= outcome.stats.delta_l1 + 1e-12);
    }
}
