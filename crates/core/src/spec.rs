//! Repair specifications: output polytopes, point specs, polytope specs.

use prdnn_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A polytope `{ y : A y ≤ b }` in the network's *output* space.
///
/// Every repair constraint in the paper has this form (Definition 5.1 /
/// 6.1): each repair point (or input polytope) is required to be mapped into
/// such an output polytope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputPolytope {
    /// Constraint matrix `A` with one row per face.
    pub a: Matrix,
    /// Right-hand side `b`, one entry per face.
    pub b: Vec<f64>,
}

impl OutputPolytope {
    /// Creates the polytope `{ y : A y ≤ b }`.
    ///
    /// # Panics
    ///
    /// Panics if `a.rows() != b.len()`.
    pub fn new(a: Matrix, b: Vec<f64>) -> Self {
        assert_eq!(
            a.rows(),
            b.len(),
            "output polytope: A rows must match b length"
        );
        OutputPolytope { a, b }
    }

    /// Number of faces (rows of `A`).
    pub fn num_faces(&self) -> usize {
        self.b.len()
    }

    /// Output dimension the polytope constrains.
    pub fn output_dim(&self) -> usize {
        self.a.cols()
    }

    /// Whether `y` satisfies `A y ≤ b + tol` for every face.
    pub fn contains(&self, y: &[f64], tol: f64) -> bool {
        let ay = self.a.matvec(y);
        ay.iter().zip(&self.b).all(|(lhs, rhs)| *lhs <= rhs + tol)
    }

    /// The classification constraint "`label` beats every other class by at
    /// least `margin`": for every `j ≠ label`, `y_j − y_label ≤ −margin`.
    ///
    /// This is the constraint used throughout the evaluation (§7) to force a
    /// repair point to be classified correctly.
    ///
    /// # Panics
    ///
    /// Panics if `label >= num_classes` or `num_classes < 2`.
    pub fn classification(label: usize, num_classes: usize, margin: f64) -> Self {
        assert!(
            num_classes >= 2,
            "classification constraint needs at least two classes"
        );
        assert!(label < num_classes, "label out of range");
        let mut a = Matrix::zeros(num_classes - 1, num_classes);
        let mut b = Vec::with_capacity(num_classes - 1);
        let mut row = 0;
        for j in 0..num_classes {
            if j == label {
                continue;
            }
            a[(row, j)] = 1.0;
            a[(row, label)] = -1.0;
            b.push(-margin);
            row += 1;
        }
        OutputPolytope { a, b }
    }

    /// The box constraint `lo_i ≤ y_i ≤ hi_i` for every output component.
    ///
    /// # Panics
    ///
    /// Panics if `lo.len() != hi.len()` or if some `lo_i > hi_i`.
    pub fn interval(lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "interval: lo/hi length mismatch");
        assert!(
            lo.iter().zip(hi).all(|(l, h)| l <= h),
            "interval: lo must not exceed hi"
        );
        let dim = lo.len();
        let mut a = Matrix::zeros(2 * dim, dim);
        let mut b = Vec::with_capacity(2 * dim);
        for i in 0..dim {
            a[(2 * i, i)] = 1.0;
            b.push(hi[i]);
            a[(2 * i + 1, i)] = -1.0;
            b.push(-lo[i]);
        }
        OutputPolytope { a, b }
    }

    /// Convenience for single-output networks: `lo ≤ y ≤ hi`.
    pub fn scalar_interval(lo: f64, hi: f64) -> Self {
        Self::interval(&[lo], &[hi])
    }
}

/// An FNV-1a content hash accumulator for repair specifications.
///
/// The serving layer records which specification produced each published
/// model version; hashing the exact `f64` bit patterns (not a textual
/// rendering) makes the hash stable across processes and identical for
/// bit-identical specs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SpecHasher(u64);

impl SpecHasher {
    pub(crate) fn new() -> Self {
        SpecHasher(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_u64(&mut self, x: u64) {
        for byte in x.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_f64(&mut self, x: f64) {
        self.write_u64(x.to_bits());
    }

    pub(crate) fn write_f64s(&mut self, xs: &[f64]) {
        self.write_u64(xs.len() as u64);
        for &x in xs {
            self.write_f64(x);
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

impl OutputPolytope {
    pub(crate) fn hash_into(&self, h: &mut SpecHasher) {
        h.write_u64(self.a.rows() as u64);
        h.write_u64(self.a.cols() as u64);
        h.write_f64s(self.a.as_slice());
        h.write_f64s(&self.b);
    }
}

/// A pointwise repair specification `(X, A·, b·)` (Definition 5.1): a finite
/// set of input points, each paired with an output polytope it must be mapped
/// into.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PointSpec {
    /// The repair points.
    pub points: Vec<Vec<f64>>,
    /// The output polytope associated with each repair point.
    pub constraints: Vec<OutputPolytope>,
}

impl PointSpec {
    /// Creates an empty specification.
    pub fn new() -> Self {
        PointSpec::default()
    }

    /// Adds one `(point, output polytope)` pair.
    pub fn push(&mut self, point: Vec<f64>, constraint: OutputPolytope) {
        self.points.push(point);
        self.constraints.push(constraint);
    }

    /// Number of repair points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the specification is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Builds the specification "each `points[i]` is classified as
    /// `labels[i]` with the given margin" (the Task 1 / Task 2 form).
    ///
    /// # Panics
    ///
    /// Panics if `points` and `labels` have different lengths.
    pub fn from_classification(
        points: &[Vec<f64>],
        labels: &[usize],
        num_classes: usize,
        margin: f64,
    ) -> Self {
        assert_eq!(points.len(), labels.len(), "points/labels length mismatch");
        let mut spec = PointSpec::new();
        for (p, &label) in points.iter().zip(labels) {
            spec.push(
                p.clone(),
                OutputPolytope::classification(label, num_classes, margin),
            );
        }
        spec
    }

    /// Whether `N ⊩ (X, A·, b·)` (Definition 5.2) for the network evaluated
    /// by `eval`, up to tolerance `tol`.
    pub fn is_satisfied_by(&self, mut eval: impl FnMut(&[f64]) -> Vec<f64>, tol: f64) -> bool {
        self.points
            .iter()
            .zip(&self.constraints)
            .all(|(x, c)| c.contains(&eval(x), tol))
    }

    /// A content hash of the specification: equal for bit-identical specs,
    /// stable across processes (FNV-1a over the exact `f64` bit patterns).
    ///
    /// Used as the `spec_hash` of a repair's
    /// [`RepairProvenance`](crate::RepairProvenance).
    pub fn content_hash(&self) -> u64 {
        let mut h = SpecHasher::new();
        h.write_u64(self.points.len() as u64);
        for (point, constraint) in self.points.iter().zip(&self.constraints) {
            h.write_f64s(point);
            constraint.hash_into(&mut h);
        }
        h.finish()
    }
}

/// A bounded convex input polytope, given by its vertices.
///
/// Two vertices describe a segment (the 1-D lines of Task 2); three or more
/// vertices describe a convex planar polygon in boundary order (the 2-D
/// slices of Task 3).  These are the low-dimensional polytopes for which the
/// linear-region computation is practical (§2, §6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputPolytope {
    /// The polytope's vertices in the network's input space.
    pub vertices: Vec<Vec<f64>>,
}

impl InputPolytope {
    /// A 1-D segment from `start` to `end`.
    pub fn segment(start: Vec<f64>, end: Vec<f64>) -> Self {
        InputPolytope {
            vertices: vec![start, end],
        }
    }

    /// A convex planar polygon with at least three vertices in boundary order.
    ///
    /// # Panics
    ///
    /// Panics if fewer than three vertices are given.
    pub fn polygon(vertices: Vec<Vec<f64>>) -> Self {
        assert!(vertices.len() >= 3, "polygon needs at least three vertices");
        InputPolytope { vertices }
    }

    /// The polytope's affine dimension as used by the repair reduction
    /// (1 for segments, 2 for polygons).
    pub fn dimension(&self) -> usize {
        if self.vertices.len() == 2 {
            1
        } else {
            2
        }
    }

    /// Uniformly samples `count` points from the polytope (used to give the
    /// fine-tuning baselines a finite training set, §7).
    pub fn sample(&self, count: usize, rng: &mut impl rand::Rng) -> Vec<Vec<f64>> {
        let dim = self.vertices[0].len();
        (0..count)
            .map(|_| {
                // Random convex combination of the vertices (uniform over the
                // simplex of weights; adequate for baseline training data).
                let mut weights: Vec<f64> = (0..self.vertices.len())
                    .map(|_| -rng.gen_range(0.0f64..1.0).ln())
                    .collect();
                let total: f64 = weights.iter().sum();
                for w in weights.iter_mut() {
                    *w /= total;
                }
                let mut p = vec![0.0; dim];
                for (w, v) in weights.iter().zip(&self.vertices) {
                    for (pi, vi) in p.iter_mut().zip(v) {
                        *pi += w * vi;
                    }
                }
                p
            })
            .collect()
    }
}

/// A polytope repair specification `(X, A·, b·)` (Definition 6.1): a finite
/// set of input polytopes, each paired with the output polytope *all* of its
/// (infinitely many) points must be mapped into.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PolytopeSpec {
    /// The input polytopes.
    pub polytopes: Vec<InputPolytope>,
    /// The output polytope associated with each input polytope.
    pub constraints: Vec<OutputPolytope>,
}

impl PolytopeSpec {
    /// Creates an empty specification.
    pub fn new() -> Self {
        PolytopeSpec::default()
    }

    /// Adds one `(input polytope, output polytope)` pair.
    pub fn push(&mut self, polytope: InputPolytope, constraint: OutputPolytope) {
        self.polytopes.push(polytope);
        self.constraints.push(constraint);
    }

    /// Number of input polytopes.
    pub fn len(&self) -> usize {
        self.polytopes.len()
    }

    /// Whether the specification is empty.
    pub fn is_empty(&self) -> bool {
        self.polytopes.is_empty()
    }

    /// A content hash of the specification (see [`PointSpec::content_hash`]).
    pub fn content_hash(&self) -> u64 {
        let mut h = SpecHasher::new();
        h.write_u64(self.polytopes.len() as u64);
        for (polytope, constraint) in self.polytopes.iter().zip(&self.constraints) {
            h.write_u64(polytope.vertices.len() as u64);
            for v in &polytope.vertices {
                h.write_f64s(v);
            }
            constraint.hash_into(&mut h);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classification_constraint_shape_and_semantics() {
        let c = OutputPolytope::classification(2, 4, 0.0);
        assert_eq!(c.num_faces(), 3);
        assert_eq!(c.output_dim(), 4);
        assert!(c.contains(&[0.0, 1.0, 5.0, 2.0], 1e-9));
        assert!(!c.contains(&[0.0, 6.0, 5.0, 2.0], 1e-9));
        // With a margin, near-ties are rejected.
        let cm = OutputPolytope::classification(0, 2, 0.5);
        assert!(!cm.contains(&[1.0, 0.8], 1e-9));
        assert!(cm.contains(&[1.0, 0.4], 1e-9));
    }

    #[test]
    fn interval_constraint() {
        let c = OutputPolytope::scalar_interval(-1.0, -0.8);
        assert!(c.contains(&[-0.9], 1e-9));
        assert!(!c.contains(&[-0.5], 1e-9));
        assert!(!c.contains(&[-1.5], 1e-9));
        let box2 = OutputPolytope::interval(&[0.0, -1.0], &[1.0, 1.0]);
        assert!(box2.contains(&[0.5, 0.0], 1e-9));
        assert!(!box2.contains(&[1.5, 0.0], 1e-9));
    }

    #[test]
    fn equation_2_as_a_point_spec() {
        // (−1 ≤ N(0.5) ≤ −0.8) ∧ (−0.2 ≤ N(1.5) ≤ 0), §3.1 Equation 2.
        let mut spec = PointSpec::new();
        spec.push(vec![0.5], OutputPolytope::scalar_interval(-1.0, -0.8));
        spec.push(vec![1.5], OutputPolytope::scalar_interval(-0.2, 0.0));
        assert_eq!(spec.len(), 2);
        // The buggy N1 values (−0.5, −1) do not satisfy it.
        let buggy = |x: &[f64]| vec![if x[0] < 1.0 { -x[0] } else { -1.0 }];
        assert!(!spec.is_satisfied_by(buggy, 1e-9));
        // The repaired values from Figure 5(c) (−0.8, −0.2) do.
        let fixed = |x: &[f64]| vec![if x[0] < 1.0 { -0.8 } else { -0.2 }];
        assert!(spec.is_satisfied_by(fixed, 1e-9));
    }

    #[test]
    fn from_classification_builds_one_constraint_per_point() {
        let spec =
            PointSpec::from_classification(&[vec![0.0, 0.0], vec![1.0, 1.0]], &[0, 1], 3, 0.1);
        assert_eq!(spec.len(), 2);
        assert_eq!(spec.constraints[0].num_faces(), 2);
    }

    #[test]
    fn input_polytope_sampling_stays_inside() {
        let mut rng = StdRng::seed_from_u64(44);
        let segment = InputPolytope::segment(vec![0.0, 0.0], vec![1.0, 2.0]);
        assert_eq!(segment.dimension(), 1);
        for p in segment.sample(50, &mut rng) {
            // Points on the segment satisfy p[1] == 2 p[0] and 0 <= p[0] <= 1.
            assert!((p[1] - 2.0 * p[0]).abs() < 1e-9);
            assert!((-1e-9..=1.0 + 1e-9).contains(&p[0]));
        }
        let triangle = InputPolytope::polygon(vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(triangle.dimension(), 2);
        for p in triangle.sample(50, &mut rng) {
            assert!(p[0] >= -1e-9 && p[1] >= -1e-9 && p[0] + p[1] <= 1.0 + 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn polygon_needs_three_vertices() {
        InputPolytope::polygon(vec![vec![0.0], vec![1.0]]);
    }

    #[test]
    fn content_hash_distinguishes_specs_and_is_stable() {
        let mut spec = PointSpec::new();
        spec.push(vec![0.5], OutputPolytope::scalar_interval(-1.0, -0.8));
        spec.push(vec![1.5], OutputPolytope::scalar_interval(-0.2, 0.0));
        assert_eq!(spec.content_hash(), spec.clone().content_hash());
        // Any bit-level change to a point or a constraint changes the hash.
        let mut moved = spec.clone();
        moved.points[0][0] = 0.5 + f64::EPSILON;
        assert_ne!(spec.content_hash(), moved.content_hash());
        let mut relaxed = spec.clone();
        relaxed.constraints[1] = OutputPolytope::scalar_interval(-0.2, 0.1);
        assert_ne!(spec.content_hash(), relaxed.content_hash());

        let mut poly = PolytopeSpec::new();
        poly.push(
            InputPolytope::segment(vec![0.0], vec![1.0]),
            OutputPolytope::scalar_interval(-1.0, 1.0),
        );
        assert_eq!(poly.content_hash(), poly.clone().content_hash());
        assert_ne!(poly.content_hash(), spec.content_hash());
    }
}
