//! Shared repair machinery: configuration, outcomes, errors, and the
//! key-point LP encoding used by both repair algorithms.

use crate::ddnn::DecoupledNetwork;
use crate::spec::OutputPolytope;
use prdnn_linalg::vector;
use prdnn_lp::{ConstraintOp, LpBackend, LpError, LpProblem, PricingRule, SolveOptions, VarKind};
use serde::json::Value;
use std::time::{Duration, Instant};

/// The norm minimised over the parameter delta `Δ` (Definition 5.3's
/// user-defined measure of repair size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RepairNorm {
    /// `Σ |Δ_i|` — the paper's default choice.
    #[default]
    L1,
    /// `max |Δ_i|`.
    LInf,
}

/// Configuration of the repair LP.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairConfig {
    /// Which norm of `Δ` to minimise.
    pub norm: RepairNorm,
    /// Optional hard bound `|Δ_i| ≤ bound` on every parameter change.
    pub param_bound: Option<f64>,
    /// Iteration limit handed to the simplex solver.
    pub max_lp_iterations: usize,
    /// Which simplex backend solves the repair LP.  The default (`Auto`)
    /// routes the wide, block-sparse LPs this encoding produces to the
    /// sparse revised simplex and small ones to the dense tableau.
    pub lp_backend: LpBackend,
    /// Entering-column pricing rule for the revised simplex backend.
    ///
    /// Precedence mirrors `threads`: an explicit `Dantzig`/`Devex` wins
    /// over the `PRDNN_LP_PRICING` environment variable (the bench
    /// binaries' `--pricing` flag sets it); `Auto` defers to the variable
    /// and then to Devex.  The pricing rule only affects which optimal
    /// vertex the LP walk visits and how fast — repair feasibility, the
    /// minimal norm, and the guarantees are identical for every setting.
    pub lp_pricing: PricingRule,
    /// Thread count for the parallel hot paths (`LinRegions` and the
    /// per-key-point Jacobians).
    ///
    /// Precedence: `Some(n)` wins over the `PRDNN_THREADS` environment
    /// variable (`Some(1)` forces the guaranteed serial path); `None`
    /// defers to `PRDNN_THREADS`, then to the machine's available
    /// parallelism.  The repair result is bit-identical for every setting —
    /// the knob only affects wall-clock time.
    pub threads: Option<usize>,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            norm: RepairNorm::L1,
            param_bound: None,
            max_lp_iterations: 2_000_000,
            lp_backend: LpBackend::Auto,
            lp_pricing: PricingRule::Auto,
            threads: None,
        }
    }
}

/// Wall-clock breakdown of a repair, mirroring the timing split reported in
/// the paper's RQ4 (Figure 7(b) and §7.2/§7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairTiming {
    /// Time spent computing `LinRegions` (polytope repair only).
    pub lin_regions: Duration,
    /// Time spent computing parameter Jacobians.
    pub jacobians: Duration,
    /// Time spent inside the LP solver.
    pub lp: Duration,
    /// Everything else (constraint encoding, applying the delta, ...).
    pub other: Duration,
}

impl RepairTiming {
    /// Total repair time.
    pub fn total(&self) -> Duration {
        self.lin_regions + self.jacobians + self.lp + self.other
    }
}

/// Size statistics of a successful repair.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairStats {
    /// Index of the repaired (value-channel) layer.
    pub layer: usize,
    /// Number of key points encoded in the LP.
    pub num_key_points: usize,
    /// Number of LP constraint rows.
    pub num_constraints: usize,
    /// Number of LP variables (parameters of the repaired layer).
    pub num_variables: usize,
    /// ℓ1 norm of the applied delta.
    pub delta_l1: f64,
    /// ℓ∞ norm of the applied delta.
    pub delta_linf: f64,
    /// Simplex pivots the repair LP took (0 when the dense tableau
    /// backend ran — it is uninstrumented).
    pub lp_pivots: u64,
    /// Basis refactorisations during the repair LP solve.
    pub lp_refactorizations: u64,
    /// Wall-clock breakdown.
    pub timing: RepairTiming,
}

/// A successful repair: the repaired DDNN plus the delta and statistics.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// The repaired network (original activation channel, patched value
    /// channel).
    pub repaired: DecoupledNetwork,
    /// The parameter delta applied to the repaired layer.
    pub delta: Vec<f64>,
    /// Statistics about the repair.
    pub stats: RepairStats,
}

impl RepairOutcome {
    /// The provenance record for publishing this repair as a new model
    /// version: what was repaired, against which spec, under which
    /// configuration, and how large the change was.
    pub fn provenance(&self, spec_hash: u64, config: &RepairConfig) -> RepairProvenance {
        RepairProvenance {
            spec_hash,
            config: config.clone(),
            layer: self.stats.layer,
            num_key_points: self.stats.num_key_points,
            delta_l1: self.stats.delta_l1,
            delta_linf: self.stats.delta_linf,
            lp_pivots: self.stats.lp_pivots,
            lp_refactorizations: self.stats.lp_refactorizations,
        }
    }
}

/// Provenance of a published repair: enough metadata to audit where a
/// model version came from without re-running the repair.
///
/// The serving layer attaches one of these to every model version a
/// successful repair publishes; `spec_hash` is the
/// [`PointSpec::content_hash`](crate::PointSpec::content_hash) /
/// [`PolytopeSpec::content_hash`](crate::PolytopeSpec::content_hash) of the
/// specification the version provably satisfies.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairProvenance {
    /// Content hash of the repair specification.
    pub spec_hash: u64,
    /// The configuration the repair ran under.
    pub config: RepairConfig,
    /// The repaired (value-channel) layer.
    pub layer: usize,
    /// Number of key points encoded in the repair LP.
    pub num_key_points: usize,
    /// ℓ1 norm of the applied delta.
    pub delta_l1: f64,
    /// ℓ∞ norm of the applied delta.
    pub delta_linf: f64,
    /// Simplex pivots the repair LP took (0 for records published before
    /// the counter existed, or when the uninstrumented dense backend ran).
    pub lp_pivots: u64,
    /// Basis refactorisations during the repair LP solve.
    pub lp_refactorizations: u64,
}

impl RepairConfig {
    /// Encodes the configuration as a JSON document — the shared format of
    /// the serve wire protocol and the durable version log.
    ///
    /// `threads` is deliberately **not** encoded: it is an execution knob
    /// owned by whoever runs the repair (the server owns its pool), never
    /// part of what a repair *means*, and results are bit-identical across
    /// every setting.
    pub fn to_json(&self) -> Value {
        Value::obj([
            (
                "norm",
                Value::Str(
                    match self.norm {
                        RepairNorm::L1 => "l1",
                        RepairNorm::LInf => "linf",
                    }
                    .to_owned(),
                ),
            ),
            (
                "param_bound",
                self.param_bound.map_or(Value::Null, Value::Num),
            ),
            (
                "max_lp_iterations",
                Value::Num(self.max_lp_iterations as f64),
            ),
            (
                "lp_backend",
                Value::Str(
                    match self.lp_backend {
                        LpBackend::Auto => "auto",
                        LpBackend::DenseTableau => "dense_tableau",
                        LpBackend::RevisedSparse => "revised_sparse",
                    }
                    .to_owned(),
                ),
            ),
            (
                "lp_pricing",
                Value::Str(
                    match self.lp_pricing {
                        PricingRule::Auto => "auto",
                        PricingRule::Dantzig => "dantzig",
                        PricingRule::Devex => "devex",
                    }
                    .to_owned(),
                ),
            ),
        ])
    }

    /// Decodes a configuration from its JSON document.  Missing fields take
    /// their defaults (`threads` is always `None`; see [`Self::to_json`]).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field.
    pub fn from_json(v: &Value) -> Result<RepairConfig, String> {
        let mut config = RepairConfig::default();
        match v.get("norm").and_then(Value::as_str) {
            Some("l1") | None => config.norm = RepairNorm::L1,
            Some("linf") => config.norm = RepairNorm::LInf,
            Some(other) => return Err(format!("config: unknown norm {other:?}")),
        }
        match v.get("param_bound") {
            None | Some(Value::Null) => {}
            Some(b) => {
                let bound = b.as_f64().ok_or("config: param_bound must be a number")?;
                if bound <= 0.0 {
                    return Err("config: param_bound must be positive".to_owned());
                }
                config.param_bound = Some(bound);
            }
        }
        if let Some(iters) = v.get("max_lp_iterations") {
            config.max_lp_iterations = iters
                .as_usize()
                .ok_or("config: max_lp_iterations must be a non-negative integer")?;
        }
        match v.get("lp_backend").and_then(Value::as_str) {
            Some("auto") | None => config.lp_backend = LpBackend::Auto,
            Some("dense_tableau") => config.lp_backend = LpBackend::DenseTableau,
            Some("revised_sparse") => config.lp_backend = LpBackend::RevisedSparse,
            Some(other) => return Err(format!("config: unknown lp_backend {other:?}")),
        }
        match v.get("lp_pricing").and_then(Value::as_str) {
            Some("auto") | None => config.lp_pricing = PricingRule::Auto,
            Some("dantzig") => config.lp_pricing = PricingRule::Dantzig,
            Some("devex") => config.lp_pricing = PricingRule::Devex,
            Some(other) => return Err(format!("config: unknown lp_pricing {other:?}")),
        }
        Ok(config)
    }
}

impl RepairProvenance {
    /// Encodes the provenance as a JSON document.  The spec hash is written
    /// as a `0x`-prefixed hex string: it is a 64-bit pattern, not a number,
    /// and must survive the JSON `f64` number model untouched.
    pub fn to_json(&self) -> Value {
        Value::obj([
            (
                "spec_hash",
                Value::Str(format!("0x{:016x}", self.spec_hash)),
            ),
            ("config", self.config.to_json()),
            ("layer", Value::Num(self.layer as f64)),
            ("num_key_points", Value::Num(self.num_key_points as f64)),
            ("delta_l1", Value::Num(self.delta_l1)),
            ("delta_linf", Value::Num(self.delta_linf)),
            ("lp_pivots", Value::Num(self.lp_pivots as f64)),
            (
                "lp_refactorizations",
                Value::Num(self.lp_refactorizations as f64),
            ),
        ])
    }

    /// Decodes a provenance record from its JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field.
    pub fn from_json(v: &Value) -> Result<RepairProvenance, String> {
        let spec_hash = v
            .get("spec_hash")
            .and_then(Value::as_str)
            .ok_or("provenance: missing \"spec_hash\"")?;
        let spec_hash = spec_hash
            .strip_prefix("0x")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| format!("provenance: malformed spec_hash {spec_hash:?}"))?;
        Ok(RepairProvenance {
            spec_hash,
            config: RepairConfig::from_json(
                v.get("config").ok_or("provenance: missing \"config\"")?,
            )?,
            layer: v
                .get("layer")
                .and_then(Value::as_usize)
                .ok_or("provenance: missing \"layer\"")?,
            num_key_points: v
                .get("num_key_points")
                .and_then(Value::as_usize)
                .ok_or("provenance: missing \"num_key_points\"")?,
            delta_l1: v
                .get("delta_l1")
                .and_then(Value::as_f64)
                .ok_or("provenance: missing \"delta_l1\"")?,
            delta_linf: v
                .get("delta_linf")
                .and_then(Value::as_f64)
                .ok_or("provenance: missing \"delta_linf\"")?,
            // The LP work counters postdate the first durable records;
            // missing fields decode as 0 so older WAL records keep loading.
            lp_pivots: v
                .get("lp_pivots")
                .and_then(Value::as_f64)
                .map_or(0, |n| n as u64),
            lp_refactorizations: v
                .get("lp_refactorizations")
                .and_then(Value::as_f64)
                .map_or(0, |n| n as u64),
        })
    }
}

/// Errors returned by the repair algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum RepairError {
    /// No single-layer repair of the requested layer satisfies the
    /// specification (the `⊥` of Algorithms 1 and 2).
    Infeasible,
    /// The LP solver exhausted its iteration budget (treated as a timeout in
    /// the evaluation, cf. the starred entries of Table 4).
    LpIterationLimit,
    /// The requested layer has no parameters (max/average pooling layers).
    LayerHasNoParameters {
        /// The offending layer index.
        layer: usize,
    },
    /// The requested layer index is out of range.
    LayerOutOfRange {
        /// The offending layer index.
        layer: usize,
        /// The number of layers in the network.
        num_layers: usize,
    },
    /// Polytope repair was requested on a network with non-piecewise-linear
    /// activations (§6's assumption on the DNN).
    NotPiecewiseLinear,
    /// A specification constraint has the wrong output dimension.
    SpecDimensionMismatch {
        /// The network's output dimension.
        expected: usize,
        /// The constraint's output dimension.
        found: usize,
    },
    /// The specification is empty.
    EmptySpec,
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::Infeasible => {
                write!(f, "no single-layer repair of the requested layer exists")
            }
            RepairError::LpIterationLimit => write!(f, "LP solver iteration limit exceeded"),
            RepairError::LayerHasNoParameters { layer } => {
                write!(f, "layer {layer} has no parameters to repair")
            }
            RepairError::LayerOutOfRange { layer, num_layers } => {
                write!(
                    f,
                    "layer index {layer} out of range (network has {num_layers} layers)"
                )
            }
            RepairError::NotPiecewiseLinear => {
                write!(
                    f,
                    "polytope repair requires piecewise-linear activation functions"
                )
            }
            RepairError::SpecDimensionMismatch { expected, found } => {
                write!(
                    f,
                    "specification constrains {found} outputs but the network has {expected}"
                )
            }
            RepairError::EmptySpec => write!(f, "the repair specification is empty"),
        }
    }
}

impl std::error::Error for RepairError {}

/// One key point of the LP encoding: a value-channel input point, the point
/// whose activation pattern must be used (Appendix B), and the output
/// polytope to satisfy.
#[derive(Debug, Clone)]
pub(crate) struct KeyPoint {
    /// The point fed to the value channel (a repair point or region vertex).
    pub point: Vec<f64>,
    /// The point fed to the activation channel (equal to `point` for
    /// pointwise repair; a region-interior point for polytope repair).
    pub activation_point: Vec<f64>,
    /// The output polytope this key point must be mapped into.
    pub constraint: OutputPolytope,
}

impl KeyPoint {
    /// A pointwise key point (Algorithm 1): the activation pattern is taken
    /// at the repair point itself.
    pub(crate) fn pointwise(point: Vec<f64>, constraint: OutputPolytope) -> Self {
        KeyPoint {
            activation_point: point.clone(),
            point,
            constraint,
        }
    }

    /// A region-vertex key point (Algorithm 2 / Appendix B): the vertex must
    /// be repaired with the activation pattern of *its region*, which is
    /// fixed by a point in the region's relative interior.
    pub(crate) fn region_vertex(
        vertex: Vec<f64>,
        interior: &[f64],
        constraint: &OutputPolytope,
    ) -> Self {
        KeyPoint {
            point: vertex,
            activation_point: interior.to_vec(),
            constraint: constraint.clone(),
        }
    }
}

/// Validates the layer index and spec dimensions shared by both algorithms.
pub(crate) fn validate(
    ddnn: &DecoupledNetwork,
    layer: usize,
    constraints: &[OutputPolytope],
) -> Result<(), RepairError> {
    if layer >= ddnn.num_layers() {
        return Err(RepairError::LayerOutOfRange {
            layer,
            num_layers: ddnn.num_layers(),
        });
    }
    if ddnn.value_network().layer(layer).num_params() == 0 {
        return Err(RepairError::LayerHasNoParameters { layer });
    }
    if constraints.is_empty() {
        return Err(RepairError::EmptySpec);
    }
    for c in constraints {
        if c.output_dim() != ddnn.output_dim() {
            return Err(RepairError::SpecDimensionMismatch {
                expected: ddnn.output_dim(),
                found: c.output_dim(),
            });
        }
    }
    Ok(())
}

/// The core of Algorithm 1: encode every key point's constraint
/// `A (N(x) + J_x Δ) ≤ b` into an LP over `Δ`, solve for the norm-minimal
/// `Δ`, and apply it to the value channel of `ddnn`.
///
/// `pool` is the thread pool already resolved from `config.threads` (the
/// caller may have used it for `LinRegions` first).
pub(crate) fn repair_key_points(
    ddnn: &DecoupledNetwork,
    layer: usize,
    key_points: &[KeyPoint],
    config: &RepairConfig,
    pool: &prdnn_par::ThreadPool,
    lin_regions_time: Duration,
) -> Result<RepairOutcome, RepairError> {
    let start_total = Instant::now();
    let num_params = ddnn.value_network().layer(layer).num_params();

    let mut lp = LpProblem::new();
    let delta_vars = lp.add_vars(num_params, VarKind::Free);
    let mut num_constraints = 0usize;

    // Line 5 of Algorithm 1, batched: the Jacobian of the DDNN output with
    // respect to the repaired layer's value parameters, one per key point
    // (exact by Theorem 4.5).  Key points are independent, so both channels
    // fan across the thread pool; results come back in key-point order, so
    // the LP rows — and hence the repair — are identical for every thread
    // count.
    let pairs: Vec<(&[f64], &[f64])> = key_points
        .iter()
        .map(|kp| (kp.activation_point.as_slice(), kp.point.as_slice()))
        .collect();
    let jac_start = Instant::now();
    let jacobians = ddnn.value_param_jacobian_batch_in(pool, layer, &pairs);
    let bases = ddnn.forward_decoupled_batch_in(pool, &pairs);
    let jacobian_time = jac_start.elapsed();

    for (kp, (jacobian, base)) in key_points.iter().zip(jacobians.iter().zip(&bases)) {
        // Line 6: encode A (base + J Δ) ≤ b as (A J) Δ ≤ b − A base.
        let a_j = kp.constraint.a.matmul(jacobian);
        let a_base = kp.constraint.a.matvec(base);
        for row in 0..kp.constraint.num_faces() {
            let coeffs: Vec<(prdnn_lp::VarId, f64)> = delta_vars
                .iter()
                .enumerate()
                .filter_map(|(p, var)| {
                    let c = a_j[(row, p)];
                    if c == 0.0 {
                        None
                    } else {
                        Some((*var, c))
                    }
                })
                .collect();
            let rhs = kp.constraint.b[row] - a_base[row];
            lp.add_constraint(&coeffs, ConstraintOp::Le, rhs);
            num_constraints += 1;
        }
    }

    if let Some(bound) = config.param_bound {
        for var in &delta_vars {
            lp.add_constraint(&[(*var, 1.0)], ConstraintOp::Le, bound);
            lp.add_constraint(&[(*var, 1.0)], ConstraintOp::Ge, -bound);
            num_constraints += 2;
        }
    }

    match config.norm {
        RepairNorm::L1 => lp.minimize_l1_of(&delta_vars),
        RepairNorm::LInf => lp.minimize_linf_of(&delta_vars),
    }

    // Line 7: solve for the minimal Δ.
    let lp_start = Instant::now();
    let options = SolveOptions {
        backend: config.lp_backend,
        max_iters: config.max_lp_iterations,
        pricing: config.lp_pricing,
    };
    let (solution, lp_stats) = match prdnn_lp::solve_with_stats(&lp, &options) {
        Ok(solved) => solved,
        Err(LpError::Infeasible) => return Err(RepairError::Infeasible),
        Err(LpError::IterationLimit) => return Err(RepairError::LpIterationLimit),
        // Norm objectives are bounded below by zero, so unboundedness cannot
        // occur; treat it as an iteration/robustness failure if it ever does.
        Err(LpError::Unbounded) => return Err(RepairError::LpIterationLimit),
    };
    let lp_time = lp_start.elapsed();

    // Line 9: apply Δ to value layer `layer`.
    let delta = solution.values;
    let mut repaired = ddnn.clone();
    repaired.apply_value_delta(layer, &delta);

    let total = start_total.elapsed() + lin_regions_time;
    let other = total
        .checked_sub(jacobian_time + lp_time + lin_regions_time)
        .unwrap_or(Duration::ZERO);
    Ok(RepairOutcome {
        repaired,
        stats: RepairStats {
            layer,
            num_key_points: key_points.len(),
            num_constraints,
            num_variables: num_params,
            delta_l1: vector::norm_l1(&delta),
            delta_linf: vector::norm_linf(&delta),
            lp_pivots: lp_stats.pivots,
            lp_refactorizations: lp_stats.refactorizations,
            timing: RepairTiming {
                lin_regions: lin_regions_time,
                jacobians: jacobian_time,
                lp: lp_time,
                other,
            },
        },
        delta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_total_sums_components() {
        let t = RepairTiming {
            lin_regions: Duration::from_millis(1),
            jacobians: Duration::from_millis(2),
            lp: Duration::from_millis(3),
            other: Duration::from_millis(4),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
    }

    #[test]
    fn error_display_is_informative() {
        let e = RepairError::LayerOutOfRange {
            layer: 7,
            num_layers: 3,
        };
        assert!(e.to_string().contains("7"));
        assert!(RepairError::Infeasible
            .to_string()
            .contains("no single-layer repair"));
    }

    #[test]
    fn default_config_uses_l1_and_auto_backend() {
        let c = RepairConfig::default();
        assert_eq!(c.norm, RepairNorm::L1);
        assert!(c.param_bound.is_none());
        assert_eq!(c.lp_backend, LpBackend::Auto);
        // Default pricing defers to PRDNN_LP_PRICING, then Devex.
        assert_eq!(c.lp_pricing, PricingRule::Auto);
        // Default thread count defers to PRDNN_THREADS / the machine.
        assert_eq!(c.threads, None);
    }

    #[test]
    fn config_and_provenance_round_trip_through_json() {
        for (norm, bound, backend, pricing) in [
            (RepairNorm::L1, None, LpBackend::Auto, PricingRule::Auto),
            (
                RepairNorm::LInf,
                Some(0.25),
                LpBackend::DenseTableau,
                PricingRule::Dantzig,
            ),
            (
                RepairNorm::L1,
                Some(1e3),
                LpBackend::RevisedSparse,
                PricingRule::Devex,
            ),
        ] {
            let config = RepairConfig {
                norm,
                param_bound: bound,
                max_lp_iterations: 12_345,
                lp_backend: backend,
                lp_pricing: pricing,
                threads: None,
            };
            let back = RepairConfig::from_json(&config.to_json()).unwrap();
            assert_eq!(back, config);
            let provenance = RepairProvenance {
                // Top bit set: must survive as a bit pattern, not an f64.
                spec_hash: 0xdead_beef_0000_0001u64 | (1 << 63),
                config,
                layer: 2,
                num_key_points: 7,
                delta_l1: 0.125,
                delta_linf: 1.0 / 3.0,
                lp_pivots: 42,
                lp_refactorizations: 3,
            };
            let back = RepairProvenance::from_json(&provenance.to_json()).unwrap();
            assert_eq!(back, provenance);
            assert_eq!(back.spec_hash, provenance.spec_hash);

            // Records published before the LP counters existed lack the
            // fields; they must decode as 0, not fail.
            let mut doc = provenance.to_json();
            if let Value::Obj(fields) = &mut doc {
                fields.retain(|(k, _)| k != "lp_pivots" && k != "lp_refactorizations");
            }
            let old = RepairProvenance::from_json(&doc).unwrap();
            assert_eq!(old.lp_pivots, 0);
            assert_eq!(old.lp_refactorizations, 0);
        }
        assert!(RepairProvenance::from_json(&Value::obj([])).is_err());
        assert!(RepairConfig::from_json(&Value::obj([("norm", Value::Str("l7".into()))])).is_err());
    }
}
