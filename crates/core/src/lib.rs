//! Provable repair of deep neural networks — the PRDNN contribution
//! (Sotoudeh & Thakur, PLDI 2021).
//!
//! This crate implements the paper's three contributions:
//!
//! 1. **Decoupled DNNs** ([`DecoupledNetwork`], §4): a network architecture
//!    with separate *activation* and *value* weight channels such that the
//!    output is exactly linear in any single value-channel layer's
//!    parameters (Theorem 4.5) and value-channel edits never move the
//!    network's linear regions (Theorem 4.6).
//! 2. **Provable Point Repair** ([`repair_points`], Algorithm 1): given a
//!    finite set of points and an output polytope for each, find the
//!    ℓ1/ℓ∞-minimal single-layer change satisfying every constraint — or
//!    prove that none exists — by solving one linear program.
//! 3. **Provable Polytope Repair** ([`repair_polytopes`], Algorithm 2): the
//!    same, but the specification quantifies over *infinitely many* points in
//!    bounded convex input polytopes; for piecewise-linear networks this
//!    reduces exactly to point repair at the vertices of the network's
//!    linear regions.
//!
//! # Quickstart
//!
//! ```
//! use prdnn_core::{paper_example, repair_points, RepairConfig};
//!
//! # fn main() -> Result<(), prdnn_core::RepairError> {
//! let buggy = paper_example::n1();
//! let spec = paper_example::equation_2_spec();
//! let outcome = repair_points(&buggy, 0, &spec, &RepairConfig::default())?;
//! assert!(spec.is_satisfied_by(|x| outcome.repaired.forward(x), 1e-6));
//! # Ok(())
//! # }
//! ```

mod ddnn;
pub mod paper_example;
mod point_repair;
mod polytope_repair;
mod repair;
mod spec;

pub use ddnn::DecoupledNetwork;
pub use point_repair::{repair_points, repair_points_ddnn, repair_points_ddnn_in};
pub use polytope_repair::{repair_polytopes, repair_polytopes_ddnn, PolytopeRepairOutcome};
pub use prdnn_lp::{LpBackend, PricingRule};
pub use repair::{
    RepairConfig, RepairError, RepairNorm, RepairOutcome, RepairProvenance, RepairStats,
    RepairTiming,
};
pub use spec::{InputPolytope, OutputPolytope, PointSpec, PolytopeSpec};
