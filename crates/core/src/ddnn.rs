//! Decoupled Deep Neural Networks (DDNNs), the paper's §4.
//!
//! A DDNN carries two copies of the network's weights: the *activation
//! channel* decides which linear piece of each activation function is used
//! (it controls the positions of the linear regions), while the *value
//! channel* decides the affine map inside each piece.  Repairing only the
//! value channel therefore changes the network's outputs *linearly*
//! (Theorem 4.5) without moving its linear regions (Theorem 4.6) — the two
//! facts the repair algorithms rely on.

use prdnn_linalg::{vector, Matrix};
use prdnn_nn::{FlatBatch, Layer, Network};
use serde::{Deserialize, Serialize};

/// Splits `(act, val)` input pairs into the two channel batches, stored
/// flat so every dense layer below is one GEMM call per channel.
fn channel_batches(in_dim: usize, pairs: &[(&[f64], &[f64])]) -> (FlatBatch, FlatBatch) {
    let mut v_act = FlatBatch::with_capacity(in_dim, pairs.len());
    let mut v_val = FlatBatch::with_capacity(in_dim, pairs.len());
    for (a, v) in pairs {
        v_act.push_row(a);
        v_val.push_row(v);
    }
    (v_act, v_val)
}

/// Applies per-point linearisations to a flat batch of value-channel
/// pre-activations (the `v_val = lin(z_val)` step of Definition 4.3).
fn apply_lins_flat(
    lins: &[prdnn_nn::ActivationLinearization],
    z_val: &FlatBatch,
    out_dim: usize,
) -> FlatBatch {
    let mut out = FlatBatch::with_capacity(out_dim, z_val.count());
    for (lin, z) in lins.iter().zip(z_val.rows()) {
        out.push_row(&lin.apply(z));
    }
    out
}

/// A Decoupled DNN (Definition 4.1): an activation-channel network and a
/// value-channel network with identical architectures.
///
/// # Example
///
/// Every DNN converts to an equivalent DDNN (Theorem 4.4):
///
/// ```
/// use prdnn_core::DecoupledNetwork;
/// use prdnn_linalg::Matrix;
/// use prdnn_nn::{Activation, Layer, Network};
///
/// let net = Network::new(vec![
///     Layer::dense(Matrix::from_rows(&[vec![1.0], vec![-1.0]]), vec![0.0, 0.0], Activation::Relu),
///     Layer::dense(Matrix::from_rows(&[vec![1.0, 1.0]]), vec![0.0], Activation::Identity),
/// ]);
/// let ddnn = DecoupledNetwork::from_network(&net);
/// assert_eq!(ddnn.forward(&[0.7]), net.forward(&[0.7]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecoupledNetwork {
    activation: Network,
    value: Network,
}

impl DecoupledNetwork {
    /// Builds the DDNN `(N, N)` equivalent to the DNN `N` (Theorem 4.4).
    pub fn from_network(net: &Network) -> Self {
        DecoupledNetwork {
            activation: net.clone(),
            value: net.clone(),
        }
    }

    /// Builds a DDNN from separate activation- and value-channel networks.
    ///
    /// # Panics
    ///
    /// Panics if the two networks do not have the same architecture (same
    /// number of layers with matching input/output dimensions and parameter
    /// counts).
    pub fn new(activation: Network, value: Network) -> Self {
        assert_eq!(
            activation.num_layers(),
            value.num_layers(),
            "DDNN channels must have the same number of layers"
        );
        for i in 0..activation.num_layers() {
            let (a, v) = (activation.layer(i), value.layer(i));
            assert_eq!(a.input_dim(), v.input_dim(), "layer {i}: input dims differ");
            assert_eq!(
                a.output_dim(),
                v.output_dim(),
                "layer {i}: output dims differ"
            );
            assert_eq!(
                a.num_params(),
                v.num_params(),
                "layer {i}: parameter counts differ"
            );
        }
        DecoupledNetwork { activation, value }
    }

    /// The activation-channel network.
    pub fn activation_network(&self) -> &Network {
        &self.activation
    }

    /// The value-channel network.
    pub fn value_network(&self) -> &Network {
        &self.value
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.activation.num_layers()
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.activation.input_dim()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.activation.output_dim()
    }

    /// Indices of layers with parameters (candidates for repair).
    pub fn repairable_layers(&self) -> Vec<usize> {
        self.value.repairable_layers()
    }

    /// Adds `delta` to the parameters of value-channel layer `layer`
    /// (Algorithm 1, line 9).  The activation channel is left untouched.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds or `delta` has the wrong length.
    pub fn apply_value_delta(&mut self, layer: usize, delta: &[f64]) {
        self.value.layer_mut(layer).add_to_params(delta);
    }

    /// Evaluates the DDNN on `input` (Definition 4.3), feeding the same
    /// vector to both channels.
    pub fn forward(&self, input: &[f64]) -> Vec<f64> {
        self.forward_decoupled(input, input)
    }

    /// Evaluates the DDNN feeding `act_input` to the activation channel and
    /// `val_input` to the value channel.
    ///
    /// The standard semantics of Definition 4.3 use `act_input == val_input`;
    /// the split form exists for the polytope-repair key points, which are
    /// evaluated with the activation pattern of their region's *interior*
    /// (Appendix B).
    ///
    /// # Panics
    ///
    /// Panics if the inputs do not match the network's input dimension.
    pub fn forward_decoupled(&self, act_input: &[f64], val_input: &[f64]) -> Vec<f64> {
        let mut v_act = act_input.to_vec();
        let mut v_val = val_input.to_vec();
        for i in 0..self.num_layers() {
            let layer_a = self.activation.layer(i);
            let layer_v = self.value.layer(i);
            let z_act = layer_a.preactivation(&v_act);
            let z_val = layer_v.preactivation(&v_val);
            // The value channel applies the linearisation of σ around the
            // activation channel's pre-activation (Definition 4.3).
            let lin = layer_a.linearize_activation(&z_act);
            v_val = lin.apply(&z_val);
            v_act = layer_a.activate(&z_act);
        }
        v_val
    }

    /// The batch form of [`Self::forward_decoupled`]: evaluates the DDNN on
    /// every `(act_input, val_input)` pair in `pairs`.
    ///
    /// The whole batch is pushed through one layer at a time — mirroring
    /// [`prdnn_nn::Network::forward_batch`] — so per-layer setup (pooling
    /// window enumeration in the batched linearisation) is paid once per
    /// layer instead of once per point.  Per-point results are identical to
    /// [`Self::forward_decoupled`].
    ///
    /// # Panics
    ///
    /// Panics if any input has the wrong dimension.
    pub fn forward_decoupled_batch(&self, pairs: &[(&[f64], &[f64])]) -> Vec<Vec<f64>> {
        let (mut v_act, mut v_val) = channel_batches(self.input_dim(), pairs);
        for i in 0..self.num_layers() {
            let layer_a = self.activation.layer(i);
            let layer_v = self.value.layer(i);
            let z_act = layer_a.preactivation_batch_flat(&v_act);
            let z_val = layer_v.preactivation_batch_flat(&v_val);
            let lins = layer_a.linearize_activation_batch_flat(&z_act);
            v_val = apply_lins_flat(&lins, &z_val, layer_a.output_dim());
            v_act = layer_a.activate_batch_flat(&z_act);
        }
        v_val.to_rows()
    }

    /// [`Self::forward_decoupled_batch`] fanned across a thread pool.
    ///
    /// The pairs are cut into contiguous chunks, each evaluated with the
    /// serial batch entry point on a pool worker and spliced back in input
    /// order, so the output is bit-identical for every thread count.
    pub fn forward_decoupled_batch_in(
        &self,
        pool: &prdnn_par::ThreadPool,
        pairs: &[(&[f64], &[f64])],
    ) -> Vec<Vec<f64>> {
        let chunk_size = pool.even_chunk_size(pairs.len());
        pool.par_chunks(pairs, chunk_size, |chunk| {
            self.forward_decoupled_batch(chunk)
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Predicted class label of the DDNN output (argmax).
    pub fn classify(&self, input: &[f64]) -> usize {
        vector::argmax(&self.forward(input))
    }

    /// Classification accuracy of the DDNN on a labelled dataset.
    ///
    /// Returns 1.0 on an empty dataset.
    pub fn accuracy(&self, inputs: &[Vec<f64>], labels: &[usize]) -> f64 {
        if inputs.is_empty() {
            return 1.0;
        }
        let correct = inputs
            .iter()
            .zip(labels)
            .filter(|(x, &y)| self.classify(x) == y)
            .count();
        correct as f64 / inputs.len() as f64
    }

    /// The Jacobian of the DDNN output with respect to the parameters of
    /// value-channel layer `layer` (the `J_x` of Algorithm 1, line 5),
    /// evaluated at activation input `act_input` and value input `val_input`.
    ///
    /// By Theorem 4.5 the DDNN output is *exactly*
    /// `forward_decoupled(act, val) + J · Δ` after adding `Δ` to that layer's
    /// value parameters, so this Jacobian is not an approximation.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds or the inputs have wrong dimension.
    pub fn value_param_jacobian(
        &self,
        layer: usize,
        act_input: &[f64],
        val_input: &[f64],
    ) -> Matrix {
        assert!(
            layer < self.num_layers(),
            "layer index {layer} out of bounds"
        );
        // Forward both channels, remembering the activation pre-activations
        // (they fix every linearisation) and the value-channel layer inputs.
        let mut v_act = act_input.to_vec();
        let mut v_val = val_input.to_vec();
        let mut act_preacts: Vec<Vec<f64>> = Vec::with_capacity(self.num_layers());
        let mut val_inputs: Vec<Vec<f64>> = Vec::with_capacity(self.num_layers());
        for i in 0..self.num_layers() {
            let layer_a = self.activation.layer(i);
            let layer_v = self.value.layer(i);
            val_inputs.push(v_val.clone());
            let z_act = layer_a.preactivation(&v_act);
            let z_val = layer_v.preactivation(&v_val);
            let lin = layer_a.linearize_activation(&z_act);
            v_val = lin.apply(&z_val);
            v_act = layer_a.activate(&z_act);
            act_preacts.push(z_act);
        }

        // Backward accumulation of M = ∂ output / ∂ v_val^(j), starting from
        // the output (identity) down to the repaired layer's output.
        let out_dim = self.output_dim();
        let mut m = Matrix::identity(out_dim);
        for j in (layer + 1..self.num_layers()).rev() {
            let layer_a = self.activation.layer(j);
            let layer_v = self.value.layer(j);
            let lin = layer_a.linearize_activation(&act_preacts[j]);
            // v^(j) = lin(z^(j)), z^(j) = W_v^(j) v^(j-1) + b.
            let dz = lin.vjp(&m);
            m = layer_v.preact_input_vjp(&dz);
        }
        // Through the repaired layer itself: output depends on its
        // pre-activation via the linearisation, and the pre-activation
        // depends linearly on the parameters.
        let layer_a = self.activation.layer(layer);
        let layer_v = self.value.layer(layer);
        let lin = layer_a.linearize_activation(&act_preacts[layer]);
        let dz = lin.vjp(&m);
        layer_v.preact_param_vjp(&dz, &val_inputs[layer])
    }

    /// The batch form of [`Self::value_param_jacobian`]: one Jacobian per
    /// `(act_input, val_input)` pair, all for the same repaired `layer`.
    ///
    /// The forward phase runs batched (per-layer setup shared across the
    /// whole batch, like [`Self::forward_decoupled_batch`]); the backward
    /// accumulation is inherently per point and reuses the linearisations
    /// recorded on the way forward.  Per-point results are identical to
    /// [`Self::value_param_jacobian`].
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds or any input has the wrong
    /// dimension.
    pub fn value_param_jacobian_batch(
        &self,
        layer: usize,
        pairs: &[(&[f64], &[f64])],
    ) -> Vec<Matrix> {
        assert!(
            layer < self.num_layers(),
            "layer index {layer} out of bounds"
        );
        // Batched forward pass: record every layer's activation-channel
        // linearisations (they fix the backward pass) and the value-channel
        // inputs of the repaired layer.  The value channel only needs to be
        // propagated *up to* the repaired layer — beyond it the Jacobian
        // depends on the activation channel alone.
        let (mut v_act, mut v_val) = channel_batches(self.input_dim(), pairs);
        let mut lins_per_layer: Vec<Vec<prdnn_nn::ActivationLinearization>> =
            Vec::with_capacity(self.num_layers());
        let mut repaired_layer_inputs = FlatBatch::default();
        for i in 0..self.num_layers() {
            let layer_a = self.activation.layer(i);
            let z_act = layer_a.preactivation_batch_flat(&v_act);
            let lins = layer_a.linearize_activation_batch_flat(&z_act);
            if i == layer {
                repaired_layer_inputs = std::mem::take(&mut v_val);
            } else if i < layer {
                let layer_v = self.value.layer(i);
                let z_val = layer_v.preactivation_batch_flat(&v_val);
                v_val = apply_lins_flat(&lins, &z_val, layer_a.output_dim());
            }
            v_act = layer_a.activate_batch_flat(&z_act);
            lins_per_layer.push(lins);
        }

        // Backward accumulation per point (see `value_param_jacobian`).
        let out_dim = self.output_dim();
        (0..pairs.len())
            .map(|p| {
                let mut m = Matrix::identity(out_dim);
                for j in (layer + 1..self.num_layers()).rev() {
                    let dz = lins_per_layer[j][p].vjp(&m);
                    m = self.value.layer(j).preact_input_vjp(&dz);
                }
                let dz = lins_per_layer[layer][p].vjp(&m);
                self.value
                    .layer(layer)
                    .preact_param_vjp(&dz, repaired_layer_inputs.row(p))
            })
            .collect()
    }

    /// [`Self::value_param_jacobian_batch`] fanned across a thread pool,
    /// chunk results spliced back in input order (bit-identical for every
    /// thread count).
    ///
    /// This is the entry point the repair loop uses: Algorithm 1 computes
    /// one Jacobian per key point, and the key points are independent.
    pub fn value_param_jacobian_batch_in(
        &self,
        pool: &prdnn_par::ThreadPool,
        layer: usize,
        pairs: &[(&[f64], &[f64])],
    ) -> Vec<Matrix> {
        let chunk_size = pool.even_chunk_size(pairs.len());
        pool.par_chunks(pairs, chunk_size, |chunk| {
            self.value_param_jacobian_batch(layer, chunk)
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Converts the DDNN back to a plain [`Network`] **when the two channels
    /// are identical** (e.g. before any repair), which is the inverse of
    /// [`Self::from_network`].
    ///
    /// Returns `None` when the channels differ (a repaired DDNN is generally
    /// not representable as a standard DNN with the same architecture).
    pub fn into_network(self) -> Option<Network> {
        if self.activation == self.value {
            Some(self.activation)
        } else {
            None
        }
    }

    /// Access to a value-channel layer (e.g. to inspect a repair).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of bounds.
    pub fn value_layer(&self, layer: usize) -> &Layer {
        self.value.layer(layer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prdnn_linalg::approx_eq_slice;
    use prdnn_nn::Activation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(rng: &mut StdRng, dim: usize, count: usize) -> Vec<Vec<f64>> {
        (0..count)
            .map(|_| (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect())
            .collect()
    }

    #[test]
    fn theorem_4_4_ddnn_equals_dnn() {
        let mut rng = StdRng::seed_from_u64(17);
        for activation in [Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            let net = Network::mlp(&[3, 7, 6, 2], activation, &mut rng);
            let ddnn = DecoupledNetwork::from_network(&net);
            for p in random_points(&mut rng, 3, 25) {
                assert!(
                    approx_eq_slice(&ddnn.forward(&p), &net.forward(&p), 1e-9),
                    "DDNN must equal the DNN it was built from ({activation})"
                );
            }
        }
    }

    #[test]
    fn theorem_4_5_output_is_linear_in_value_layer_params() {
        let mut rng = StdRng::seed_from_u64(23);
        for activation in [Activation::Relu, Activation::Tanh] {
            let net = Network::mlp(&[3, 6, 5, 2], activation, &mut rng);
            let ddnn = DecoupledNetwork::from_network(&net);
            for layer in 0..ddnn.num_layers() {
                let x: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.5..1.5)).collect();
                let jac = ddnn.value_param_jacobian(layer, &x, &x);
                let base = ddnn.forward(&x);
                // Apply a *large* random delta: linearity must hold exactly,
                // not just to first order.
                let delta: Vec<f64> = (0..ddnn.value_network().layer(layer).num_params())
                    .map(|_| rng.gen_range(-0.8..0.8))
                    .collect();
                let mut repaired = ddnn.clone();
                repaired.apply_value_delta(layer, &delta);
                let actual = repaired.forward(&x);
                let predicted: Vec<f64> = (0..base.len())
                    .map(|o| {
                        base[o]
                            + (0..delta.len())
                                .map(|p| jac[(o, p)] * delta[p])
                                .sum::<f64>()
                    })
                    .collect();
                assert!(
                    approx_eq_slice(&actual, &predicted, 1e-7),
                    "layer {layer} ({activation}): exact linearity violated"
                );
            }
        }
    }

    #[test]
    fn theorem_4_6_value_edits_do_not_move_linear_regions() {
        // Mirrors §3 Figure 4: changing a value-channel weight changes the
        // affine map inside regions but not the regions themselves, i.e. the
        // activation channel's pattern at any point is unchanged.
        let mut rng = StdRng::seed_from_u64(31);
        let net = Network::mlp(&[2, 8, 6, 2], Activation::Relu, &mut rng);
        let mut ddnn = DecoupledNetwork::from_network(&net);
        let layer = 1;
        let delta: Vec<f64> = (0..ddnn.value_network().layer(layer).num_params())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        ddnn.apply_value_delta(layer, &delta);
        for p in random_points(&mut rng, 2, 40) {
            assert_eq!(
                ddnn.activation_network().activation_pattern(&p),
                net.activation_pattern(&p),
                "activation patterns must be preserved"
            );
        }
    }

    #[test]
    fn decoupled_inputs_use_the_activation_channel_pattern() {
        // With a ReLU that is *inactive* for the activation input but would
        // be active for the value input, the value must be masked to zero.
        let net = Network::new(vec![
            Layer::dense(Matrix::from_rows(&[vec![1.0]]), vec![0.0], Activation::Relu),
            Layer::dense(
                Matrix::from_rows(&[vec![1.0]]),
                vec![0.0],
                Activation::Identity,
            ),
        ]);
        let ddnn = DecoupledNetwork::from_network(&net);
        // Activation input -1 => ReLU inactive => output 0 regardless of the
        // value input.
        assert_eq!(ddnn.forward_decoupled(&[-1.0], &[5.0]), vec![0.0]);
        // Activation input +1 => ReLU active (identity) => value passes through.
        assert_eq!(ddnn.forward_decoupled(&[1.0], &[5.0]), vec![5.0]);
    }

    #[test]
    fn into_network_roundtrip() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Network::mlp(&[2, 4, 2], Activation::Relu, &mut rng);
        let ddnn = DecoupledNetwork::from_network(&net);
        assert_eq!(ddnn.clone().into_network(), Some(net));
        let mut edited = ddnn;
        let n = edited.value_network().layer(0).num_params();
        edited.apply_value_delta(0, &vec![0.5; n]);
        assert_eq!(edited.into_network(), None);
    }

    #[test]
    fn batched_channels_match_per_point_calls_for_every_thread_count() {
        // The batch entry points must be bit-identical to the per-point
        // channels — serially and on a real pool (the repair loop relies on
        // this to keep the LP, and so the repair, deterministic).
        let mut rng = StdRng::seed_from_u64(41);
        let net = Network::mlp(&[3, 8, 6, 2], Activation::Relu, &mut rng);
        let ddnn = DecoupledNetwork::from_network(&net);
        let acts = random_points(&mut rng, 3, 13);
        let vals = random_points(&mut rng, 3, 13);
        let pairs: Vec<(&[f64], &[f64])> = acts
            .iter()
            .zip(&vals)
            .map(|(a, v)| (a.as_slice(), v.as_slice()))
            .collect();

        let expected_fwd: Vec<Vec<f64>> = pairs
            .iter()
            .map(|(a, v)| ddnn.forward_decoupled(a, v))
            .collect();
        assert_eq!(ddnn.forward_decoupled_batch(&pairs), expected_fwd);

        for layer in 0..ddnn.num_layers() {
            let expected_jac: Vec<Matrix> = pairs
                .iter()
                .map(|(a, v)| ddnn.value_param_jacobian(layer, a, v))
                .collect();
            assert_eq!(ddnn.value_param_jacobian_batch(layer, &pairs), expected_jac);
            for threads in [1, 2, 4] {
                let pool = prdnn_par::ThreadPool::new(threads);
                assert_eq!(
                    ddnn.forward_decoupled_batch_in(&pool, &pairs),
                    expected_fwd,
                    "forward, threads = {threads}"
                );
                assert_eq!(
                    ddnn.value_param_jacobian_batch_in(&pool, layer, &pairs),
                    expected_jac,
                    "jacobian, layer {layer}, threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn batched_channels_work_with_pooling_layers() {
        // Max pooling exercises the shared-window batched linearisation.
        let net = Network::new(vec![
            Layer::MaxPool2d(prdnn_nn::Pool2dLayer {
                channels: 1,
                in_height: 2,
                in_width: 4,
                pool_h: 2,
                pool_w: 2,
                stride: 2,
            }),
            Layer::dense(
                Matrix::from_rows(&[vec![1.0, -1.0], vec![0.5, 2.0]]),
                vec![0.1, -0.2],
                Activation::Relu,
            ),
        ]);
        let ddnn = DecoupledNetwork::from_network(&net);
        let mut rng = StdRng::seed_from_u64(7);
        let acts = random_points(&mut rng, 8, 9);
        let vals = random_points(&mut rng, 8, 9);
        let pairs: Vec<(&[f64], &[f64])> = acts
            .iter()
            .zip(&vals)
            .map(|(a, v)| (a.as_slice(), v.as_slice()))
            .collect();
        let expected: Vec<Vec<f64>> = pairs
            .iter()
            .map(|(a, v)| ddnn.forward_decoupled(a, v))
            .collect();
        assert_eq!(ddnn.forward_decoupled_batch(&pairs), expected);
        let expected_jac: Vec<Matrix> = pairs
            .iter()
            .map(|(a, v)| ddnn.value_param_jacobian(1, a, v))
            .collect();
        assert_eq!(ddnn.value_param_jacobian_batch(1, &pairs), expected_jac);
    }

    #[test]
    fn jacobian_shape() {
        let mut rng = StdRng::seed_from_u64(19);
        let net = Network::mlp(&[4, 6, 3], Activation::Relu, &mut rng);
        let ddnn = DecoupledNetwork::from_network(&net);
        let x = vec![0.1, -0.2, 0.3, 0.4];
        let j0 = ddnn.value_param_jacobian(0, &x, &x);
        assert_eq!(j0.rows(), 3);
        assert_eq!(j0.cols(), 4 * 6 + 6);
        let j1 = ddnn.value_param_jacobian(1, &x, &x);
        assert_eq!(j1.cols(), 6 * 3 + 3);
    }
}
