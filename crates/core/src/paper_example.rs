//! The paper's running example (§3, Figures 3–5): the tiny ReLU networks
//! `N1`/`N2` and the specifications of Equations 2 and 3.
//!
//! These are exported so the examples, integration tests, and the
//! figure-regeneration binaries all share one faithful construction.

use crate::spec::{InputPolytope, OutputPolytope, PointSpec, PolytopeSpec};
use prdnn_linalg::Matrix;
use prdnn_nn::{Activation, Layer, Network};

/// The DNN `N1` of Figure 3(a): one input `x`, three ReLU hidden nodes, one
/// output `y`.
///
/// On the domain `[-1, 2]` it has the three linear regions of Equation (1)
/// and satisfies `N1(0.5) = -0.5`, `N1(1.5) = -1`.
pub fn n1() -> Network {
    Network::new(vec![
        Layer::dense(
            Matrix::from_rows(&[vec![-1.0], vec![1.0], vec![1.0]]),
            vec![0.0, 0.0, -1.0],
            Activation::Relu,
        ),
        Layer::dense(
            Matrix::from_rows(&[vec![-1.0, -1.0, 1.0]]),
            vec![0.0],
            Activation::Identity,
        ),
    ])
}

/// The DNN `N2` of Figure 3(b): `N1` with the weight on `x → h3` changed
/// from 1 to 2, illustrating how a coupled weight change moves the linear
/// regions themselves.
pub fn n2() -> Network {
    Network::new(vec![
        Layer::dense(
            Matrix::from_rows(&[vec![-1.0], vec![1.0], vec![2.0]]),
            vec![0.0, 0.0, -1.0],
            Activation::Relu,
        ),
        Layer::dense(
            Matrix::from_rows(&[vec![-1.0, -1.0, 1.0]]),
            vec![0.0],
            Activation::Identity,
        ),
    ])
}

/// The pointwise specification of Equation 2:
/// `(−1 ≤ N'(0.5) ≤ −0.8) ∧ (−0.2 ≤ N'(1.5) ≤ 0)`.
pub fn equation_2_spec() -> PointSpec {
    let mut spec = PointSpec::new();
    spec.push(vec![0.5], OutputPolytope::scalar_interval(-1.0, -0.8));
    spec.push(vec![1.5], OutputPolytope::scalar_interval(-0.2, 0.0));
    spec
}

/// The polytope specification of Equation 3:
/// `∀ x ∈ [0.5, 1.5]. −0.8 ≤ N'(x) ≤ −0.4`.
pub fn equation_3_spec() -> PolytopeSpec {
    let mut spec = PolytopeSpec::new();
    spec.push(
        InputPolytope::segment(vec![0.5], vec![1.5]),
        OutputPolytope::scalar_interval(-0.8, -0.4),
    );
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn n1_and_n2_match_the_paper() {
        let n1 = n1();
        assert!((n1.forward(&[0.5])[0] + 0.5).abs() < 1e-12);
        assert!((n1.forward(&[1.5])[0] + 1.0).abs() < 1e-12);
        // N2 moves the region boundary from x = 1 to x = 0.5 (§3.1 item 2):
        // LinRegions(N2, [-1,2]) = {[-1,0], [0,0.5], [0.5,2]}.
        let n2 = n2();
        let ts = prdnn_syrenn::exact_line(&n2, &[-1.0], &[2.0]).unwrap();
        let xs: Vec<f64> = ts.iter().map(|t| -1.0 + 3.0 * t).collect();
        assert_eq!(xs.len(), 4);
        assert!((xs[1] - 0.0).abs() < 1e-9);
        assert!((xs[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn specs_reject_the_buggy_network() {
        let n1 = n1();
        assert!(!equation_2_spec().is_satisfied_by(|x| n1.forward(x), 1e-9));
    }
}
