//! Provable Polytope Repair (Algorithm 2, §6).

use crate::ddnn::DecoupledNetwork;
use crate::repair::{
    repair_key_points, validate, KeyPoint, RepairConfig, RepairError, RepairOutcome,
};
use crate::spec::PolytopeSpec;
use prdnn_nn::Network;
use prdnn_syrenn::{lin_regions_batch_in, SyrennError};
use std::time::{Duration, Instant};

/// A successful polytope repair: the point-repair outcome plus the
/// linear-region statistics of the reduction.
#[derive(Debug, Clone)]
pub struct PolytopeRepairOutcome {
    /// The underlying point-repair outcome (repaired DDNN, delta, stats).
    pub outcome: RepairOutcome,
    /// Number of linear regions found across all input polytopes.
    pub num_regions: usize,
    /// Number of key points (region vertices) fed to point repair — the
    /// "Points" column of Table 2.
    pub num_key_points: usize,
}

/// Provable Polytope Repair (Algorithm 2).
///
/// For every input polytope `P` in the specification, computes
/// `LinRegions(N, P)` (via the SyReNN-style subdivision), collects the
/// vertices of every region as key points — each paired with its region's
/// interior point so the Jacobian uses the correct activation pattern
/// (Appendix B) — and hands the resulting *pointwise* specification to
/// Algorithm 1.  By Theorem 6.4, the returned network satisfies the polytope
/// specification on **all** (infinitely many) points of every `P`, and the
/// delta is a minimal layer repair.
///
/// # Errors
///
/// * [`RepairError::NotPiecewiseLinear`] — the network uses Tanh/Sigmoid
///   activations (the §6 assumption is violated).
/// * All errors of [`crate::repair_points`].
///
/// # Example
///
/// ```
/// use prdnn_core::{repair_polytopes, InputPolytope, OutputPolytope, PolytopeSpec, RepairConfig};
/// use prdnn_linalg::Matrix;
/// use prdnn_nn::{Activation, Layer, Network};
///
/// # fn main() -> Result<(), prdnn_core::RepairError> {
/// // The paper's Equation 3: ∀ x ∈ [0.5, 1.5]. -0.8 ≤ N'(x) ≤ -0.4.
/// let n1 = Network::new(vec![
///     Layer::dense(Matrix::from_rows(&[vec![-1.0], vec![1.0], vec![1.0]]),
///                  vec![0.0, 0.0, -1.0], Activation::Relu),
///     Layer::dense(Matrix::from_rows(&[vec![-1.0, -1.0, 1.0]]), vec![0.0], Activation::Identity),
/// ]);
/// let mut spec = PolytopeSpec::new();
/// spec.push(
///     InputPolytope::segment(vec![0.5], vec![1.5]),
///     OutputPolytope::scalar_interval(-0.8, -0.4),
/// );
/// let result = repair_polytopes(&n1, 0, &spec, &RepairConfig::default())?;
/// let y = result.outcome.repaired.forward(&[1.2]);
/// assert!(y[0] <= -0.4 + 1e-6 && y[0] >= -0.8 - 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn repair_polytopes(
    net: &Network,
    layer: usize,
    spec: &PolytopeSpec,
    config: &RepairConfig,
) -> Result<PolytopeRepairOutcome, RepairError> {
    let ddnn = DecoupledNetwork::from_network(net);
    repair_polytopes_ddnn(net, &ddnn, layer, spec, config)
}

/// Provable Polytope Repair starting from an existing DDNN whose activation
/// channel is `activation_net`.
///
/// The linear regions are those of the *activation channel*, which by
/// Theorem 4.6 are also the linear regions of any value-channel repair of the
/// DDNN.
///
/// # Errors
///
/// See [`repair_polytopes`].
pub fn repair_polytopes_ddnn(
    activation_net: &Network,
    ddnn: &DecoupledNetwork,
    layer: usize,
    spec: &PolytopeSpec,
    config: &RepairConfig,
) -> Result<PolytopeRepairOutcome, RepairError> {
    validate(ddnn, layer, &spec.constraints)?;
    if !activation_net.is_piecewise_linear() {
        return Err(RepairError::NotPiecewiseLinear);
    }

    // Lines 2–6 of Algorithm 2: reduce each polytope to the vertices of its
    // linear regions, computed by the incremental transformer pipeline.
    // The polytopes are independent, so the whole slab fans across the
    // thread pool (Task 1/2 specifications restrict the network to hundreds
    // of clean→corrupted lines); per-polytope results and their order are
    // identical to one-at-a-time calls for every thread count.
    let lin_start = Instant::now();
    let pool = prdnn_par::pool_for(config.threads);
    // Zip against the constraints so an excess polytope without a paired
    // constraint is ignored, exactly as the old per-pair loop did.
    let polytopes: Vec<&[Vec<f64>]> = spec
        .polytopes
        .iter()
        .zip(&spec.constraints)
        .map(|(p, _)| p.vertices.as_slice())
        .collect();
    let all_regions =
        lin_regions_batch_in(&pool, activation_net, &polytopes).map_err(|e| match e {
            SyrennError::NotPiecewiseLinear => RepairError::NotPiecewiseLinear,
            SyrennError::DegenerateInput => RepairError::EmptySpec,
        })?;
    let mut key_points: Vec<KeyPoint> = Vec::new();
    let mut num_regions = 0usize;
    for (regions, constraint) in all_regions.into_iter().zip(&spec.constraints) {
        num_regions += regions.len();
        for region in regions {
            for vertex in region.vertices {
                // Appendix B: the vertex must be repaired with the activation
                // pattern of *this* region, fixed by its interior point.
                key_points.push(KeyPoint::region_vertex(
                    vertex,
                    &region.interior,
                    constraint,
                ));
            }
        }
    }
    let lin_regions_time: Duration = lin_start.elapsed();
    let num_key_points = key_points.len();

    // Line 7: hand the constructed point specification to Algorithm 1.
    let outcome = repair_key_points(ddnn, layer, &key_points, config, &pool, lin_regions_time)?;
    Ok(PolytopeRepairOutcome {
        outcome,
        num_regions,
        num_key_points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_example;
    use crate::spec::{InputPolytope, OutputPolytope, PolytopeSpec};
    use prdnn_nn::Activation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn running_example_equation_3_is_repaired() {
        // §3.2: ∀ x ∈ [0.5, 1.5]. -0.8 ≤ N'(x) ≤ -0.4, repairing layer 1.
        let n1 = paper_example::n1();
        let spec = paper_example::equation_3_spec();
        let result =
            repair_polytopes(&n1, 0, &spec, &RepairConfig::default()).expect("repair succeeds");
        // The paper finds the interval [0.5, 1.5] overlaps two linear regions,
        // giving 4 key points (K1..K4, §3.2).
        assert_eq!(result.num_regions, 2);
        assert_eq!(result.num_key_points, 4);
        // The paper's ℓ1-minimal repair is the single change Δ2 = −0.2; our
        // parameterisation has the same optimum (see analysis in the test
        // module of `paper_example`).
        assert!((result.outcome.stats.delta_l1 - 0.2).abs() < 1e-6);
        // Provable guarantee: *every* point on the segment satisfies the
        // constraint, not just sampled ones — spot-check densely.
        for i in 0..=100 {
            let x = 0.5 + (i as f64) / 100.0;
            let y = result.outcome.repaired.forward(&[x])[0];
            assert!(
                (-0.8 - 1e-6..=-0.4 + 1e-6).contains(&y),
                "violated at x = {x}: y = {y}"
            );
        }
    }

    #[test]
    fn polytope_repair_rejects_smooth_networks() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = prdnn_nn::Network::mlp(&[1, 4, 1], Activation::Tanh, &mut rng);
        let mut spec = PolytopeSpec::new();
        spec.push(
            InputPolytope::segment(vec![0.0], vec![1.0]),
            OutputPolytope::scalar_interval(-1.0, 1.0),
        );
        assert_eq!(
            repair_polytopes(&net, 0, &spec, &RepairConfig::default()).unwrap_err(),
            RepairError::NotPiecewiseLinear
        );
    }

    #[test]
    fn line_polytope_repair_guarantees_whole_segment_classification() {
        // A small classifier and a segment specification requiring every
        // point along the segment to get label 1.
        let mut rng = StdRng::seed_from_u64(12);
        let net = prdnn_nn::Network::mlp(&[3, 10, 8, 2], Activation::Relu, &mut rng);
        let start = vec![-0.5, 0.2, 0.8];
        let end = vec![0.9, -0.7, -0.2];
        let mut spec = PolytopeSpec::new();
        spec.push(
            InputPolytope::segment(start.clone(), end.clone()),
            OutputPolytope::classification(1, 2, 1e-4),
        );
        let result =
            repair_polytopes(&net, 2, &spec, &RepairConfig::default()).expect("repair succeeds");
        // Dense sampling along the segment: every point must be label 1.
        for i in 0..=200 {
            let t = i as f64 / 200.0;
            let p: Vec<f64> = start
                .iter()
                .zip(&end)
                .map(|(s, e)| s + t * (e - s))
                .collect();
            assert_eq!(
                result.outcome.repaired.classify(&p),
                1,
                "violated at t = {t}"
            );
        }
    }

    #[test]
    fn plane_polytope_repair_guarantees_whole_polygon() {
        let mut rng = StdRng::seed_from_u64(40);
        let net = prdnn_nn::Network::mlp(&[2, 8, 6, 3], Activation::Relu, &mut rng);
        let triangle = vec![vec![-1.0, -1.0], vec![1.0, -1.0], vec![0.0, 1.0]];
        let mut spec = PolytopeSpec::new();
        spec.push(
            InputPolytope::polygon(triangle.clone()),
            OutputPolytope::classification(2, 3, 1e-4),
        );
        let result =
            repair_polytopes(&net, 2, &spec, &RepairConfig::default()).expect("repair succeeds");
        assert!(result.num_regions >= 1);
        assert!(result.num_key_points >= 3);
        // Random points inside the triangle must all be classified 2.
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..200 {
            let mut w = [
                rng.gen_range(0.0f64..1.0),
                rng.gen_range(0.0..1.0),
                rng.gen_range(0.0..1.0),
            ];
            let s: f64 = w.iter().sum();
            w.iter_mut().for_each(|x| *x /= s);
            let p = vec![
                w[0] * triangle[0][0] + w[1] * triangle[1][0] + w[2] * triangle[2][0],
                w[0] * triangle[0][1] + w[1] * triangle[1][1] + w[2] * triangle[2][1],
            ];
            assert_eq!(result.outcome.repaired.classify(&p), 2);
        }
    }

    #[test]
    fn lp_backends_agree_on_polytope_repair() {
        // Algorithm 2 feeds the vertex key points into the same repair LP;
        // both simplex backends must find minimal repairs of equal norm and
        // both repaired networks must satisfy the whole segment.
        let mut rng = StdRng::seed_from_u64(17);
        let net = prdnn_nn::Network::mlp(&[3, 10, 8, 2], Activation::Relu, &mut rng);
        let start = vec![-0.4, 0.3, 0.6];
        let end = vec![0.8, -0.5, -0.1];
        let mut spec = PolytopeSpec::new();
        spec.push(
            InputPolytope::segment(start.clone(), end.clone()),
            OutputPolytope::classification(0, 2, 1e-4),
        );
        let mut norms = Vec::new();
        for backend in [
            prdnn_lp::LpBackend::DenseTableau,
            prdnn_lp::LpBackend::RevisedSparse,
        ] {
            let config = RepairConfig {
                lp_backend: backend,
                ..RepairConfig::default()
            };
            let result = repair_polytopes(&net, 2, &spec, &config).expect("repair must succeed");
            for i in 0..=100 {
                let t = i as f64 / 100.0;
                let p: Vec<f64> = start
                    .iter()
                    .zip(&end)
                    .map(|(s, e)| s + t * (e - s))
                    .collect();
                assert_eq!(
                    result.outcome.repaired.classify(&p),
                    0,
                    "backend {backend:?}"
                );
            }
            norms.push(result.outcome.stats.delta_l1);
        }
        assert!(
            (norms[0] - norms[1]).abs() < 1e-6,
            "minimal-repair norms disagree: dense {} vs revised {}",
            norms[0],
            norms[1]
        );
    }

    #[test]
    fn unsatisfiable_layer_returns_bottom() {
        // §7.3 observes that for some layers Algorithm 2 returns ⊥.  Force
        // that situation with contradictory constraints on one polytope.
        let n1 = paper_example::n1();
        let mut spec = PolytopeSpec::new();
        spec.push(
            InputPolytope::segment(vec![0.2], vec![0.8]),
            OutputPolytope::scalar_interval(-0.9, -0.8),
        );
        spec.push(
            InputPolytope::segment(vec![0.2], vec![0.8]),
            OutputPolytope::scalar_interval(0.8, 0.9),
        );
        assert_eq!(
            repair_polytopes(&n1, 0, &spec, &RepairConfig::default()).unwrap_err(),
            RepairError::Infeasible
        );
    }

    #[test]
    fn timing_includes_lin_regions_component() {
        let n1 = paper_example::n1();
        let spec = paper_example::equation_3_spec();
        let result = repair_polytopes(&n1, 0, &spec, &RepairConfig::default()).unwrap();
        let timing = result.outcome.stats.timing;
        assert!(timing.total() >= timing.lin_regions);
    }
}
