//! Determinism of the batched/pooled DDNN entry points: for random
//! networks and every thread count, `forward_decoupled_batch_in` and
//! `value_param_jacobian_batch_in` must return output that is
//! point-for-point **bit-identical** to the per-point serial calls.
//!
//! The batched paths route through the flat-buffer GEMM kernels while the
//! per-point paths use the matvec kernel; the kernels accumulate in the
//! same ascending-k order, so the two must agree to the last bit — and
//! parallelism may only change wall-clock time, never a single f64 bit.

use prdnn_core::DecoupledNetwork;
use prdnn_nn::{Activation, Network};
use prdnn_par::ThreadPool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Thread counts exercised: 1 (spawns no workers — the pooled serial
/// path), the boundary case, an odd count, and more threads than this
/// container has cores.
const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 4];

fn random_ddnn(seed: u64, depth: usize, width: usize, in_dim: usize) -> DecoupledNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sizes = vec![in_dim];
    sizes.extend(std::iter::repeat_n(width, depth));
    sizes.push(3);
    DecoupledNetwork::from_network(&Network::mlp(&sizes, Activation::Relu, &mut rng))
}

fn random_pairs(seed: u64, count: usize, dim: usize) -> Vec<(Vec<f64>, Vec<f64>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let a: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
            (a, v)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forward_decoupled_batch_is_bit_identical_to_per_point(
        seed in 0u64..10_000,
        depth in 1usize..4,
        width in 4usize..14,
        batch in 1usize..20,
    ) {
        let ddnn = random_ddnn(seed, depth, width, 3);
        let owned = random_pairs(seed ^ 0xD00D, batch, 3);
        let pairs: Vec<(&[f64], &[f64])> =
            owned.iter().map(|(a, v)| (a.as_slice(), v.as_slice())).collect();
        let expected: Vec<Vec<f64>> = pairs
            .iter()
            .map(|(a, v)| ddnn.forward_decoupled(a, v))
            .collect();
        prop_assert_eq!(&ddnn.forward_decoupled_batch(&pairs), &expected);
        for threads in THREAD_COUNTS {
            let pool = ThreadPool::new(threads);
            let pooled = ddnn.forward_decoupled_batch_in(&pool, &pairs);
            prop_assert_eq!(&pooled, &expected, "threads = {}", threads);
        }
    }

    #[test]
    fn value_param_jacobian_batch_is_bit_identical_to_per_point(
        seed in 0u64..10_000,
        depth in 1usize..4,
        width in 4usize..12,
        batch in 1usize..12,
    ) {
        let ddnn = random_ddnn(seed, depth, width, 3);
        let layer = (seed as usize) % (depth + 1);
        let owned = random_pairs(seed ^ 0xBEEF, batch, 3);
        let pairs: Vec<(&[f64], &[f64])> =
            owned.iter().map(|(a, v)| (a.as_slice(), v.as_slice())).collect();
        let expected: Vec<_> = pairs
            .iter()
            .map(|(a, v)| ddnn.value_param_jacobian(layer, a, v))
            .collect();
        prop_assert_eq!(&ddnn.value_param_jacobian_batch(layer, &pairs), &expected);
        for threads in THREAD_COUNTS {
            let pool = ThreadPool::new(threads);
            let pooled = ddnn.value_param_jacobian_batch_in(&pool, layer, &pairs);
            prop_assert_eq!(&pooled, &expected, "threads = {}", threads);
        }
    }
}
