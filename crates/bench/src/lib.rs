//! Experiment harness reproducing every table and figure of the PRDNN
//! evaluation (§7) on the synthetic workloads of `prdnn-datasets`.
//!
//! Each experiment runs at a configurable [`Scale`]: the paper's exact
//! workload sizes (SqueezeNet, 752 NAE images, 100 repair lines, 150k key
//! points) assume Gurobi and a 32-core machine, so the default scale keeps
//! the identical pipeline but shrinks the specification sizes; the *shape*
//! of the results (who wins, where the time goes) is what is reproduced.
//! `EXPERIMENTS.md` records the measured numbers next to the paper's.
//!
//! | Paper artefact | Regenerate with |
//! |---|---|
//! | Table 1 | `cargo run --release -p prdnn-bench --bin table1` |
//! | Table 2 | `cargo run --release -p prdnn-bench --bin table2` |
//! | Table 3 | `cargo run --release -p prdnn-bench --bin table3` |
//! | Table 4 | `cargo run --release -p prdnn-bench --bin table4` |
//! | Figure 7 | `cargo run --release -p prdnn-bench --bin figure7` |
//! | Figures 3–6 | `cargo run --release -p prdnn-bench --bin figures_3_4_5` |
//! | §7.3 (Task 3) | `cargo run --release -p prdnn-bench --bin task3` |

pub mod figures;
pub mod metrics;
pub mod scale;
pub mod stats;
pub mod task1;
pub mod task2;
pub mod task3;

pub use metrics::Classifier;
pub use scale::Scale;

/// Applies the bench binaries' `--threads N` (or `--threads=N`) knob by
/// exporting it as `PRDNN_THREADS` before any thread pool exists.
///
/// Precedence, highest first: an explicit `RepairConfig::threads`, then
/// this flag / `PRDNN_THREADS`, then the machine's available parallelism.
/// Call this at the top of `main`, before any repair runs.
pub fn apply_threads_arg() {
    if let Some(n) = flag_value("--threads")
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        std::env::set_var("PRDNN_THREADS", n.to_string());
    }
    eprintln!(
        "thread pool: {} threads (override with --threads N or PRDNN_THREADS)",
        prdnn_par::default_threads()
    );
}

/// Scans the process arguments for `<flag> value` or `<flag>=value`,
/// returning the last occurrence (matching the knobs' last-wins
/// behaviour).  Shared by [`apply_threads_arg`], [`apply_pricing_arg`]
/// and the bench binaries' own flags.
pub fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    let mut found = None;
    while let Some(arg) = args.next() {
        let value = if arg == flag {
            args.next()
        } else {
            arg.strip_prefix(flag)
                .and_then(|rest| rest.strip_prefix('='))
                .map(str::to_owned)
        };
        if value.is_some() {
            found = value;
        }
    }
    found
}

/// Applies the bench binaries' `--pricing dantzig|devex` (or
/// `--pricing=...`) knob by exporting it as `PRDNN_LP_PRICING`, mirroring
/// [`apply_threads_arg`].
///
/// Precedence, highest first: an explicit `RepairConfig::lp_pricing` /
/// `SolveOptions::pricing`, then this flag / `PRDNN_LP_PRICING`, then the
/// built-in default (Devex).  Call this at the top of `main`, before any
/// LP is solved.
pub fn apply_pricing_arg() {
    if let Some(rule) = flag_value("--pricing")
        .filter(|v| v.eq_ignore_ascii_case("dantzig") || v.eq_ignore_ascii_case("devex"))
    {
        std::env::set_var("PRDNN_LP_PRICING", rule.to_ascii_lowercase());
    }
    if let Ok(rule) = std::env::var("PRDNN_LP_PRICING") {
        eprintln!("lp pricing: {rule} (override with --pricing dantzig|devex or PRDNN_LP_PRICING)");
    }
}
