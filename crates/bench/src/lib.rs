//! Experiment harness reproducing every table and figure of the PRDNN
//! evaluation (§7) on the synthetic workloads of `prdnn-datasets`.
//!
//! Each experiment runs at a configurable [`Scale`]: the paper's exact
//! workload sizes (SqueezeNet, 752 NAE images, 100 repair lines, 150k key
//! points) assume Gurobi and a 32-core machine, so the default scale keeps
//! the identical pipeline but shrinks the specification sizes; the *shape*
//! of the results (who wins, where the time goes) is what is reproduced.
//! `EXPERIMENTS.md` records the measured numbers next to the paper's.
//!
//! | Paper artefact | Regenerate with |
//! |---|---|
//! | Table 1 | `cargo run --release -p prdnn-bench --bin table1` |
//! | Table 2 | `cargo run --release -p prdnn-bench --bin table2` |
//! | Table 3 | `cargo run --release -p prdnn-bench --bin table3` |
//! | Table 4 | `cargo run --release -p prdnn-bench --bin table4` |
//! | Figure 7 | `cargo run --release -p prdnn-bench --bin figure7` |
//! | Figures 3–6 | `cargo run --release -p prdnn-bench --bin figures_3_4_5` |
//! | §7.3 (Task 3) | `cargo run --release -p prdnn-bench --bin task3` |

pub mod figures;
pub mod metrics;
pub mod scale;
pub mod task1;
pub mod task2;
pub mod task3;

pub use metrics::Classifier;
pub use scale::Scale;

/// Applies the bench binaries' `--threads N` (or `--threads=N`) knob by
/// exporting it as `PRDNN_THREADS` before any thread pool exists.
///
/// Precedence, highest first: an explicit `RepairConfig::threads`, then
/// this flag / `PRDNN_THREADS`, then the machine's available parallelism.
/// Call this at the top of `main`, before any repair runs.
pub fn apply_threads_arg() {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = if arg == "--threads" {
            args.next()
        } else {
            arg.strip_prefix("--threads=").map(str::to_owned)
        };
        if let Some(n) = value
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            std::env::set_var("PRDNN_THREADS", n.to_string());
        }
    }
    eprintln!(
        "thread pool: {} threads (override with --threads N or PRDNN_THREADS)",
        prdnn_par::default_threads()
    );
}
