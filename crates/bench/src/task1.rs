//! Task 1 (§7.1): pointwise repair of an image classifier on a pool of
//! misclassified "natural adversarial" images.
//!
//! One run of [`run`] produces the data behind Table 1, Table 4, and
//! Figure 7: a per-layer Provable Repair sweep for every repair-set size,
//! plus the FT[1]/FT[2]/MFT[1]/MFT[2] baselines.

use crate::metrics;
use crate::scale::Task1Params;
use prdnn_baselines::{fine_tune, modified_fine_tune, FineTuneConfig, MftConfig};
use prdnn_core::{repair_points, PointSpec, RepairConfig, RepairError, RepairTiming};
use prdnn_datasets::{imagenet_like, natural_adversarial};
use prdnn_nn::{Dataset, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// The trained buggy CNN, the repair pool, and the drawdown set.
#[derive(Debug, Clone)]
pub struct Task1Setup {
    /// The buggy network (trained on clean synthetic object images).
    pub network: Network,
    /// Misclassified distorted images with their true labels (the NAE
    /// stand-in).
    pub repair_pool: Dataset,
    /// Clean held-out validation images (the drawdown set).
    pub drawdown_set: Dataset,
}

/// Trains the buggy CNN and builds the repair pool / drawdown set.
pub fn setup(params: &Task1Params) -> Task1Setup {
    let task = imagenet_like::object_task(params.seed, params.train_size, params.validation_size);
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x5eed);
    let max_points = params
        .point_counts
        .iter()
        .map(|&(_, n)| n)
        .max()
        .unwrap_or(0);
    let repair_pool = natural_adversarial::misclassified_pool(
        &task.network,
        max_points,
        max_points * 400 + 1000,
        &mut rng,
    );
    Task1Setup {
        network: task.network,
        repair_pool,
        drawdown_set: task.validation,
    }
}

/// Outcome status of one single-layer Provable Repair attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrStatus {
    /// A satisfying repair was found (efficacy 100% by construction).
    Repaired,
    /// The LP proved no single-layer repair of this layer exists.
    Infeasible,
    /// The LP solver hit its iteration budget (the paper's timeout case).
    Timeout,
}

/// Result of Provable Repair applied to one layer.
#[derive(Debug, Clone)]
pub struct PrLayerResult {
    /// The repaired layer index.
    pub layer: usize,
    /// Whether the repair succeeded.
    pub status: PrStatus,
    /// Drawdown on the validation set (only meaningful when repaired).
    pub drawdown: f64,
    /// Wall-clock repair time.
    pub time: Duration,
    /// Breakdown of where the time went (Figure 7b).
    pub timing: RepairTiming,
}

/// Runs Provable Repair of every repairable layer on the first `n_points`
/// images of the repair pool (the paper's per-layer sweep, Figure 7a).
pub fn run_pr_sweep(setup: &Task1Setup, n_points: usize) -> Vec<PrLayerResult> {
    let repair_set = setup.repair_pool.take(n_points);
    let spec = PointSpec::from_classification(
        &repair_set.inputs,
        &repair_set.labels,
        imagenet_like::NUM_CLASSES,
        1e-4,
    );
    let config = RepairConfig::default();
    setup
        .network
        .repairable_layers()
        .into_iter()
        .map(|layer| {
            let start = Instant::now();
            match repair_points(&setup.network, layer, &spec, &config) {
                Ok(outcome) => PrLayerResult {
                    layer,
                    status: PrStatus::Repaired,
                    drawdown: metrics::drawdown(
                        &setup.network,
                        &outcome.repaired,
                        &setup.drawdown_set,
                    ),
                    time: start.elapsed(),
                    timing: outcome.stats.timing,
                },
                Err(RepairError::Infeasible) => PrLayerResult {
                    layer,
                    status: PrStatus::Infeasible,
                    drawdown: f64::NAN,
                    time: start.elapsed(),
                    timing: RepairTiming::default(),
                },
                Err(_) => PrLayerResult {
                    layer,
                    status: PrStatus::Timeout,
                    drawdown: f64::NAN,
                    time: start.elapsed(),
                    timing: RepairTiming::default(),
                },
            }
        })
        .collect()
}

/// The best-drawdown entry of a per-layer sweep (the "PR (BD)" column of
/// Table 1).
pub fn best_drawdown(results: &[PrLayerResult]) -> Option<&PrLayerResult> {
    results
        .iter()
        .filter(|r| r.status == PrStatus::Repaired)
        .min_by(|a, b| a.drawdown.partial_cmp(&b.drawdown).unwrap())
}

/// Result of one fine-tuning baseline run.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// Baseline name (`FT[1]`, `MFT[2]`, ...).
    pub name: String,
    /// Drawdown on the validation set.
    pub drawdown: f64,
    /// Accuracy on the repair set at the end of the run.
    pub efficacy: f64,
    /// Wall-clock time.
    pub time: Duration,
}

/// Runs the FT baseline on the first `n_points` repair images.
pub fn run_ft(
    setup: &Task1Setup,
    n_points: usize,
    name: &str,
    learning_rate: f64,
    batch_size: usize,
    max_epochs: usize,
    seed: u64,
) -> BaselineRun {
    let repair_set = setup.repair_pool.take(n_points);
    let mut rng = StdRng::seed_from_u64(seed);
    let config = FineTuneConfig {
        learning_rate,
        momentum: 0.9,
        batch_size,
        max_epochs,
    };
    let result = fine_tune(&setup.network, &repair_set, &config, &mut rng);
    BaselineRun {
        name: name.to_string(),
        drawdown: metrics::drawdown(&setup.network, &result.network, &setup.drawdown_set),
        efficacy: metrics::efficacy(&result.network, &repair_set),
        time: result.duration,
    }
}

/// Runs the MFT baseline on every repairable layer and keeps the layer with
/// the best (lowest) drawdown, matching the paper's "MFT (BD)" columns.
pub fn run_mft_best_layer(
    setup: &Task1Setup,
    n_points: usize,
    name: &str,
    learning_rate: f64,
    batch_size: usize,
    max_epochs: usize,
    seed: u64,
) -> BaselineRun {
    let repair_set = setup.repair_pool.take(n_points);
    let mut best: Option<BaselineRun> = None;
    for layer in setup.network.repairable_layers() {
        let mut rng = StdRng::seed_from_u64(seed + layer as u64);
        let config = MftConfig {
            learning_rate,
            momentum: 0.9,
            batch_size,
            max_epochs,
            layer,
            change_penalty: 1e-3,
            holdout_fraction: 0.25,
        };
        let result = modified_fine_tune(&setup.network, &repair_set, &config, &mut rng);
        let run = BaselineRun {
            name: name.to_string(),
            drawdown: metrics::drawdown(&setup.network, &result.network, &setup.drawdown_set),
            efficacy: result.efficacy,
            time: result.duration,
        };
        let better = best.as_ref().is_none_or(|b| run.drawdown < b.drawdown);
        if better {
            best = Some(run);
        }
    }
    best.expect("network has at least one repairable layer")
}

/// Results for one repair-set size.
#[derive(Debug, Clone)]
pub struct Task1PointResult {
    /// The paper's repair-set size this row corresponds to.
    pub paper_points: usize,
    /// The scaled repair-set size actually used.
    pub points_used: usize,
    /// Per-layer Provable Repair results.
    pub pr_sweep: Vec<PrLayerResult>,
    /// FT[1] and FT[2] baselines.
    pub ft: Vec<BaselineRun>,
    /// MFT[1] and MFT[2] baselines (best layer).
    pub mft: Vec<BaselineRun>,
}

/// All Task 1 results (one entry per repair-set size).
#[derive(Debug, Clone)]
pub struct Task1Results {
    /// Accuracy of the buggy network on the repair pool (the paper's 18.6%).
    pub buggy_pool_accuracy: f64,
    /// Accuracy of the buggy network on the drawdown set (the paper's 93.6%).
    pub buggy_validation_accuracy: f64,
    /// Per-repair-set-size results.
    pub rows: Vec<Task1PointResult>,
}

/// Runs the full Task 1 experiment.
pub fn run(params: &Task1Params) -> Task1Results {
    let setup = setup(params);
    let mut rows = Vec::new();
    for &(paper_points, points_used) in &params.point_counts {
        let points_used = points_used.min(setup.repair_pool.len());
        let pr_sweep = run_pr_sweep(&setup, points_used);
        let ft = vec![
            run_ft(
                &setup,
                points_used,
                "FT[1]",
                0.02,
                4,
                params.ft_max_epochs,
                params.seed + 1,
            ),
            run_ft(
                &setup,
                points_used,
                "FT[2]",
                0.01,
                16,
                params.ft_max_epochs,
                params.seed + 2,
            ),
        ];
        let mft = vec![
            run_mft_best_layer(
                &setup,
                points_used,
                "MFT[1]",
                0.02,
                4,
                params.ft_max_epochs,
                params.seed + 3,
            ),
            run_mft_best_layer(
                &setup,
                points_used,
                "MFT[2]",
                0.01,
                16,
                params.ft_max_epochs,
                params.seed + 4,
            ),
        ];
        rows.push(Task1PointResult {
            paper_points,
            points_used,
            pr_sweep,
            ft,
            mft,
        });
    }
    Task1Results {
        buggy_pool_accuracy: metrics::accuracy(&setup.network, &setup.repair_pool),
        buggy_validation_accuracy: metrics::accuracy(&setup.network, &setup.drawdown_set),
        rows,
    }
}

fn pct(x: f64) -> String {
    if x.is_nan() {
        "  n/a".to_string()
    } else {
        format!("{:5.1}", 100.0 * x)
    }
}

/// Formats the Table 1 reproduction (summary: PR best-drawdown vs baselines).
pub fn format_table1(results: &Task1Results) -> String {
    let mut out = String::new();
    out.push_str("Table 1 — Task 1: pointwise image-classifier repair (paper: SqueezeNet + NAE)\n");
    out.push_str(&format!(
        "buggy accuracy: {:.1}% on the repair pool, {:.1}% on the drawdown set\n",
        100.0 * results.buggy_pool_accuracy,
        100.0 * results.buggy_validation_accuracy
    ));
    out.push_str(
        "Points(paper/used) | PR(BD) D%      T | FT[1] D%      T | FT[2] D%      T | MFT[1] E%  D% | MFT[2] E%  D%\n",
    );
    for row in &results.rows {
        let pr = best_drawdown(&row.pr_sweep);
        let (pr_d, pr_t) = match pr {
            Some(r) => (pct(r.drawdown), metrics::format_duration(r.time)),
            None => ("  n/a".to_string(), "-".to_string()),
        };
        out.push_str(&format!(
            "{:>6}/{:<4} | {} {:>9} | {} {:>9} | {} {:>9} | {} {} | {} {}\n",
            row.paper_points,
            row.points_used,
            pr_d,
            pr_t,
            pct(row.ft[0].drawdown),
            metrics::format_duration(row.ft[0].time),
            pct(row.ft[1].drawdown),
            metrics::format_duration(row.ft[1].time),
            pct(row.mft[0].efficacy),
            pct(row.mft[0].drawdown),
            pct(row.mft[1].efficacy),
            pct(row.mft[1].drawdown),
        ));
    }
    out.push_str(
        "\nPaper (Table 1): PR best-drawdown 1.1–5.3% in 1.6–8.5 min; FT 8.2–15.4% drawdown,\n\
         up to 2.5 h; MFT ≤28% efficacy with ~0% drawdown.  Expected shape: PR's drawdown is\n\
         the lowest among full-efficacy methods and PR is faster than FT; MFT trades efficacy\n\
         for near-zero drawdown.\n",
    );
    out
}

/// Formats the Table 4 reproduction (extended per-layer statistics).
pub fn format_table4(results: &Task1Results) -> String {
    let mut out = String::new();
    out.push_str("Table 4 — Task 1 extended: per-layer repair statistics\n");
    out.push_str("Points(paper/used) | repaired/total | D% best | D% worst | fastest | slowest\n");
    for row in &results.rows {
        let repaired: Vec<&PrLayerResult> = row
            .pr_sweep
            .iter()
            .filter(|r| r.status == PrStatus::Repaired)
            .collect();
        let best = repaired
            .iter()
            .map(|r| r.drawdown)
            .fold(f64::INFINITY, f64::min);
        let worst = repaired
            .iter()
            .map(|r| r.drawdown)
            .fold(f64::NEG_INFINITY, f64::max);
        let fastest = repaired.iter().map(|r| r.time).min().unwrap_or_default();
        let slowest = repaired.iter().map(|r| r.time).max().unwrap_or_default();
        out.push_str(&format!(
            "{:>6}/{:<4} | {:>8}/{:<5} | {} | {} | {:>8} | {:>8}\n",
            row.paper_points,
            row.points_used,
            repaired.len(),
            row.pr_sweep.len(),
            pct(if repaired.is_empty() { f64::NAN } else { best }),
            pct(if repaired.is_empty() { f64::NAN } else { worst }),
            metrics::format_duration(fastest),
            metrics::format_duration(slowest),
        ));
    }
    out.push_str(
        "\nPaper (Table 4): all layers repairable up to 400 points (7/10 at 752); best drawdown\n\
         1.1–5.3%, worst 39–59%; later layers repair faster and with less drawdown.\n",
    );
    out
}

/// Formats the Figure 7 reproduction: per-layer drawdown (a) and time
/// breakdown (b) for the largest repair-set size.
pub fn format_figure7(results: &Task1Results) -> String {
    let mut out = String::new();
    let row = results.rows.last().expect("at least one repair-set size");
    out.push_str(&format!(
        "Figure 7 — per-layer repair with {} points (paper: 400 points)\n",
        row.points_used
    ));
    out.push_str("(a) drawdown per repaired layer\n");
    out.push_str("layer | status     | drawdown%\n");
    for r in &row.pr_sweep {
        out.push_str(&format!(
            "{:>5} | {:<10} | {}\n",
            r.layer,
            match r.status {
                PrStatus::Repaired => "repaired",
                PrStatus::Infeasible => "infeasible",
                PrStatus::Timeout => "timeout",
            },
            pct(r.drawdown)
        ));
    }
    out.push_str("\n(b) time per repaired layer, split as in the paper (Jacobian / LP / other)\n");
    out.push_str("layer | jacobian(s) | lp(s)   | other(s) | total(s)\n");
    for r in &row.pr_sweep {
        out.push_str(&format!(
            "{:>5} | {:>11.3} | {:>7.3} | {:>8.3} | {:>8.3}\n",
            r.layer,
            r.timing.jacobians.as_secs_f64(),
            r.timing.lp.as_secs_f64(),
            r.timing.other.as_secs_f64(),
            r.time.as_secs_f64(),
        ));
    }
    out.push_str(
        "\nPaper (Figure 7): earlier layers show much larger drawdown than later layers;\n\
         for the convolutional model most time is spent in the Jacobian computation,\n\
         with the LP solver second.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn tiny_task1_pipeline_runs_end_to_end() {
        let mut params = Task1Params::for_scale(Scale::Tiny);
        params.point_counts = vec![(100, 4)];
        params.ft_max_epochs = 5;
        let results = run(&params);
        assert_eq!(results.rows.len(), 1);
        let row = &results.rows[0];
        assert!(!row.pr_sweep.is_empty());
        // At least one layer must be repairable on a tiny spec, and the
        // repaired networks must have 100% efficacy by construction (checked
        // inside repair, here we check the sweep found one).
        assert!(best_drawdown(&row.pr_sweep).is_some());
        assert_eq!(row.ft.len(), 2);
        assert_eq!(row.mft.len(), 2);
        // Formatting never panics and mentions every section.
        assert!(format_table1(&results).contains("Table 1"));
        assert!(format_table4(&results).contains("Table 4"));
        assert!(format_figure7(&results).contains("Figure 7"));
    }
}
