//! Data series for Figures 3–6: the running-example networks, their
//! decoupled/repaired variants, and activation linearisations.

use prdnn_core::{paper_example, repair_points, repair_polytopes, DecoupledNetwork, RepairConfig};
use prdnn_nn::{Activation, Network};
use prdnn_syrenn::exact_line;

/// Samples the input–output curve of a scalar function on `[lo, hi]`.
pub fn io_series(
    mut f: impl FnMut(f64) -> f64,
    lo: f64,
    hi: f64,
    samples: usize,
) -> Vec<(f64, f64)> {
    (0..=samples)
        .map(|i| {
            let x = lo + (hi - lo) * i as f64 / samples as f64;
            (x, f(x))
        })
        .collect()
}

/// The networks and repaired DDNNs behind Figures 3–5.
pub struct RunningExample {
    /// N1 of Figure 3(a).
    pub n1: Network,
    /// N2 of Figure 3(b).
    pub n2: Network,
    /// N5 of Figure 5(a): N1 point-repaired against Equation 2.
    pub n5: DecoupledNetwork,
    /// N6 of Figure 5(b): N1 polytope-repaired against Equation 3.
    pub n6: DecoupledNetwork,
}

/// Builds the running example: N1, N2, and the two repaired DDNNs.
///
/// # Panics
///
/// Panics if the repairs fail (they cannot: the paper exhibits feasible
/// repairs).
pub fn running_example() -> RunningExample {
    let n1 = paper_example::n1();
    let n2 = paper_example::n2();
    let n5 = repair_points(
        &n1,
        0,
        &paper_example::equation_2_spec(),
        &RepairConfig::default(),
    )
    .expect("Equation 2 repair is feasible")
    .repaired;
    let n6 = repair_polytopes(
        &n1,
        0,
        &paper_example::equation_3_spec(),
        &RepairConfig::default(),
    )
    .expect("Equation 3 repair is feasible")
    .outcome
    .repaired;
    RunningExample { n1, n2, n5, n6 }
}

/// Formats one curve as `x,y` CSV lines under a header.
fn format_series(name: &str, series: &[(f64, f64)]) -> String {
    let mut out = format!("# {name}\nx,y\n");
    for (x, y) in series {
        out.push_str(&format!("{x:.4},{y:.4}\n"));
    }
    out.push('\n');
    out
}

/// Regenerates the data behind Figures 3, 4, 5, and 6 as CSV blocks.
pub fn format_figures() -> String {
    let ex = running_example();
    let mut out = String::new();
    out.push_str("Figures 3-5 — running example input-output plots (x in [-1, 2])\n\n");

    // Figure 3(c)/(d): N1 and N2 with their linear-region breakpoints.
    let bp = |net: &Network| -> Vec<f64> {
        exact_line(net, &[-1.0], &[2.0])
            .unwrap()
            .iter()
            .map(|t| -1.0 + 3.0 * t)
            .collect()
    };
    out.push_str(&format!(
        "# Figure 3(c): linear region boundaries of N1: {:?}\n",
        bp(&ex.n1)
    ));
    out.push_str(&format_series(
        "Figure 3(c): N1",
        &io_series(|x| ex.n1.forward(&[x])[0], -1.0, 2.0, 60),
    ));
    out.push_str(&format!(
        "# Figure 3(d): linear region boundaries of N2: {:?}\n",
        bp(&ex.n2)
    ));
    out.push_str(&format_series(
        "Figure 3(d): N2",
        &io_series(|x| ex.n2.forward(&[x])[0], -1.0, 2.0, 60),
    ));

    // Figure 4(c)/(d): the DDNN (N1,N1) equals N1; (N1,N2) keeps N1's regions.
    let n3 = DecoupledNetwork::from_network(&ex.n1);
    let n4 = DecoupledNetwork::new(ex.n1.clone(), ex.n2.clone());
    out.push_str(&format_series(
        "Figure 4(c): DDNN N3 = (N1, N1)",
        &io_series(|x| n3.forward(&[x])[0], -1.0, 2.0, 60),
    ));
    out.push_str(&format_series(
        "Figure 4(d): DDNN N4 = (N1, N2)",
        &io_series(|x| n4.forward(&[x])[0], -1.0, 2.0, 60),
    ));

    // Figure 5(c)/(d): the repaired DDNNs.
    out.push_str(&format_series(
        "Figure 5(c): point-repaired N5",
        &io_series(|x| ex.n5.forward(&[x])[0], -1.0, 2.0, 60),
    ));
    out.push_str(&format_series(
        "Figure 5(d): polytope-repaired N6",
        &io_series(|x| ex.n6.forward(&[x])[0], -1.0, 2.0, 60),
    ));

    // Figure 6: linearisations of ReLU around +1 and Tanh around -1.
    let relu_lin = Activation::Relu.linearize(&[1.0])[0];
    let tanh_lin = Activation::Tanh.linearize(&[-1.0])[0];
    out.push_str(&format_series(
        "Figure 6(a): ReLU and its linearisation around z=1 (y = slope*x + intercept)",
        &io_series(|x| relu_lin.0 * x + relu_lin.1, -2.0, 2.0, 40),
    ));
    out.push_str(&format_series(
        "Figure 6(b): Tanh linearisation around z=-1",
        &io_series(|x| tanh_lin.0 * x + tanh_lin.1, -2.0, 2.0, 40),
    ));
    out.push_str(
        "Checks reproduced from the paper: N5(0.5) = -0.8, N5(1.5) = -0.2 (Figure 5c) and\n\
         N6 stays within [-0.8, -0.4] on [0.5, 1.5] (Figure 5d); N3 equals N1 everywhere\n\
         (Theorem 4.4); N4 has the same linear regions as N1 (Theorem 4.6).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repaired_networks_match_figure_5_values() {
        let ex = running_example();
        // Figure 5(c): N5(0.5) = -0.8 and N5(1.5) = -0.2.
        assert!((ex.n5.forward(&[0.5])[0] + 0.8).abs() < 1e-6);
        assert!((ex.n5.forward(&[1.5])[0] + 0.2).abs() < 1e-6);
        // Figure 5(d): N6 maps [0.5, 1.5] into [-0.8, -0.4].
        for i in 0..=20 {
            let x = 0.5 + i as f64 / 20.0;
            let y = ex.n6.forward(&[x])[0];
            assert!((-0.8 - 1e-6..=-0.4 + 1e-6).contains(&y));
        }
    }

    #[test]
    fn figure_4_ddnns_behave_as_described() {
        let ex = running_example();
        let n3 = DecoupledNetwork::from_network(&ex.n1);
        let n4 = DecoupledNetwork::new(ex.n1.clone(), ex.n2.clone());
        // N3 = (N1, N1) equals N1 (Theorem 4.4).
        for i in 0..=30 {
            let x = -1.0 + 3.0 * i as f64 / 30.0;
            assert!((n3.forward(&[x])[0] - ex.n1.forward(&[x])[0]).abs() < 1e-9);
        }
        // N4 = (N1, N2) has N1's activation pattern everywhere (Theorem 4.6).
        for &x in &[-0.5, 0.25, 0.75, 1.5] {
            assert_eq!(
                n4.activation_network().activation_pattern(&[x]),
                ex.n1.activation_pattern(&[x])
            );
        }
    }

    #[test]
    fn formatted_figures_contain_all_blocks() {
        let s = format_figures();
        for needle in [
            "Figure 3(c)",
            "Figure 3(d)",
            "Figure 4(c)",
            "Figure 5(d)",
            "Figure 6(a)",
        ] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
