//! Honest summary statistics for the bench rig.
//!
//! Every kernel/workload measurement in `kernelbench` (and anything else
//! that wants the same discipline) reports **median + interquartile range
//! over at least five runs**, never a single timing: the median resists the
//! occasional scheduler hiccup and the IQR makes run-to-run spread part of
//! the record instead of something a reader has to guess at.

/// Minimum number of timed runs per case; callers may ask for more but the
/// rig refuses to summarise fewer.
pub const MIN_RUNS: usize = 5;

/// Median + IQR summary of one benchmark case's timed runs.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Every timed run, in execution order (milliseconds).
    pub runs_ms: Vec<f64>,
    /// Median over the runs (milliseconds).
    pub median_ms: f64,
    /// Interquartile range `q3 - q1` over the runs (milliseconds).
    pub iqr_ms: f64,
}

/// Linearly interpolated quantile of an ascending-sorted slice,
/// `q` in `[0, 1]`.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + frac * (sorted[hi] - sorted[lo])
}

/// Summarises timed runs into median + IQR.
///
/// Panics if fewer than [`MIN_RUNS`] runs are supplied: a median of three
/// is not a statistic worth writing into a benchmark artifact.
pub fn summarize(runs_ms: Vec<f64>) -> Summary {
    assert!(
        runs_ms.len() >= MIN_RUNS,
        "need at least {MIN_RUNS} runs, got {}",
        runs_ms.len()
    );
    let mut sorted = runs_ms.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Summary {
        median_ms: quantile(&sorted, 0.5),
        iqr_ms: quantile(&sorted, 0.75) - quantile(&sorted, 0.25),
        runs_ms,
    }
}

/// Times `runs` executions of `f` (plus one untimed warm-up), returning
/// per-run milliseconds in execution order.
pub fn time_runs(runs: usize, mut f: impl FnMut()) -> Vec<f64> {
    f(); // warm-up: touch caches, JIT the page faults away
    (0..runs)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_iqr_of_known_sample() {
        let s = summarize(vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.median_ms, 3.0);
        assert_eq!(s.iqr_ms, 2.0);
    }

    #[test]
    #[should_panic(expected = "at least 5 runs")]
    fn refuses_fewer_than_min_runs() {
        summarize(vec![1.0, 2.0]);
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile(&sorted, 0.25), 2.5);
    }
}
