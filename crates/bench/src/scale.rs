//! Experiment scales: the paper's workload sizes scaled to what the
//! from-scratch simplex solver handles on a laptop in minutes.

/// How large to make each experiment.
///
/// Selected via the `PRDNN_SCALE` environment variable (`tiny`, `small`,
/// `full`); the default is `small`.  `tiny` is what the integration tests and
/// Criterion micro-benchmarks use; `full` approaches the paper's
/// specification sizes and can take hours with the built-in LP solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Smoke-test sizes (seconds).
    Tiny,
    /// Default sizes (minutes) — large enough for the paper's trends to show.
    #[default]
    Small,
    /// Paper-magnitude sizes (hours with the built-in simplex).
    Full,
}

impl Scale {
    /// Reads the scale from the `PRDNN_SCALE` environment variable.
    pub fn from_env() -> Scale {
        match std::env::var("PRDNN_SCALE")
            .unwrap_or_default()
            .to_lowercase()
            .as_str()
        {
            "tiny" => Scale::Tiny,
            "full" => Scale::Full,
            _ => Scale::Small,
        }
    }
}

/// Workload sizes for Task 1 (pointwise repair of the image classifier).
#[derive(Debug, Clone, PartialEq)]
pub struct Task1Params {
    /// `(paper_label, points_used)` pairs: the paper's repair-set sizes
    /// (100/200/400/752) and the scaled sizes used here.
    pub point_counts: Vec<(usize, usize)>,
    /// Training-set size for the reference CNN.
    pub train_size: usize,
    /// Validation-set size (the drawdown set).
    pub validation_size: usize,
    /// Epoch budget for the FT baselines.
    pub ft_max_epochs: usize,
    /// RNG seed (controls training and the repair pool).
    pub seed: u64,
}

impl Task1Params {
    /// The parameters used at each scale.
    pub fn for_scale(scale: Scale) -> Self {
        let (point_counts, train_size, validation_size, ft_max_epochs) = match scale {
            Scale::Tiny => (vec![(100, 6), (200, 12)], 135, 90, 20),
            Scale::Small => (
                vec![(100, 15), (200, 30), (400, 60), (752, 100)],
                360,
                180,
                60,
            ),
            Scale::Full => (
                vec![(100, 100), (200, 200), (400, 400), (752, 752)],
                1800,
                500,
                200,
            ),
        };
        Task1Params {
            point_counts,
            train_size,
            validation_size,
            ft_max_epochs,
            seed: 20210413,
        }
    }
}

/// Workload sizes for Task 2 (1-D polytope repair of the digit MLP).
#[derive(Debug, Clone, PartialEq)]
pub struct Task2Params {
    /// `(paper_label, lines_used)` pairs: the paper uses 10/25/50/100 lines.
    pub line_counts: Vec<(usize, usize)>,
    /// Training-set size for the digit MLP.
    pub train_size: usize,
    /// Test-set size (drawdown set; its fogged copy is the generalization set).
    pub test_size: usize,
    /// Fog strength at the corrupted endpoint of each line.
    pub fog_alpha: f64,
    /// Epoch budget for the FT baselines.
    pub ft_max_epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Task2Params {
    /// The parameters used at each scale.
    pub fn for_scale(scale: Scale) -> Self {
        let (line_counts, train_size, test_size, ft_max_epochs) = match scale {
            Scale::Tiny => (vec![(10, 2), (25, 4)], 150, 80, 20),
            Scale::Small => (vec![(10, 3), (25, 6), (50, 10), (100, 16)], 400, 200, 60),
            Scale::Full => (
                vec![(10, 10), (25, 25), (50, 50), (100, 100)],
                2000,
                1000,
                200,
            ),
        };
        Task2Params {
            line_counts,
            train_size,
            test_size,
            fog_alpha: 0.55,
            ft_max_epochs,
            seed: 20210425,
        }
    }
}

/// Workload sizes for Task 3 (2-D polytope repair of the collision-avoidance
/// network).
#[derive(Debug, Clone, PartialEq)]
pub struct Task3Params {
    /// Number of violating 2-D slices used as the repair specification
    /// (the paper uses 10).
    pub repair_slices: usize,
    /// Number of additional slices searched for generalization
    /// counterexamples (the paper uses 12).
    pub generalization_slices: usize,
    /// Candidate slices sampled when looking for violations.
    pub candidate_slices: usize,
    /// Grid resolution used to search slices for violations and to build the
    /// generalization/drawdown point sets.
    pub grid: usize,
    /// Training-set size for the distilled network.
    pub train_size: usize,
    /// Size of the drawdown point set.
    pub drawdown_points: usize,
    /// Epoch budget for the FT baselines.
    pub ft_max_epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Task3Params {
    /// The parameters used at each scale.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Tiny => Task3Params {
                repair_slices: 1,
                generalization_slices: 2,
                candidate_slices: 40,
                grid: 5,
                train_size: 800,
                drawdown_points: 300,
                ft_max_epochs: 20,
                seed: 1121,
            },
            Scale::Small => Task3Params {
                repair_slices: 3,
                generalization_slices: 6,
                candidate_slices: 60,
                grid: 5,
                train_size: 1500,
                drawdown_points: 1000,
                ft_max_epochs: 60,
                seed: 1121,
            },
            Scale::Full => Task3Params {
                repair_slices: 10,
                generalization_slices: 12,
                candidate_slices: 200,
                grid: 8,
                train_size: 4000,
                drawdown_points: 5466,
                ft_max_epochs: 200,
                seed: 1121,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let tiny = Task1Params::for_scale(Scale::Tiny);
        let small = Task1Params::for_scale(Scale::Small);
        let full = Task1Params::for_scale(Scale::Full);
        assert!(tiny.point_counts.last().unwrap().1 < small.point_counts.last().unwrap().1);
        assert!(small.point_counts.last().unwrap().1 < full.point_counts.last().unwrap().1);
        assert_eq!(full.point_counts.last().unwrap(), &(752, 752));
        assert!(Task2Params::for_scale(Scale::Full)
            .line_counts
            .contains(&(100, 100)));
        assert_eq!(Task3Params::for_scale(Scale::Full).repair_slices, 10);
    }

    #[test]
    fn env_parsing_defaults_to_small() {
        // Note: does not set the env var (tests may run in parallel); only
        // checks the default path.
        assert_eq!(Scale::default(), Scale::Small);
    }
}
