//! Task 3 (§7.3): 2-D polytope repair of the collision-avoidance network
//! against the φ8-like safety property.

use crate::metrics;
use crate::scale::Task3Params;
use prdnn_baselines::{fine_tune, modified_fine_tune, FineTuneConfig, MftConfig};
use prdnn_core::{
    repair_polytopes, InputPolytope, OutputPolytope, PolytopeSpec, RepairConfig, RepairTiming,
};
use prdnn_datasets::acas::{self, Advisory, Slice2d};
use prdnn_nn::{Dataset, Network};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// The Task 3 setup: the distilled network, violating repair slices,
/// generalization counterexamples, and the drawdown point set.
#[derive(Debug, Clone)]
pub struct Task3Setup {
    /// The buggy collision-avoidance network.
    pub network: Network,
    /// 2-D slices (inside the φ8 region) containing property violations,
    /// used as the repair specification.
    pub repair_slices: Vec<Slice2d>,
    /// Grid points of *other* violating slices, labelled with a φ8-allowed
    /// advisory (the generalization set).
    pub generalization_set: Dataset,
    /// Points the buggy network classifies like the teacher policy (the
    /// drawdown set).
    pub drawdown_set: Dataset,
    /// Number of φ8 violations found while searching candidate slices.
    pub violations_found: usize,
}

/// A φ8-allowed target advisory for a slice: whichever of
/// {clear-of-conflict, weak-left} the buggy network already prefers on
/// average over the slice (the paper's strengthening of the disjunctive φ8
/// into an LP-encodable constraint).
fn strengthened_target(network: &Network, slice: &Slice2d, grid: usize) -> usize {
    let coc = Advisory::ClearOfConflict as usize;
    let weak_left = Advisory::WeakLeft as usize;
    let mut coc_score = 0.0;
    let mut wl_score = 0.0;
    for p in slice.grid(grid) {
        let out = network.forward(&p);
        coc_score += out[coc];
        wl_score += out[weak_left];
    }
    if coc_score >= wl_score {
        coc
    } else {
        weak_left
    }
}

/// Whether the slice contains at least one grid point violating φ8.
fn slice_has_violation(network: &Network, slice: &Slice2d, grid: usize) -> bool {
    slice
        .grid(grid)
        .iter()
        .any(|p| !acas::phi8_allows(network.classify(p)))
}

/// Builds the Task 3 setup: distil the network, search candidate slices for
/// violations, and split them into repair and generalization slices.
pub fn setup(params: &Task3Params) -> Task3Setup {
    let task = acas::acas_task(params.seed, params.train_size);
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0xacab);
    let candidates = acas::random_phi8_slices(params.candidate_slices, &mut rng);
    let violating: Vec<Slice2d> = candidates
        .into_iter()
        .filter(|s| slice_has_violation(&task.network, s, params.grid))
        .collect();
    let violations_found = violating.len();
    let repair_slices: Vec<Slice2d> = violating
        .iter()
        .take(params.repair_slices)
        .cloned()
        .collect();
    let gen_slices: Vec<Slice2d> = violating
        .iter()
        .skip(params.repair_slices)
        .take(params.generalization_slices)
        .cloned()
        .collect();

    // Generalization set: violating grid points of the generalization slices,
    // labelled with that slice's strengthened target advisory.
    let mut gen_inputs = Vec::new();
    let mut gen_labels = Vec::new();
    for slice in &gen_slices {
        let target = strengthened_target(&task.network, slice, params.grid);
        for p in slice.grid(params.grid) {
            if !acas::phi8_allows(task.network.classify(&p)) {
                gen_inputs.push(p);
                gen_labels.push(target);
            }
        }
    }

    // Drawdown set: sampled states on which the buggy network matches the
    // teacher policy (so any later disagreement is a regression).
    let mut dd_inputs = Vec::new();
    let mut dd_labels = Vec::new();
    while dd_inputs.len() < params.drawdown_points {
        let state = acas::sample_state(&mut rng);
        let x = state.normalize();
        let teacher = acas::teacher_policy(&state) as usize;
        if task.network.classify(&x) == teacher {
            dd_inputs.push(x);
            dd_labels.push(teacher);
        }
    }

    Task3Setup {
        network: task.network,
        repair_slices,
        generalization_set: Dataset::new(gen_inputs, gen_labels),
        drawdown_set: Dataset::new(dd_inputs, dd_labels),
        violations_found,
    }
}

/// Builds the polytope specification over the repair slices.
pub fn repair_spec(setup: &Task3Setup, grid: usize) -> PolytopeSpec {
    let mut spec = PolytopeSpec::new();
    for slice in &setup.repair_slices {
        let target = strengthened_target(&setup.network, slice, grid);
        spec.push(
            InputPolytope::polygon(slice.corners()),
            OutputPolytope::classification(target, acas::NUM_ADVISORIES, 1e-4),
        );
    }
    spec
}

/// The Task 3 Provable Repair result (the §7.3 RQ1–RQ4 numbers).
#[derive(Debug, Clone)]
pub struct Task3PrResult {
    /// Layer that was repaired (the last layer, as in the paper).
    pub layer: usize,
    /// Whether a satisfying repair was found.
    pub repaired: bool,
    /// Fraction of φ8 violations in the repair slices that remain after
    /// repair, measured on a dense grid (0.0 = provably repaired, RQ1).
    pub remaining_violation_rate: f64,
    /// Drawdown on the drawdown point set (RQ2; the paper reports 0).
    pub drawdown: f64,
    /// Generalization: fraction of generalization counterexamples now
    /// satisfying φ8 (RQ3; the paper reports 94.7%).
    pub generalization_fixed: f64,
    /// Number of linear regions across the repair slices.
    pub num_regions: usize,
    /// Number of key points of the reduction.
    pub key_points: usize,
    /// Wall-clock time (RQ4).
    pub time: Duration,
    /// Timing breakdown (RQ4).
    pub timing: RepairTiming,
}

/// Runs Provable Polytope Repair of the last layer over the repair slices.
pub fn run_pr(setup: &Task3Setup, grid: usize) -> Task3PrResult {
    let layer = setup.network.num_layers() - 1;
    if setup.repair_slices.is_empty() {
        // The distilled network happens to satisfy φ8 on every candidate
        // slice; there is nothing to repair.
        return Task3PrResult {
            layer,
            repaired: false,
            remaining_violation_rate: 0.0,
            drawdown: 0.0,
            generalization_fixed: f64::NAN,
            num_regions: 0,
            key_points: 0,
            time: Duration::ZERO,
            timing: RepairTiming::default(),
        };
    }
    let spec = repair_spec(setup, grid);
    let start = Instant::now();
    match repair_polytopes(&setup.network, layer, &spec, &RepairConfig::default()) {
        Ok(result) => {
            // RQ1: dense grid check that no violations remain on the slices.
            let check_grid = grid * 3;
            let mut total = 0usize;
            let mut violations = 0usize;
            for slice in &setup.repair_slices {
                for p in slice.grid(check_grid) {
                    total += 1;
                    if !acas::phi8_allows(result.outcome.repaired.classify(&p)) {
                        violations += 1;
                    }
                }
            }
            // RQ3: fraction of generalization counterexamples now fixed.
            let gen = &setup.generalization_set;
            let fixed = if gen.is_empty() {
                1.0
            } else {
                gen.inputs
                    .iter()
                    .filter(|p| acas::phi8_allows(result.outcome.repaired.classify(p)))
                    .count() as f64
                    / gen.len() as f64
            };
            Task3PrResult {
                layer,
                repaired: true,
                remaining_violation_rate: violations as f64 / total.max(1) as f64,
                drawdown: metrics::drawdown(
                    &setup.network,
                    &result.outcome.repaired,
                    &setup.drawdown_set,
                ),
                generalization_fixed: fixed,
                num_regions: result.num_regions,
                key_points: result.num_key_points,
                time: start.elapsed(),
                timing: result.outcome.stats.timing,
            }
        }
        Err(_) => Task3PrResult {
            layer,
            repaired: false,
            remaining_violation_rate: f64::NAN,
            drawdown: f64::NAN,
            generalization_fixed: f64::NAN,
            num_regions: 0,
            key_points: 0,
            time: start.elapsed(),
            timing: RepairTiming::default(),
        },
    }
}

/// A fine-tuning baseline result on Task 3.
#[derive(Debug, Clone)]
pub struct Task3BaselineResult {
    /// Baseline name.
    pub name: String,
    /// Number of repair-sample points still misclassified after the baseline
    /// (the paper reports FT *increases* this count: negative efficacy).
    pub repair_points_misclassified: usize,
    /// Total repair-sample points given to the baseline.
    pub repair_points_total: usize,
    /// Drawdown on the drawdown point set.
    pub drawdown: f64,
    /// Fraction of generalization counterexamples fixed.
    pub generalization_fixed: f64,
    /// Wall-clock time.
    pub time: Duration,
}

/// Runs a fine-tuning baseline (FT if `mft_layer` is `None`, MFT otherwise)
/// on grid samples of the repair slices.
pub fn run_baseline(
    setup: &Task3Setup,
    grid: usize,
    name: &str,
    mft_layer: Option<usize>,
    max_epochs: usize,
    seed: u64,
) -> Task3BaselineResult {
    // Sampled repair set: grid points of each repair slice with the slice's
    // strengthened target advisory.
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for slice in &setup.repair_slices {
        let target = strengthened_target(&setup.network, slice, grid);
        for p in slice.grid(grid) {
            inputs.push(p);
            labels.push(target);
        }
    }
    let repair_set = Dataset::new(inputs, labels);
    if repair_set.is_empty() {
        return Task3BaselineResult {
            name: name.to_string(),
            repair_points_misclassified: 0,
            repair_points_total: 0,
            drawdown: 0.0,
            generalization_fixed: f64::NAN,
            time: Duration::ZERO,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let tuned: Network = match mft_layer {
        None => {
            let config = FineTuneConfig {
                learning_rate: 0.01,
                momentum: 0.9,
                batch_size: 16,
                max_epochs,
            };
            fine_tune(&setup.network, &repair_set, &config, &mut rng).network
        }
        Some(layer) => {
            let config = MftConfig {
                learning_rate: 0.01,
                momentum: 0.9,
                batch_size: 16,
                max_epochs,
                layer,
                change_penalty: 1e-3,
                holdout_fraction: 0.25,
            };
            modified_fine_tune(&setup.network, &repair_set, &config, &mut rng).network
        }
    };
    let time = start.elapsed();
    let misclassified = repair_set
        .inputs
        .iter()
        .zip(&repair_set.labels)
        .filter(|(p, &l)| tuned.classify(p) != l)
        .count();
    let gen = &setup.generalization_set;
    let fixed = if gen.is_empty() {
        1.0
    } else {
        gen.inputs
            .iter()
            .filter(|p| acas::phi8_allows(tuned.classify(p)))
            .count() as f64
            / gen.len() as f64
    };
    Task3BaselineResult {
        name: name.to_string(),
        repair_points_misclassified: misclassified,
        repair_points_total: repair_set.len(),
        drawdown: metrics::drawdown(&setup.network, &tuned, &setup.drawdown_set),
        generalization_fixed: fixed,
        time,
    }
}

/// All Task 3 results.
#[derive(Debug, Clone)]
pub struct Task3Results {
    /// Number of violating slices found when searching candidates.
    pub violations_found: usize,
    /// Number of slices in the repair specification.
    pub repair_slices: usize,
    /// Size of the generalization counterexample set.
    pub generalization_points: usize,
    /// The Provable Repair result.
    pub pr: Task3PrResult,
    /// FT and MFT baselines.
    pub baselines: Vec<Task3BaselineResult>,
}

/// Runs the full Task 3 experiment.
pub fn run(params: &Task3Params) -> Task3Results {
    let setup = setup(params);
    let pr = run_pr(&setup, params.grid);
    let last_layer = setup.network.num_layers() - 1;
    let baselines = vec![
        run_baseline(
            &setup,
            params.grid,
            "FT",
            None,
            params.ft_max_epochs,
            params.seed + 31,
        ),
        run_baseline(
            &setup,
            params.grid,
            "MFT(last layer)",
            Some(last_layer),
            params.ft_max_epochs,
            params.seed + 32,
        ),
    ];
    Task3Results {
        violations_found: setup.violations_found,
        repair_slices: setup.repair_slices.len(),
        generalization_points: setup.generalization_set.len(),
        pr,
        baselines,
    }
}

fn pct(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else {
        format!("{:.1}%", 100.0 * x)
    }
}

/// Formats the §7.3 (Task 3) reproduction.
pub fn format_task3(results: &Task3Results) -> String {
    let mut out = String::new();
    out.push_str("Task 3 — 2-D polytope repair of the collision-avoidance network (paper §7.3)\n");
    out.push_str(&format!(
        "violating slices found: {} (repair spec uses {}); generalization counterexamples: {}\n\n",
        results.violations_found, results.repair_slices, results.generalization_points
    ));
    let pr = &results.pr;
    out.push_str(&format!(
        "RQ1 efficacy:        repaired = {} ({} linear regions, {} key points); remaining \
         violations on repair slices: {}\n",
        pr.repaired,
        pr.num_regions,
        pr.key_points,
        pct(pr.remaining_violation_rate)
    ));
    out.push_str(&format!("RQ2 drawdown:        {}\n", pct(pr.drawdown)));
    out.push_str(&format!(
        "RQ3 generalization:  {} of counterexamples outside the repair slices now satisfy φ8\n",
        pct(pr.generalization_fixed)
    ));
    out.push_str(&format!(
        "RQ4 efficiency:      total {:.1}s (LinRegions {:.1}s, Jacobians {:.1}s, LP {:.1}s, other {:.1}s)\n\n",
        pr.time.as_secs_f64(),
        pr.timing.lin_regions.as_secs_f64(),
        pr.timing.jacobians.as_secs_f64(),
        pr.timing.lp.as_secs_f64(),
        pr.timing.other.as_secs_f64(),
    ));
    for b in &results.baselines {
        out.push_str(&format!(
            "{:<16} misclassifies {}/{} repair samples, drawdown {}, fixes {} of counterexamples, {:.1}s\n",
            b.name,
            b.repair_points_misclassified,
            b.repair_points_total,
            pct(b.drawdown),
            pct(b.generalization_fixed),
            b.time.as_secs_f64(),
        ));
    }
    out.push_str(
        "\nPaper (§7.3): PR repairs all 10 slices with ZERO drawdown and 94.7% generalization in\n\
         21.2s; FT never converges (times out after 1h18m), misclassifies 181 repair points and\n\
         introduces 650 drawdown errors; MFT stays below 1% drawdown but does not repair.\n\
         Expected shape: PR reaches zero remaining violations with (near-)zero drawdown and high\n\
         generalization; the baselines do not.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn tiny_task3_pipeline_runs_end_to_end() {
        let mut params = Task3Params::for_scale(Scale::Tiny);
        params.ft_max_epochs = 3;
        let results = run(&params);
        if results.pr.repaired {
            // Provable guarantee: no violations remain on the repair slices.
            assert_eq!(results.pr.remaining_violation_rate, 0.0);
        }
        assert_eq!(results.baselines.len(), 2);
        assert!(format_task3(&results).contains("RQ1"));
    }

    #[test]
    fn small_scale_setup_finds_phi8_violations() {
        // At the default scale the under-trained φ8 corner produces violating
        // slices to repair (the Task 3 precondition).
        let params = Task3Params::for_scale(Scale::Small);
        let setup = setup(&params);
        assert!(
            setup.violations_found >= 1,
            "the distilled network should violate φ8 on some candidate slice"
        );
    }
}
